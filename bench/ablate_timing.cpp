// Ablation bench for the point-process timing model's design choices
// (the knobs DESIGN.md calls out):
//
//   1. decay ω:      learned per-pair g_Θ(x)  vs  constant scalar
//                    (the paper found a constant best on Stack Overflow but
//                    proposes the learned variant as the general model);
//   2. estimator:    the paper's unnormalized E[t] formula  vs  the
//                    normalized conditional-first-event expectation;
//   3. calibration:  affine output calibration on/off.
//
// All variants share splits and features (common random numbers), so the
// RMSE differences are attributable to the design choice.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "exp/experiment.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();
  const auto omega = bench::all_questions(dataset);

  features::ExtractorConfig extractor_config;
  extractor_config.lda.iterations = options.full ? 100 : 40;
  exp::ExperimentContext context(dataset, omega, omega, extractor_config);

  exp::TaskSetup base = exp::fast_task_setup();
  base.run_answer = false;
  base.run_votes = false;
  base.run_baselines = false;
  base.repeats = options.full ? 3 : 1;
  if (options.full) {
    base.timing = core::TimingPredictorConfig{};
    base.survival_samples_per_thread = 20;
  }

  struct Variant {
    std::string name;
    core::TimingPredictorConfig config;
  };
  using Expectation = core::TimingPredictorConfig::Expectation;
  std::vector<Variant> variants;
  {
    Variant v{"learned ω + conditional E + calib (default)", base.timing};
    variants.push_back(v);

    v = {"constant ω + conditional E + calib", base.timing};
    v.config.learn_omega = false;
    variants.push_back(v);

    v = {"learned ω + paper E[t] formula + calib", base.timing};
    v.config.expectation = Expectation::PaperUnnormalized;
    variants.push_back(v);

    v = {"constant ω + paper E[t] formula + calib (paper setup)", base.timing};
    v.config.learn_omega = false;
    v.config.expectation = Expectation::PaperUnnormalized;
    variants.push_back(v);

    v = {"learned ω + conditional E, no calibration", base.timing};
    v.config.calibrate = false;
    variants.push_back(v);
  }

  // Fixed train/test thread split for the held-out log-likelihood column
  // (a calibration-free fit measure shared by every variant).
  const auto positives = context.positives();
  std::vector<forum::AnsweredPair> ll_train, ll_test;
  for (std::size_t i = 0; i < positives.size(); ++i) {
    (i % 5 == 4 ? ll_test : ll_train).push_back(positives[i]);
  }
  const auto feature_fn = core::FeatureFn(
      [&context](forum::UserId u, forum::QuestionId q) {
        return context.features(u, q);
      });
  const auto train_threads = core::build_timing_threads(
      dataset, feature_fn, ll_train, context.last_post_time(),
      base.survival_samples_per_thread, 881);
  const auto test_threads = core::build_timing_threads(
      dataset, feature_fn, ll_test, context.last_post_time(),
      base.survival_samples_per_thread, 883);

  util::Table table("Timing-model ablations (RMSE of r_uq, hours)",
                    {"Variant", "RMSE", "±", "vs default %", "held-out LL"});
  double reference = 0.0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    util::Timer timer;
    exp::TaskSetup setup = base;
    setup.timing = variants[i].config;
    const auto result = exp::run_tasks(context, setup);
    const double rmse = result.timing_rmse.mean();
    if (i == 0) reference = rmse;

    core::TimingPredictor model(variants[i].config);
    model.fit(train_threads);
    const double held_out_ll = model.mean_log_likelihood(test_threads);

    table.add_row({variants[i].name, util::Table::num(rmse),
                   util::Table::num(result.timing_rmse.stddev()),
                   util::Table::num(100.0 * (rmse - reference) / reference, 1),
                   util::Table::num(held_out_ll, 2)});
    std::cout << variants[i].name << " done ("
              << util::Table::num(timer.seconds(), 1) << "s)\n";
  }
  bench::emit(table, options, "ablate_timing.csv");
  std::cout << "\nNote: the estimator/calibration variants share a likelihood "
               "with their ω-mode counterpart (LL depends only on μ, ω).\n";
  return 0;
}
