// Ablation bench for the vote network's architecture (paper Sec. IV-A fixes
// L = 4 with 20 ReLU units per hidden layer; here we justify that choice):
// depth × width sweep plus a linear model and a tanh variant, all under
// common random numbers.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();
  const auto omega = bench::all_questions(dataset);

  features::ExtractorConfig extractor_config;
  extractor_config.lda.iterations = options.full ? 100 : 40;
  exp::ExperimentContext context(dataset, omega, omega, extractor_config);

  exp::TaskSetup base = exp::fast_task_setup();
  base.run_answer = false;
  base.run_timing = false;
  base.run_baselines = false;
  base.repeats = options.full ? 3 : 1;
  base.vote.epochs = options.full ? 150 : 80;

  struct Variant {
    std::string name;
    std::vector<std::size_t> hidden;
    ml::Activation activation = ml::Activation::ReLU;
  };
  const std::vector<Variant> variants = {
      {"linear (no hidden layer)", {}},  // handled below
      {"1 x 20 relu", {20}},
      {"2 x 20 relu", {20, 20}},
      {"3 x 20 relu (paper: L=4)", {20, 20, 20}},
      {"3 x 50 relu", {50, 50, 50}},
      {"5 x 20 relu", {20, 20, 20, 20, 20}},
      {"3 x 20 tanh", {20, 20, 20}, ml::Activation::Tanh},
  };

  util::Table table("Vote-network architecture ablation (RMSE of v_uq)",
                    {"Variant", "RMSE", "±", "vs paper-config %"});
  double reference = 0.0;
  std::vector<std::vector<std::string>> rows;
  for (const auto& variant : variants) {
    util::Timer timer;
    exp::TaskSetup setup = base;
    if (variant.hidden.empty()) {
      // "Linear" = a single hidden unit with identity activation collapses
      // to an affine map after the output layer.
      setup.vote.hidden_units = {1};
      setup.vote.hidden_activation = ml::Activation::Identity;
    } else {
      setup.vote.hidden_units = variant.hidden;
      setup.vote.hidden_activation = variant.activation;
    }
    const auto result = exp::run_tasks(context, setup);
    const double rmse = result.vote_rmse.mean();
    if (variant.name.find("paper") != std::string::npos) reference = rmse;
    rows.push_back({variant.name, util::Table::num(rmse),
                    util::Table::num(result.vote_rmse.stddev()), ""});
    std::cout << variant.name << " done ("
              << util::Table::num(timer.seconds(), 1) << "s)\n";
  }
  for (auto& row : rows) {
    const double rmse = std::stod(row[1]);
    row[3] = util::Table::num(100.0 * (rmse - reference) / reference, 1) + "%";
    table.add_row(row);
  }
  bench::emit(table, options, "ablate_vote.csv");
  return 0;
}
