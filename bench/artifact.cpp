// Model-bundle save/load latency and bundle size.
//
// The artifact layer sits on the deploy path (fit box → object store →
// serving fleet) and on the crash-recovery path (LiveState writes the bundle
// into every WAL directory), so regressions in serialization cost or an
// unexplained jump in bundle size are worth catching. bundle_bytes is
// exported as a counter so CI can diff it across runs; BENCH_artifact.json
// is published by tools/run_bench.sh.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "forum/generator.hpp"

namespace {

using namespace forumcast;

struct ArtifactFixture {
  forum::Dataset dataset;
  core::ForecastPipeline pipeline;
  std::string bundle;  ///< pre-saved bytes for the load benchmark

  static ArtifactFixture& instance() {
    static ArtifactFixture fixture;
    return fixture;
  }

 private:
  ArtifactFixture() : dataset(make_dataset()), pipeline(make_config()) {
    const auto history = dataset.questions_in_days(1, 25);
    pipeline.fit(dataset, history);
    std::ostringstream out;
    pipeline.save(out);
    bundle = std::move(out).str();
  }

  static forum::Dataset make_dataset() {
    forum::GeneratorConfig config;
    // Mid-sized forum: the extractor section (topic tables, graphs,
    // similarity state) dominates the bundle, and it scales with users ×
    // questions, so the measurement reflects deploy-sized payloads.
    config.num_users = 600;
    config.num_questions = 500;
    config.seed = 47;
    return forum::generate_forum(config).dataset.preprocessed();
  }

  static core::PipelineConfig make_config() {
    core::PipelineConfig config;
    config.extractor.lda.iterations = 15;
    config.answer.logistic.epochs = 30;
    config.vote.epochs = 10;
    config.timing.epochs = 5;
    config.survival_samples_per_thread = 5;
    return config;
  }
};

void BM_BundleSave(benchmark::State& state) {
  auto& fixture = ArtifactFixture::instance();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    fixture.pipeline.save(out);
    bytes = static_cast<std::uint64_t>(out.tellp());
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["bundle_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_BundleSave)->Unit(benchmark::kMillisecond);

void BM_BundleLoad(benchmark::State& state) {
  auto& fixture = ArtifactFixture::instance();
  for (auto _ : state) {
    std::istringstream in(fixture.bundle);
    core::ForecastPipeline loaded =
        core::ForecastPipeline::load(in, fixture.dataset);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.bundle.size()));
  state.counters["bundle_bytes"] =
      benchmark::Counter(static_cast<double>(fixture.bundle.size()));
}
BENCHMARK(BM_BundleLoad)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
