// Shared scaffolding for the experiment benches.
//
// Every bench regenerates one table or figure of the paper on the synthetic
// Stack Overflow workload (see DESIGN.md for the substitution rationale).
// Command-line knobs:
//   --users N --questions N --seed S   workload scale (default 2000/2000)
//   --full                             paper-fidelity iteration counts
//   --csv DIR                          also dump the table as CSV into DIR
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "forum/dataset.hpp"
#include "forum/generator.hpp"
#include "obs/build_info.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace forumcast::bench {

struct BenchOptions {
  std::size_t users = 2000;
  std::size_t questions = 2000;
  std::uint64_t seed = 2026;
  bool full = false;
  std::optional<std::string> csv_dir;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          std::cerr << flag << " requires a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--users") {
        options.users = std::stoul(next("--users"));
      } else if (arg == "--questions") {
        options.questions = std::stoul(next("--questions"));
      } else if (arg == "--seed") {
        options.seed = std::stoull(next("--seed"));
      } else if (arg == "--full") {
        options.full = true;
      } else if (arg == "--csv") {
        options.csv_dir = next("--csv");
        // With CSV output we also dump a metadata sidecar that includes
        // per-span stage timings, so turn span collection on for the run.
        obs::TraceCollector::global().set_enabled(true);
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "options: --users N --questions N --seed S --full --csv DIR\n";
        std::exit(0);
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        std::exit(2);
      }
    }
    return options;
  }
};

inline forum::SynthForum make_forum(const BenchOptions& options) {
  forum::GeneratorConfig config;
  config.num_users = options.users;
  config.num_questions = options.questions;
  config.seed = options.seed;
  return forum::generate_forum(config);
}

inline std::vector<forum::QuestionId> all_questions(const forum::Dataset& dataset) {
  std::vector<forum::QuestionId> ids(dataset.num_questions());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<forum::QuestionId>(i);
  }
  return ids;
}

// Run provenance for a bench CSV: which build produced it, on what workload,
// and where the wall-clock went. Written as `<csv>.meta.json` next to the CSV
// so plots can carry the context along.
inline std::string run_metadata_json(const BenchOptions& options) {
  using obs::detail::append_json_escaped;
  using obs::detail::append_json_number;
  std::string json = "{";
  json += "\"git_describe\":";
  append_json_escaped(json, obs::git_describe());
  json += ",\"timestamp\":";
  append_json_escaped(json, util::iso8601_now());
  json += ",\"threads\":";
  append_json_number(json, static_cast<double>(util::default_thread_count()));
  json += ",\"instrumentation\":";
  json += obs::instrumentation_enabled() ? "true" : "false";
  json += ",\"workload\":{\"users\":";
  append_json_number(json, static_cast<double>(options.users));
  json += ",\"questions\":";
  append_json_number(json, static_cast<double>(options.questions));
  json += ",\"seed\":";
  append_json_number(json, static_cast<double>(options.seed));
  json += ",\"full\":";
  json += options.full ? "true" : "false";
  json += "},\"stage_timings_ms\":{";
  bool first = true;
  for (const auto& row : obs::TraceCollector::global().aggregate()) {
    if (!first) json += ',';
    first = false;
    append_json_escaped(json, row.name);
    json += ":{\"count\":";
    append_json_number(json, static_cast<double>(row.count));
    json += ",\"total\":";
    append_json_number(json, row.total_ms);
    json += ",\"mean\":";
    append_json_number(json, row.mean_ms);
    json += "}";
  }
  json += "}}";
  return json;
}

inline void emit(const util::Table& table, const BenchOptions& options,
                 const std::string& csv_name) {
  table.print(std::cout);
  if (options.csv_dir) {
    std::filesystem::create_directories(*options.csv_dir);
    table.save_csv(*options.csv_dir + "/" + csv_name);
    std::cout << "(csv written to " << *options.csv_dir << "/" << csv_name
              << ")\n";
    const std::string meta_path =
        *options.csv_dir + "/" + csv_name + ".meta.json";
    std::ofstream meta(meta_path);
    meta << run_metadata_json(options) << "\n";
    if (meta) {
      std::cout << "(run metadata written to " << meta_path << ")\n";
    } else {
      std::cerr << "warning: could not write " << meta_path << "\n";
    }
  }
}

}  // namespace forumcast::bench
