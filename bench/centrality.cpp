// Exact vs pivot-sampled vs incremental centrality (graph/centrality_engine).
//
// The comparison pair backing the acceptance guard is exact vs sampled
// betweenness at 2048 nodes with 160 pivots — the same operating point the
// accuracy property test (tests/centrality_test.cpp) pins to a 0.05
// max-normalized error bound. run_bench.sh computes the speedup from
// BENCH_centrality.json and enforces BENCH_CENTRALITY_MIN_SPEEDUP on it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/centrality.hpp"
#include "graph/centrality_engine.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace {

using namespace forumcast;

// Forum-shaped social graph (hub answerers + askers), matching the accuracy
// property tests so speed and error are reported for the same topology.
graph::Graph qa_shaped_graph(std::size_t nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t hubs = std::max<std::size_t>(4, nodes / 12);
  graph::Graph g(nodes);
  std::vector<double> weight(hubs);
  double total = 0.0;
  for (std::size_t h = 0; h < hubs; ++h) {
    weight[h] = 1.0 / (1.0 + static_cast<double>(h));
    total += weight[h];
  }
  const auto draw_hub = [&] {
    double r = static_cast<double>(rng.uniform_index(1000000)) / 1e6 * total;
    for (std::size_t h = 0; h < hubs; ++h) {
      if ((r -= weight[h]) <= 0.0) return static_cast<graph::NodeId>(h);
    }
    return static_cast<graph::NodeId>(hubs - 1);
  };
  for (graph::NodeId asker = static_cast<graph::NodeId>(hubs); asker < nodes;
       ++asker) {
    const std::size_t answers = 1 + rng.uniform_index(4);
    graph::NodeId previous = static_cast<graph::NodeId>(nodes);
    for (std::size_t i = 0; i < answers; ++i) {
      const graph::NodeId hub = draw_hub();
      g.add_edge(asker, hub);
      if (previous < nodes && previous != hub) g.add_edge(previous, hub);
      previous = hub;
    }
  }
  return g;
}

std::size_t pivots_for(std::size_t nodes) {
  // The tuned operating ratio: 160 pivots at 2K nodes, growing sublinearly —
  // larger graphs tolerate smaller pivot fractions for the same error.
  return nodes <= 2048 ? 160 : 256;
}

// ---------- exact baselines ----------

void BM_BetweennessExact(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = qa_shaped_graph(nodes, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::betweenness_centrality(g));
  }
}
BENCHMARK(BM_BetweennessExact)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ClosenessExact(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = qa_shaped_graph(nodes, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::closeness_centrality(g));
  }
}
BENCHMARK(BM_ClosenessExact)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// ---------- pivot-sampled ----------

// Full sampled pipeline for one betweenness vector: pivot draw, k sweeps,
// and the fold. This is the guard's numerator against BM_BetweennessExact.
void BM_BetweennessSampled(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = qa_shaped_graph(nodes, 3);
  graph::CentralityConfig config;
  config.mode = graph::CentralityMode::kSampled;
  config.num_pivots = pivots_for(nodes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::sampled_betweenness_centrality(g, config));
  }
  state.counters["pivots"] = static_cast<double>(config.num_pivots);
}
BENCHMARK(BM_BetweennessSampled)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// One engine rebuild amortizes its k sweeps across *both* centralities; this
// is what a sampled stream_refresh actually pays.
void BM_EngineRebuildBothCentralities(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = qa_shaped_graph(nodes, 3);
  graph::CentralityConfig config;
  config.mode = graph::CentralityMode::kSampled;
  config.num_pivots = pivots_for(nodes);
  for (auto _ : state) {
    graph::CentralityEngine engine(config);
    engine.rebuild(g);
    benchmark::DoNotOptimize(engine.closeness());
    benchmark::DoNotOptimize(engine.betweenness());
  }
}
BENCHMARK(BM_EngineRebuildBothCentralities)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// ---------- incremental refresh ----------

// Steady-state dirty-region refresh: each iteration lands a small batch of
// new edges and re-sweeps only the affected pivots. Edge batches are
// pre-generated; the graph densifies slightly over the run, which only makes
// the numbers conservative.
void BM_EngineIncrementalRefresh(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  auto g = qa_shaped_graph(nodes, 3);
  graph::CentralityConfig config;
  config.mode = graph::CentralityMode::kSampled;
  config.num_pivots = pivots_for(nodes);
  graph::CentralityEngine engine(config);
  engine.rebuild(g);
  util::Rng rng(17);
  std::size_t sweeps = 0;
  std::size_t refreshes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::pair<graph::NodeId, graph::NodeId>> batch;
    while (batch.size() < 4) {
      const auto u = static_cast<graph::NodeId>(rng.uniform_index(nodes));
      const auto v = static_cast<graph::NodeId>(rng.uniform_index(nodes));
      if (u != v && g.add_edge(u, v)) batch.emplace_back(u, v);
    }
    state.ResumeTiming();
    engine.refresh(g, batch);
    sweeps += engine.last_refresh().sweeps;
    ++refreshes;
  }
  state.counters["avg_affected_pivots"] =
      refreshes == 0 ? 0.0
                     : static_cast<double>(sweeps) /
                           static_cast<double>(refreshes);
}
BENCHMARK(BM_EngineIncrementalRefresh)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
