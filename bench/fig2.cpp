// Reproduces paper Fig. 2: structure of the two SLN graph models.
//
// The paper visualizes G_QA and G_D over ~14K users and reports: average
// degree 2.6 (G_QA) rising to 3.7 (G_D), both graphs disconnected, and high
// variance in the degree distribution. This bench prints those statistics
// (a scatter plot is a rendering of exactly these numbers).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "forum/sln.hpp"
#include "graph/graph.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();
  const auto omega = bench::all_questions(dataset);

  const auto qa = forum::build_qa_graph(dataset, omega);
  const auto dense = forum::build_dense_graph(dataset, omega);

  util::Table table("Fig. 2 — SLN graph structure (paper: G_QA deg 2.6, G_D deg 3.7, both disconnected)",
                    {"Graph", "Nodes", "Edges", "AvgDeg", "MaxDeg", "DegStdDev",
                     "Components", "LargestComp", "Isolated"});
  auto describe = [&](const std::string& name, const graph::Graph& g) {
    std::vector<double> degrees;
    std::size_t isolated = 0;
    std::size_t max_degree = 0;
    for (std::size_t u = 0; u < g.node_count(); ++u) {
      const std::size_t d = g.degree(u);
      degrees.push_back(static_cast<double>(d));
      isolated += (d == 0);
      max_degree = std::max(max_degree, d);
    }
    std::size_t components = 0;
    g.connected_components(components);
    table.add_row({name, std::to_string(g.node_count()),
                   std::to_string(g.edge_count()),
                   util::Table::num(g.average_degree(), 2),
                   std::to_string(max_degree),
                   util::Table::num(util::stddev(degrees), 2),
                   std::to_string(components),
                   std::to_string(g.largest_component_size()),
                   std::to_string(isolated)});
  };
  describe("G_QA (question-answer)", qa);
  describe("G_D (denser)", dense);
  bench::emit(table, options, "fig2.csv");

  // Shape checks the paper calls out in the text.
  std::cout << "\nshape checks:\n";
  std::cout << "  G_D denser than G_QA: "
            << (dense.average_degree() > qa.average_degree() ? "yes" : "NO")
            << "\n";
  std::size_t qa_components = 0;
  qa.connected_components(qa_components);
  std::cout << "  G_QA disconnected: " << (qa_components > 1 ? "yes" : "NO")
            << "\n";
  return 0;
}
