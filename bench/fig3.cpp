// Reproduces paper Fig. 3: net votes v_{u,q} against response time r_{u,q}
// for every answered pair. The paper's headline observation: the two
// quantities are *uncorrelated* — quality and timing are not competing.
//
// This bench prints the correlation statistics plus a binned version of the
// scatter (mean/median votes per response-time decade), which is the series a
// plot of Fig. 3 would show.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();
  const auto pairs = dataset.answered_pairs();

  std::vector<double> votes, delays;
  for (const auto& pair : pairs) {
    votes.push_back(static_cast<double>(pair.votes));
    delays.push_back(pair.delay_hours);
  }

  std::cout << "answered pairs: " << pairs.size() << "\n";
  std::cout << "pearson(votes, delay)  = "
            << util::Table::num(util::pearson(votes, delays), 4)
            << "   (paper: no correlation)\n";
  std::cout << "spearman(votes, delay) = "
            << util::Table::num(util::spearman(votes, delays), 4) << "\n";

  // Binned scatter: response-time decades from minutes to weeks.
  const std::vector<std::pair<double, double>> bins = {
      {0.0, 0.1},   {0.1, 1.0},    {1.0, 10.0},
      {10.0, 100.0}, {100.0, 1000.0}};
  util::Table table("Fig. 3 — votes vs response time (binned scatter)",
                    {"Delay bin (h)", "Pairs", "MeanVotes", "MedianVotes",
                     "VoteStdDev"});
  for (const auto& [lo, hi] : bins) {
    std::vector<double> bin_votes;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (delays[i] >= lo && delays[i] < hi) bin_votes.push_back(votes[i]);
    }
    if (bin_votes.empty()) continue;
    table.add_row({util::Table::num(lo, 1) + "–" + util::Table::num(hi, 1),
                   std::to_string(bin_votes.size()),
                   util::Table::num(util::mean(bin_votes), 2),
                   util::Table::num(util::median(bin_votes), 1),
                   util::Table::num(util::stddev(bin_votes), 2)});
  }
  bench::emit(table, options, "fig3.csv");

  const bool uncorrelated = std::abs(util::pearson(votes, delays)) < 0.1;
  std::cout << "\nshape check — |pearson| < 0.1 (no quality/timing tradeoff): "
            << (uncorrelated ? "yes" : "NO") << "\n";
  return 0;
}
