// Reproduces paper Fig. 4: CDFs of selected feature quantities.
//   (a) answers provided per user a_u
//   (b) median response time r_u, split by activity level a_u
//   (c) average answer votes v̄_u, split by activity level
//   (d) user-question s_uq and user-user s_uv topic similarities
//   (e) question word text x_q and code c_q lengths
//   (f) betweenness and closeness centralities on both graphs (max-normalized)
//
// Each panel is printed as a quantile series (the CDF curve) plus the shape
// observations the paper draws from it.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "features/extractor.hpp"
#include "graph/centrality.hpp"
#include "util/stats.hpp"

namespace {

using forumcast::util::Table;

// Prints one CDF as a row of values at fixed cumulative probabilities.
void cdf_row(Table& table, const std::string& label, std::vector<double> values) {
  if (values.empty()) return;
  std::vector<std::string> cells = {label, std::to_string(values.size())};
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    cells.push_back(Table::num(forumcast::util::percentile(values, p), 3));
  }
  table.add_row(std::move(cells));
}

Table make_panel(const std::string& title) {
  return Table(title, {"Series", "N", "p10", "p25", "p50", "p75", "p90", "p99"});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();
  const auto omega = bench::all_questions(dataset);

  features::ExtractorConfig config;
  config.lda.iterations = options.full ? 100 : 40;
  const features::FeatureExtractor extractor(dataset, omega, config);

  // ---- (a) answers provided ----
  std::vector<double> answers_per_user;
  for (forum::UserId u = 0; u < dataset.num_users(); ++u) {
    const auto& stats = extractor.user_stats(u);
    if (stats.answers_provided > 0) {
      answers_per_user.push_back(static_cast<double>(stats.answers_provided));
    }
  }
  auto panel_a = make_panel("Fig. 4a — answers provided a_u (answerers only)");
  cdf_row(panel_a, "a_u", answers_per_user);
  bench::emit(panel_a, options, "fig4a.csv");
  std::cout << "share of answerers with a_u >= 2: "
            << Table::num(1.0 - util::fraction_at_most(answers_per_user, 1.0), 3)
            << "  (paper: ~0.4)\n";

  // ---- (b) median response time by activity, (c) mean votes by activity ----
  auto panel_b = make_panel("Fig. 4b — median response time r_u (h) by activity");
  auto panel_c = make_panel("Fig. 4c — average answer votes by activity");
  for (std::size_t threshold : {1, 2, 3, 5}) {
    std::vector<double> medians, mean_votes;
    for (forum::UserId u = 0; u < dataset.num_users(); ++u) {
      const auto& stats = extractor.user_stats(u);
      if (stats.answers_provided >= threshold) {
        medians.push_back(util::median(stats.response_times));
        mean_votes.push_back(util::mean(stats.answer_votes));
      }
    }
    cdf_row(panel_b, "a_u >= " + std::to_string(threshold), medians);
    cdf_row(panel_c, "a_u >= " + std::to_string(threshold), mean_votes);
  }
  bench::emit(panel_b, options, "fig4b.csv");
  {
    // Paper: 80 % of users with a_u ≥ 5 respond within 1 h vs 60 % for ≥ 1.
    std::vector<double> m1, m5;
    for (forum::UserId u = 0; u < dataset.num_users(); ++u) {
      const auto& stats = extractor.user_stats(u);
      if (stats.answers_provided >= 1) m1.push_back(util::median(stats.response_times));
      if (stats.answers_provided >= 5) m5.push_back(util::median(stats.response_times));
    }
    if (!m5.empty()) {
      std::cout << "P(r_u <= 1h | a_u>=1) = "
                << Table::num(util::fraction_at_most(m1, 1.0), 3)
                << ",  P(r_u <= 1h | a_u>=5) = "
                << Table::num(util::fraction_at_most(m5, 1.0), 3)
                << "  (paper shape: active users faster)\n";
    }
  }
  bench::emit(panel_c, options, "fig4c.csv");

  // ---- (d) topic similarities ----
  auto panel_d = make_panel("Fig. 4d — topic similarities over answered pairs");
  std::vector<double> s_uq, s_uv;
  const auto& layout = extractor.layout();
  for (const auto& pair : dataset.answered_pairs()) {
    const auto x = extractor.features(pair.user, pair.question);
    s_uq.push_back(x[layout.offset(features::FeatureId::UserQuestionTopicSimilarity)]);
    s_uv.push_back(x[layout.offset(features::FeatureId::UserUserTopicSimilarity)]);
  }
  cdf_row(panel_d, "s_uq (user-question)", s_uq);
  cdf_row(panel_d, "s_uv (user-asker)", s_uv);
  bench::emit(panel_d, options, "fig4d.csv");
  std::cout << "median s_uq = " << Table::num(util::median(s_uq), 3)
            << ", median s_uv = " << Table::num(util::median(s_uv), 3)
            << "  (paper shape: answerers more similar to askers than to questions)\n";

  // ---- (e) question lengths ----
  auto panel_e = make_panel("Fig. 4e — question word/code lengths (chars)");
  std::vector<double> word_lengths, code_lengths;
  for (forum::QuestionId q = 0; q < dataset.num_questions(); ++q) {
    word_lengths.push_back(extractor.question_word_length(q));
    code_lengths.push_back(extractor.question_code_length(q));
  }
  cdf_row(panel_e, "x_q (words)", word_lengths);
  cdf_row(panel_e, "c_q (code)", code_lengths);
  bench::emit(panel_e, options, "fig4e.csv");
  std::cout << "stddev words = " << Table::num(util::stddev(word_lengths), 1)
            << ", stddev code = " << Table::num(util::stddev(code_lengths), 1)
            << "  (paper shape: code length varies much more)\n";

  // ---- (f) centralities, max-normalized ----
  auto panel_f = make_panel("Fig. 4f — centralities (normalized to max 1)");
  auto to_vector = [](std::span<const double> s) {
    return std::vector<double>(s.begin(), s.end());
  };
  cdf_row(panel_f, "closeness l^QA",
          graph::normalized_to_max(to_vector(extractor.qa_closeness())));
  cdf_row(panel_f, "closeness l^D",
          graph::normalized_to_max(to_vector(extractor.dense_closeness())));
  cdf_row(panel_f, "betweenness b^QA",
          graph::normalized_to_max(to_vector(extractor.qa_betweenness())));
  cdf_row(panel_f, "betweenness b^D",
          graph::normalized_to_max(to_vector(extractor.dense_betweenness())));
  bench::emit(panel_f, options, "fig4f.csv");
  {
    const auto b = graph::normalized_to_max(to_vector(extractor.qa_betweenness()));
    std::cout << "share of users with zero betweenness = "
              << Table::num(util::fraction_at_most(b, 0.0), 3)
              << "  (paper: ~0.6)\n";
  }
  return 0;
}
