// Reproduces paper Fig. 5: sensitivity of the three prediction tasks to the
// LDA topic count K. The paper varies K around the default 8 and reports the
// percent change of each metric: virtually none for r_{u,q}, small for
// a_{u,q}, and a more noticeable effect (up to ~5 %) for v_{u,q}.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();
  const auto omega = bench::all_questions(dataset);

  const std::vector<std::size_t> topic_counts = {5, 8, 10, 15, 20};
  exp::TaskSetup setup = exp::fast_task_setup();
  setup.repeats = options.full ? 3 : 1;
  setup.run_baselines = false;

  struct Row {
    std::size_t k;
    double auc, vote_rmse, timing_rmse;
  };
  std::vector<Row> rows;
  for (std::size_t k : topic_counts) {
    util::Timer timer;
    features::ExtractorConfig config;
    config.num_topics = k;
    config.lda.iterations = options.full ? 100 : 40;
    exp::ExperimentContext context(dataset, omega, omega, config);
    const auto result = exp::run_tasks(context, setup);
    rows.push_back({k, result.answer_auc.mean(), result.vote_rmse.mean(),
                    result.timing_rmse.mean()});
    std::cout << "K=" << k << " done in " << util::Table::num(timer.seconds(), 1)
              << "s\n";
  }

  // Percent change from the K = 8 default, matching the paper's y-axis.
  const Row* reference = nullptr;
  for (const auto& row : rows) {
    if (row.k == 8) reference = &row;
  }
  util::Table table("Fig. 5 — % metric change vs K (reference K = 8)",
                    {"K", "AUC(a)", "dAUC%", "RMSE(v)", "dRMSE(v)%",
                     "RMSE(r)", "dRMSE(r)%"});
  for (const auto& row : rows) {
    auto delta = [&](double value, double ref) {
      return util::Table::num(100.0 * (value - ref) / ref, 2) + "%";
    };
    table.add_row({std::to_string(row.k), util::Table::num(row.auc),
                   delta(row.auc, reference->auc),
                   util::Table::num(row.vote_rmse),
                   delta(row.vote_rmse, reference->vote_rmse),
                   util::Table::num(row.timing_rmse),
                   delta(row.timing_rmse, reference->timing_rmse)});
  }
  bench::emit(table, options, "fig5.csv");
  return 0;
}
