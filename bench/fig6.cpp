// Reproduces paper Fig. 6: leave-one-feature-out importance analysis for the
// response quality (v) and timing (r) tasks. For each of the 20 features the
// model is retrained without it and the percent increase in RMSE over the
// full feature set is reported.
//
// Paper headline shapes: r_u dominates the timing task (~48 % RMSE increase
// when removed), v_q dominates the vote task (~8.6 %); user-question and
// social features matter for both; s_uv matters more than s_uq.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();
  const auto omega = bench::all_questions(dataset);

  features::ExtractorConfig config;
  config.lda.iterations = options.full ? 100 : 40;
  exp::ExperimentContext context(dataset, omega, omega, config);
  const auto& layout = context.extractor().layout();

  exp::TaskSetup setup = exp::fast_task_setup();
  setup.run_answer = false;
  setup.run_baselines = false;
  setup.folds = 5;
  setup.repeats = options.full ? 3 : 1;

  util::Timer timer;
  const auto reference = exp::run_tasks(context, setup);
  std::cout << "full feature set: RMSE(v)="
            << util::Table::num(reference.vote_rmse.mean())
            << " RMSE(r)=" << util::Table::num(reference.timing_rmse.mean())
            << " (" << util::Table::num(timer.seconds(), 1) << "s)\n";

  // The splits are identical across runs (same seed), so the %Δ is computed
  // per iteration against the paired full-feature-set run — the standard
  // common-random-numbers variance reduction.
  auto paired_delta = [](const exp::TaskMetrics& ablated,
                         const exp::TaskMetrics& full) {
    double total = 0.0;
    for (std::size_t i = 0; i < ablated.per_iteration.size(); ++i) {
      total += 100.0 * (ablated.per_iteration[i] - full.per_iteration[i]) /
               full.per_iteration[i];
    }
    return total / static_cast<double>(ablated.per_iteration.size());
  };

  util::Table table("Fig. 6 — leave-one-feature-out %ΔRMSE (positive = feature helps)",
                    {"Feature", "Group", "dRMSE(v)%", "dRMSE(r)%"});
  for (features::FeatureId id : features::all_features()) {
    timer.reset();
    exp::TaskSetup ablated = setup;
    ablated.feature_columns = layout.columns_excluding({id});
    const auto result = exp::run_tasks(context, ablated);
    table.add_row({features::feature_name(id),
                   features::group_name(features::feature_group(id)),
                   util::Table::num(paired_delta(result.vote_rmse,
                                                 reference.vote_rmse), 2),
                   util::Table::num(paired_delta(result.timing_rmse,
                                                 reference.timing_rmse), 2)});
    std::cout << "excluded " << features::feature_name(id) << " ("
              << util::Table::num(timer.seconds(), 1) << "s)\n";
  }
  bench::emit(table, options, "fig6.csv");
  return 0;
}
