// Reproduces paper Fig. 7: how the importance of each feature *group* varies
// with the amount of historical data. Evaluation pairs are fixed to the last
// five days of threads (Ω = D25…D30) while the inference window F grows:
// i ∈ {5, 10, 15, 20, 25} days of history ending at day 25. For each window,
// the vote and timing models are trained with one feature group removed at a
// time and the absolute RMSE is reported (taller = more important).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();

  // Ω: questions posted in days 25–30 (evaluated); F: history windows.
  const auto omega = dataset.questions_in_days(25, 30);
  if (omega.empty()) {
    std::cerr << "no evaluation questions in days 25-30; increase --questions\n";
    return 1;
  }

  const std::vector<int> history_days = {5, 10, 15, 20, 25};
  const std::vector<std::optional<features::FeatureGroup>> exclusions = {
      std::nullopt,  // full feature set reference
      features::FeatureGroup::User, features::FeatureGroup::Question,
      features::FeatureGroup::UserQuestion, features::FeatureGroup::Social};

  exp::TaskSetup base_setup = exp::fast_task_setup();
  base_setup.run_answer = false;
  base_setup.run_baselines = false;
  base_setup.folds = options.full ? 5 : 3;
  base_setup.repeats = options.full ? 3 : 1;

  util::Table vote_table("Fig. 7a — net votes task: RMSE by excluded group and history window",
                         {"History (days)", "full set", "-user", "-question",
                          "-user-question", "-social"});
  util::Table timing_table("Fig. 7b — response timing task: RMSE (h) by excluded group and history window",
                           {"History (days)", "full set", "-user", "-question",
                            "-user-question", "-social"});

  for (int days : history_days) {
    util::Timer timer;
    // F = D_{25-i} … D_{25}.
    const int first_day = 25 - days;
    const auto inference =
        dataset.questions_in_days(std::max(1, first_day), 25);
    if (inference.empty()) continue;

    features::ExtractorConfig config;
    config.lda.iterations = options.full ? 80 : 30;
    exp::ExperimentContext context(dataset, omega, inference, config);
    const auto& layout = context.extractor().layout();

    std::vector<std::string> vote_row = {std::to_string(days)};
    std::vector<std::string> timing_row = {std::to_string(days)};
    for (const auto& exclusion : exclusions) {
      exp::TaskSetup setup = base_setup;
      if (exclusion) {
        setup.feature_columns = layout.columns_excluding(
            features::FeatureLayout::features_in_group(*exclusion));
      }
      const auto result = exp::run_tasks(context, setup);
      vote_row.push_back(util::Table::num(result.vote_rmse.mean()));
      timing_row.push_back(util::Table::num(result.timing_rmse.mean()));
    }
    vote_table.add_row(std::move(vote_row));
    timing_table.add_row(std::move(timing_row));
    std::cout << "history window " << days << "d done in "
              << util::Table::num(timer.seconds(), 1) << "s\n";
  }

  bench::emit(vote_table, options, "fig7a.csv");
  bench::emit(timing_table, options, "fig7b.csv");
  return 0;
}
