// End-to-end and per-stage training throughput for the fit-threads knob.
//
// Guards the PR-4 win: `pipeline.fit` with --fit-threads=8 must beat
// --fit-threads=1 by a wide margin (tools/run_bench.sh enforces the ratio
// via BENCH_FIT_MIN_SPEEDUP). On a single-core runner the speedup comes from
// the batched execution layout the knob switches on — one gemm forward per
// net per row instead of two scalar forwards plus a scalar backward — so the
// ratio is a lower bound for multi-core hardware, where the sharded LDA and
// column-sharded gradient accumulation add real parallelism on top.
//
// The 1-thread and N-thread fits produce bit-identical models for every
// stage except LDA (see fit_parallel_test.cpp), so items_per_second is the
// only axis.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "core/timing_predictor.hpp"
#include "forum/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace forumcast;

struct FitFixture {
  forum::Dataset dataset;
  std::vector<forum::QuestionId> history;

  static FitFixture& instance() {
    static FitFixture fixture;
    return fixture;
  }

 private:
  FitFixture() : dataset(make_dataset()) {
    history = dataset.questions_in_days(1, 25);
  }

  static forum::Dataset make_dataset() {
    forum::GeneratorConfig config;
    config.num_users = 800;
    config.num_questions = 500;
    config.mean_extra_answers = 2.0;
    config.seed = 47;
    return forum::generate_forum(config).dataset.preprocessed();
  }
};

core::PipelineConfig pipeline_config(std::size_t fit_threads) {
  core::PipelineConfig config;
  config.extractor.lda.iterations = 10;
  config.answer.logistic.epochs = 40;
  config.vote.epochs = 15;
  config.timing.epochs = 8;
  config.survival_samples_per_thread = 10;
  config.fit_threads = fit_threads;
  return config;
}

void BM_PipelineFit(benchmark::State& state) {
  auto& fixture = FitFixture::instance();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::ForecastPipeline pipeline(pipeline_config(threads));
    pipeline.fit(fixture.dataset, fixture.history);
    benchmark::DoNotOptimize(pipeline.generation());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.history.size()));
}
BENCHMARK(BM_PipelineFit)->Arg(1)->Arg(8)->Unit(benchmark::kSecond);

// Isolates the dominant stage (the point-process likelihood is ~95% of
// pipeline.fit wall-clock) on synthetic threads so regressions in the
// batched tape path show up without the LDA/feature noise in front.
std::vector<core::TimingThread> synthetic_timing_threads(std::size_t n,
                                                         std::size_t dim) {
  std::vector<core::TimingThread> threads;
  util::Rng rng(101);
  for (std::size_t t = 0; t < n; ++t) {
    core::TimingThread thread;
    thread.open_duration = 24.0 + rng.uniform(0.0, 120.0);
    const std::size_t answers = 1 + rng.uniform_index(3);
    for (std::size_t a = 0; a < answers; ++a) {
      core::TimingThread::Answer answer;
      for (std::size_t c = 0; c < dim; ++c) {
        answer.features.push_back(rng.normal(0.0, 1.0));
      }
      answer.delay = rng.uniform(0.1, thread.open_duration);
      thread.answers.push_back(std::move(answer));
    }
    for (std::size_t s = 0; s < 10; ++s) {
      core::TimingThread::SurvivalSample sample;
      for (std::size_t c = 0; c < dim; ++c) {
        sample.features.push_back(rng.normal(0.0, 1.0));
      }
      sample.weight = 1.0 + rng.uniform(0.0, 20.0);
      thread.survival.push_back(std::move(sample));
    }
    threads.push_back(std::move(thread));
  }
  return threads;
}

void BM_TimingFit(benchmark::State& state) {
  static const auto threads_data = synthetic_timing_threads(250, 34);
  const auto fit_threads = static_cast<std::size_t>(state.range(0));
  core::TimingPredictorConfig config;
  config.epochs = 10;
  config.threads = fit_threads;
  for (auto _ : state) {
    core::TimingPredictor predictor(config);
    predictor.fit(threads_data);
    benchmark::DoNotOptimize(predictor.fitted());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(threads_data.size()));
}
BENCHMARK(BM_TimingFit)->Arg(1)->Arg(8)->Unit(benchmark::kSecond);

}  // namespace

BENCHMARK_MAIN();
