// Google-benchmark microbenchmarks for the heavy substrate components:
// LDA Gibbs sweeps, Brandes betweenness, feature extraction, training steps,
// and the simplex solver. These guard the experiment-harness runtimes.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "features/extractor.hpp"
#include "forum/generator.hpp"
#include "forum/sln.hpp"
#include "graph/centrality.hpp"
#include "ml/adam.hpp"
#include "ml/mlp.hpp"
#include "obs/obs.hpp"
#include "opt/routing_lp.hpp"
#include "topics/lda.hpp"
#include "util/rng.hpp"

namespace {

using namespace forumcast;

// ---------- LDA ----------

void BM_LdaGibbs(benchmark::State& state) {
  const auto docs = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<std::vector<text::TokenId>> documents(docs);
  const std::size_t vocab = 500;
  for (auto& doc : documents) {
    doc.resize(40);
    for (auto& token : doc) {
      token = static_cast<text::TokenId>(rng.uniform_index(vocab));
    }
  }
  for (auto _ : state) {
    topics::Lda lda({.num_topics = 8, .iterations = 10, .seed = 2});
    lda.fit(documents, vocab);
    benchmark::DoNotOptimize(lda.document_topics(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(docs * 40 * 10));
}
BENCHMARK(BM_LdaGibbs)->Arg(200)->Arg(1000);

// ---------- graph centralities ----------

graph::Graph random_graph(std::size_t nodes, std::size_t edges,
                          std::uint64_t seed) {
  graph::Graph g(nodes);
  util::Rng rng(seed);
  while (g.edge_count() < edges) {
    g.add_edge(rng.uniform_index(nodes), rng.uniform_index(nodes));
  }
  return g;
}

void BM_Betweenness(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(nodes, nodes * 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::betweenness_centrality(g));
  }
}
BENCHMARK(BM_Betweenness)->Arg(500)->Arg(2000);

void BM_Closeness(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto g = random_graph(nodes, nodes * 2, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::closeness_centrality(g));
  }
}
BENCHMARK(BM_Closeness)->Arg(500)->Arg(2000);

// ---------- feature extraction ----------

struct FeatureFixture {
  forum::Dataset dataset;
  std::unique_ptr<features::FeatureExtractor> extractor;

  static FeatureFixture& instance() {
    static FeatureFixture fixture;
    return fixture;
  }

 private:
  FeatureFixture() {
    forum::GeneratorConfig config;
    config.num_users = 500;
    config.num_questions = 400;
    config.seed = 7;
    dataset = forum::generate_forum(config).dataset.preprocessed();
    std::vector<forum::QuestionId> all(dataset.num_questions());
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<forum::QuestionId>(i);
    }
    features::ExtractorConfig extractor_config;
    extractor_config.lda.iterations = 20;
    extractor = std::make_unique<features::FeatureExtractor>(dataset, all,
                                                             extractor_config);
  }
};

void BM_FeatureVector(benchmark::State& state) {
  auto& fixture = FeatureFixture::instance();
  util::Rng rng(11);
  for (auto _ : state) {
    const auto u =
        static_cast<forum::UserId>(rng.uniform_index(fixture.dataset.num_users()));
    const auto q = static_cast<forum::QuestionId>(
        rng.uniform_index(fixture.dataset.num_questions()));
    benchmark::DoNotOptimize(fixture.extractor->features(u, q));
  }
}
BENCHMARK(BM_FeatureVector);

void BM_ExtractorConstruction(benchmark::State& state) {
  forum::GeneratorConfig config;
  config.num_users = 300;
  config.num_questions = 200;
  config.seed = 13;
  const auto dataset = forum::generate_forum(config).dataset.preprocessed();
  std::vector<forum::QuestionId> all(dataset.num_questions());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<forum::QuestionId>(i);
  }
  features::ExtractorConfig extractor_config;
  extractor_config.lda.iterations = 10;
  for (auto _ : state) {
    features::FeatureExtractor extractor(dataset, all, extractor_config);
    benchmark::DoNotOptimize(extractor.dimension());
  }
}
BENCHMARK(BM_ExtractorConstruction);

// ---------- training steps ----------

void BM_MlpTrainStep(benchmark::State& state) {
  ml::Mlp net(34, {{20, ml::Activation::ReLU},
                   {20, ml::Activation::ReLU},
                   {20, ml::Activation::ReLU},
                   {1, ml::Activation::Identity}},
              17);
  ml::Adam adam(net.param_count());
  util::Rng rng(19);
  std::vector<double> x(34);
  for (double& v : x) v = rng.normal();
  ml::Mlp::Tape tape;
  for (auto _ : state) {
    net.zero_grad();
    const auto y = net.forward(x, tape);
    net.backward(tape, std::vector<double>{y[0] - 1.0});
    adam.step(net.params(), net.grads());
  }
}
BENCHMARK(BM_MlpTrainStep);

// ---------- observability overhead ----------
//
// These quantify the cost of the obs primitives themselves so the <2%
// instrumentation-overhead budget (DESIGN.md) stays auditable. Span cost is
// measured both with collection disabled (the default — one relaxed atomic
// load) and enabled (timestamping + per-thread buffer append).

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::TraceCollector::global().set_enabled(false);
  for (auto _ : state) {
    FORUMCAST_SPAN("bench.span_disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::TraceCollector::global().set_enabled(true);
  for (auto _ : state) {
    FORUMCAST_SPAN("bench.span_enabled");
    benchmark::ClobberMemory();
  }
  obs::TraceCollector::global().set_enabled(false);
  obs::TraceCollector::global().clear();
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsCounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    FORUMCAST_COUNTER_ADD("bench.counter", 1);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  util::Rng rng(31);
  for (auto _ : state) {
    FORUMCAST_HISTOGRAM_OBSERVE("bench.histogram", rng.uniform(0.0, 100.0),
                                1.0, 10.0, 50.0);
  }
}
BENCHMARK(BM_ObsHistogramObserve);

// ---------- routing LP ----------

void BM_RoutingGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(23);
  opt::RoutingProblem problem;
  for (std::size_t i = 0; i < n; ++i) {
    problem.weights.push_back(rng.normal());
    problem.capacities.push_back(rng.uniform(0.1, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_routing(problem));
  }
}
BENCHMARK(BM_RoutingGreedy)->Arg(100)->Arg(1000);

void BM_RoutingSimplex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(29);
  opt::RoutingProblem problem;
  for (std::size_t i = 0; i < n; ++i) {
    problem.weights.push_back(rng.normal());
    problem.capacities.push_back(rng.uniform(0.1, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_routing_simplex(problem));
  }
}
BENCHMARK(BM_RoutingSimplex)->Arg(20)->Arg(60);

}  // namespace

BENCHMARK_MAIN();
