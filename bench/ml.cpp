// ML substrate benchmarks: the arena-backed fp32 batch forward vs the int8
// quantized forward on the vote-network topology, plus the workspace bump
// allocator itself. tools/run_bench.sh writes these as BENCH_ml.json and
// gates the int8/fp32 batch-score ratio on BENCH_ML_MIN_SPEEDUP.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/quant.hpp"
#include "ml/workspace.hpp"
#include "util/rng.hpp"

namespace {

using namespace forumcast;

// The serving-path vote network: feature-vector input, three hidden ReLU
// layers of 20 units, linear output (paper eq. (1) topology).
constexpr std::size_t kInputDim = 34;

ml::Mlp vote_net() {
  return ml::Mlp(kInputDim,
                 {{20, ml::Activation::ReLU},
                  {20, ml::Activation::ReLU},
                  {20, ml::Activation::ReLU},
                  {1, ml::Activation::Identity}},
                 /*seed=*/5);
}

ml::Matrix feature_rows(std::size_t rows) {
  util::Rng rng(17);
  ml::Matrix x(rows, kInputDim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& v : x.row(r)) v = rng.normal();
  }
  return x;
}

// ---------- workspace ----------

// Steady-state cost of one serving-block scratch cycle: open a frame, carve
// the tensors a BatchScorer block carves, close the frame. After the first
// iteration the arena is at its high-water mark, so this measures pure bump
// arithmetic — no heap traffic.
void BM_WorkspaceFrameCycle(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::Workspace::Frame frame;
    ml::Workspace& ws = frame.workspace();
    ml::Tensor<double> x = ws.tensor<double>(rows, kInputDim);
    double* a = ws.alloc<double>(rows);
    double* b = ws.alloc<double>(rows);
    double* c = ws.alloc<double>(rows);
    benchmark::DoNotOptimize(x.data());
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkspaceFrameCycle)->Arg(256);

// ---------- fp32 vs int8 batch forward ----------

void BM_VoteForwardFp32(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const ml::Mlp net = vote_net();
  const ml::Matrix x = feature_rows(rows);
  std::vector<double> out(rows);
  ml::Tensor<double> out_view(out.data(), rows, 1);
  for (auto _ : state) {
    ml::Workspace::Frame frame;
    net.forward_batch_into(x.view(), out_view);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_VoteForwardFp32)->Arg(64)->Arg(256)->Arg(1024);

void BM_VoteForwardInt8(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const ml::Mlp net = vote_net();
  const ml::QuantizedMlp quantized = ml::QuantizedMlp::from(net);
  const ml::Matrix x = feature_rows(rows);
  std::vector<double> out(rows);
  ml::Tensor<double> out_view(out.data(), rows, 1);
  for (auto _ : state) {
    ml::Workspace::Frame frame;
    quantized.forward_batch_into(x.view(), out_view);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
  state.SetLabel(ml::gemm_s8_variant());
}
BENCHMARK(BM_VoteForwardInt8)->Arg(64)->Arg(256)->Arg(1024);

// Scalar forwards for the serving hot path's other shape: one row at a time
// (the monitor / scalar-parity path).
void BM_VoteForwardScalarFp32(benchmark::State& state) {
  const ml::Mlp net = vote_net();
  const ml::Matrix x = feature_rows(64);
  std::size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x.row(r)));
    r = (r + 1) % x.rows();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VoteForwardScalarFp32);

void BM_VoteForwardScalarInt8(benchmark::State& state) {
  const ml::Mlp net = vote_net();
  const ml::QuantizedMlp quantized = ml::QuantizedMlp::from(net);
  const ml::Matrix x = feature_rows(64);
  std::size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantized.forward(x.row(r)));
    r = (r + 1) % x.rows();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(ml::gemm_s8_variant());
}
BENCHMARK(BM_VoteForwardScalarInt8);

}  // namespace

BENCHMARK_MAIN();
