// Monitoring overhead on the serve-while-ingesting steady state.
//
// BM_IngestScoreBaseline and BM_IngestScoreMonitored run the identical
// loop — ingest a chunk, rescore the candidate set through an attached
// BatchScorer — with the only difference being a QualityMonitor wired into
// both the scorer (prediction ledger + latency histogram per batch) and the
// LiveState (label-join per answer/vote, event-time SLO evaluation). The
// acceptance budget is monitored throughput >= 95% of baseline;
// tools/run_bench.sh publishes the pair as BENCH_monitor.json and enforces
// the ratio.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/generator.hpp"
#include "obs/monitor/monitor.hpp"
#include "serve/batch_scorer.hpp"
#include "stream/live_state.hpp"
#include "stream/split.hpp"

namespace {

using namespace forumcast;

struct MonitorFixture {
  forum::Dataset base;
  std::vector<stream::ForumEvent> events;
  core::PipelineConfig config;

  static MonitorFixture& instance() {
    static MonitorFixture fixture;
    return fixture;
  }

 private:
  MonitorFixture() {
    forum::GeneratorConfig generator;
    generator.num_users = 300;
    generator.num_questions = 800;
    generator.mean_extra_answers = 1.5;
    generator.seed = 77;
    const auto full = forum::generate_forum(generator).dataset.preprocessed();
    auto split = stream::split_events_after(full, 18.0 * 24.0);
    base = std::move(split.base);
    events = std::move(split.events);

    config.extractor.lda.iterations = 10;
    config.answer.logistic.epochs = 20;
    config.vote.epochs = 10;
    config.timing.epochs = 4;
    config.survival_samples_per_thread = 3;
    config.timing.learn_omega = false;
    config.timing.f_hidden = {20, 10};
  }
};

struct LiveRun {
  forum::Dataset dataset;
  core::ForecastPipeline pipeline;
  stream::LiveState live;
  std::size_t cursor = 0;

  explicit LiveRun(const MonitorFixture& fixture)
      : dataset(fixture.base),
        pipeline(fixture.config),
        live((fit(), pipeline), dataset) {}

 private:
  void fit() {
    std::vector<forum::QuestionId> window(dataset.num_questions());
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<forum::QuestionId>(i);
    }
    pipeline.fit(dataset, window);
  }
};

// The shared loop body; `monitored` decides whether a QualityMonitor rides
// along. Both variants pay the same ingest + rescore work.
void run_ingest_score(benchmark::State& state, bool monitored) {
  auto& fixture = MonitorFixture::instance();
  constexpr std::size_t kChunk = 64;
  const std::span<const stream::ForumEvent> events(fixture.events);
  std::vector<forum::UserId> users(fixture.base.num_users());
  for (std::size_t i = 0; i < users.size(); ++i) {
    users[i] = static_cast<forum::UserId>(i);
  }
  const auto question =
      static_cast<forum::QuestionId>(fixture.base.num_questions() / 2);

  std::unique_ptr<LiveRun> run;
  std::unique_ptr<serve::BatchScorer> scorer;
  std::unique_ptr<obs::monitor::QualityMonitor> monitor;
  auto fresh = [&] {
    run = std::make_unique<LiveRun>(fixture);
    scorer = std::make_unique<serve::BatchScorer>(run->pipeline);
    run->live.attach(scorer.get());
    if (monitored) {
      obs::monitor::MonitorConfig config;
      config.drift_sample_every = 4;
      monitor = std::make_unique<obs::monitor::QualityMonitor>(config);
      monitor->set_baseline(run->pipeline.feature_baseline());
      monitor->set_feature_fn(
          [pipeline = &run->pipeline](forum::UserId u, forum::QuestionId q) {
            return pipeline->extractor().features(u, q);
          });
      scorer->set_monitor(monitor.get());
      run->live.attach_monitor(monitor.get());
    }
    run->live.score(*scorer, question, users);  // warm before timing
  };

  fresh();
  std::int64_t ingested = 0;
  for (auto _ : state) {
    if (run->cursor + kChunk > events.size()) {
      state.PauseTiming();
      fresh();
      state.ResumeTiming();
    }
    run->live.ingest(events.subspan(run->cursor, kChunk));
    run->cursor += kChunk;
    ingested += static_cast<std::int64_t>(kChunk);
    benchmark::DoNotOptimize(run->live.score(*scorer, question, users));
    // Also rescore the newest streamed question — the serving pattern that
    // gives answers arriving in later chunks a ledger entry to join against.
    const auto newest =
        static_cast<forum::QuestionId>(run->dataset.num_questions() - 1);
    benchmark::DoNotOptimize(run->live.score(*scorer, newest, users));
  }
  state.SetItemsProcessed(ingested);
  if (monitored) {
    // Keep the loop honest: the monitor must actually have seen traffic.
    const auto report = monitor->evaluate_now(1e9);
    state.counters["predictions_recorded"] =
        static_cast<double>(report.predictions_recorded);
    state.counters["outcomes_joined"] =
        static_cast<double>(report.outcomes_joined);
  }
}

void BM_IngestScoreBaseline(benchmark::State& state) {
  run_ingest_score(state, /*monitored=*/false);
}
BENCHMARK(BM_IngestScoreBaseline)->Iterations(24)->Unit(benchmark::kMillisecond);

void BM_IngestScoreMonitored(benchmark::State& state) {
  run_ingest_score(state, /*monitored=*/true);
}
BENCHMARK(BM_IngestScoreMonitored)->Iterations(24)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
