// Wire-serving throughput: the epoll daemon + micro-batcher under a
// closed-loop load generator (ctest-free; run via tools/run_bench.sh).
//
// BM_NetScore/<C> drives C concurrent connections, each with one
// outstanding 4-candidate score request (closed loop), from a single
// generator thread multiplexing non-blocking sockets over poll(). One
// generator thread — not C client threads — because the benchmark machine
// may have a single core: thread-per-connection would measure the
// scheduler, not the server. Connections spread across four hot questions,
// so the micro-batcher coalesces concurrent requests into a handful of
// BatchScorer passes per wakeup; the concurrency sweep (1 → 8 → 64) shows
// batching turning concurrency into throughput rather than queueing delay.
//
// Counters: items_per_second is completed requests/sec (the acceptance
// metric tools/run_bench.sh guards with BENCH_NET_MIN_RPS), p50_ms/p99_ms
// are client-observed round-trip latencies. At low concurrency the p50 sits
// near the micro-batch hold (max_delay) by construction — that is the
// latency the batcher spends waiting for company, the documented tradeoff.
//
// BM_NetPing measures the protocol + event-loop floor (health requests
// bypass the batcher), isolating framing/epoll overhead from scoring.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/generator.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/batch_scorer.hpp"
#include "util/check.hpp"

namespace {

using namespace forumcast;

struct NetBenchFixture {
  forum::Dataset dataset;
  std::shared_ptr<const core::ForecastPipeline> pipeline;
  std::unique_ptr<serve::BatchScorer> scorer;
  std::unique_ptr<net::Server> server;
  std::thread loop;

  static NetBenchFixture& instance() {
    static NetBenchFixture fixture;
    return fixture;
  }

  std::uint16_t port() const { return server->port(); }

  ~NetBenchFixture() {
    server->stop();
    if (loop.joinable()) loop.join();
  }

 private:
  NetBenchFixture() : dataset(make_dataset()) {
    auto fitted = std::make_shared<core::ForecastPipeline>(make_config());
    fitted->fit(dataset, dataset.questions_in_days(1, 25));
    pipeline = std::move(fitted);
    scorer = std::make_unique<serve::BatchScorer>(pipeline);
    net::ServerConfig config;
    // Batches fire on fill rather than on the clock once the closed loop is
    // warm: 32 < the 64-connection sweep, so the window only pays out at
    // low concurrency (where it is the documented micro-batching cost).
    config.batcher.max_batch_requests = 32;
    config.batcher.max_delay_ms = 1.0;
    server = std::make_unique<net::Server>(*scorer, dataset, config);
    loop = std::thread([this] { server->run(); });
  }

  static forum::Dataset make_dataset() {
    forum::GeneratorConfig config;
    config.num_users = 400;
    config.num_questions = 300;
    config.mean_extra_answers = 2.0;
    config.seed = 41;
    return forum::generate_forum(config).dataset.preprocessed();
  }

  static core::PipelineConfig make_config() {
    core::PipelineConfig config;
    config.extractor.lda.iterations = 15;
    config.answer.logistic.epochs = 30;
    config.vote.epochs = 10;
    config.timing.epochs = 5;
    config.survival_samples_per_thread = 5;
    config.timing.expectation =
        core::TimingPredictorConfig::Expectation::PaperUnnormalized;
    config.timing.learn_omega = false;
    config.timing.f_hidden = {20, 10};
    return config;
  }
};

/// C non-blocking loopback connections multiplexed over poll() from the
/// calling thread, each running a closed loop of identical pre-encoded
/// requests (one outstanding per connection).
class LoadGenerator {
 public:
  LoadGenerator(std::uint16_t port, std::size_t connections,
                std::vector<std::string> request_frames)
      : frames_(std::move(request_frames)) {
    conns_.resize(connections);
    for (std::size_t i = 0; i < connections; ++i) {
      Conn& conn = conns_[i];
      conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      FORUMCAST_CHECK_MSG(conn.fd >= 0, "socket(): " << std::strerror(errno));
      int one = 1;
      ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      FORUMCAST_CHECK_MSG(
          ::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0,
          "connect(): " << std::strerror(errno));
      const int flags = ::fcntl(conn.fd, F_GETFL, 0);
      ::fcntl(conn.fd, F_SETFL, flags | O_NONBLOCK);
      conn.frame = &frames_[i % frames_.size()];
    }
  }

  ~LoadGenerator() {
    for (const Conn& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
  }

  /// Completes `total` requests across the connections; appends one
  /// client-observed round-trip latency (ms) per request to `latencies_ms`.
  void run(std::size_t total, std::vector<double>& latencies_ms) {
    std::size_t started = 0;
    std::size_t completed = 0;
    std::vector<pollfd> fds(conns_.size());

    for (Conn& conn : conns_) {
      if (started < total) {
        begin_request(conn);
        ++started;
      } else {
        conn.in_flight = false;
      }
    }

    while (completed < total) {
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        fds[i].fd = conns_[i].fd;
        fds[i].events = static_cast<short>(
            (conns_[i].in_flight ? POLLIN : 0) |
            (conns_[i].pending_out.empty() ? 0 : POLLOUT));
        fds[i].revents = 0;
      }
      const int ready = ::poll(fds.data(), fds.size(), 1000);
      FORUMCAST_CHECK_MSG(ready > 0, "poll(): stalled or failed ("
                                         << std::strerror(errno) << ")");
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn& conn = conns_[i];
        if (fds[i].revents & POLLOUT) flush(conn);
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          if (drain(conn)) {
            ++completed;
            if (started < total) {
              begin_request(conn);
              ++started;
            } else {
              conn.in_flight = false;
            }
          }
        }
      }
    }

    latencies_ms.insert(latencies_ms.end(), latencies_.begin(),
                        latencies_.end());
    latencies_.clear();
  }

 private:
  struct Conn {
    int fd = -1;
    const std::string* frame = nullptr;
    std::string pending_out;
    std::string in;
    bool in_flight = false;
    std::chrono::steady_clock::time_point sent_at{};
  };

  void begin_request(Conn& conn) {
    conn.in_flight = true;
    conn.sent_at = std::chrono::steady_clock::now();
    conn.pending_out.append(*conn.frame);
    flush(conn);
  }

  void flush(Conn& conn) {
    while (!conn.pending_out.empty()) {
      const ssize_t n = ::send(conn.fd, conn.pending_out.data(),
                               conn.pending_out.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        FORUMCAST_CHECK_MSG(false, "send(): " << std::strerror(errno));
      }
      conn.pending_out.erase(0, static_cast<std::size_t>(n));
    }
  }

  /// Reads whatever is available; returns true when a full response frame
  /// for the outstanding request completed.
  bool drain(Conn& conn) {
    char chunk[8192];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        FORUMCAST_CHECK_MSG(false, "recv(): " << std::strerror(errno));
      }
      FORUMCAST_CHECK_MSG(n != 0, "server closed a bench connection");
      conn.in.append(chunk, static_cast<std::size_t>(n));
    }
    const net::DecodeFrameResult decoded = net::decode_frame(conn.in);
    if (decoded.bytes_consumed == 0) {
      FORUMCAST_CHECK_MSG(!decoded.corrupt, "corrupt frame from server");
      return false;
    }
    FORUMCAST_CHECK_MSG(
        decoded.message.kind != net::MessageKind::kErrorResponse,
        "server returned an error frame: " << decoded.message.text);
    conn.in.erase(0, decoded.bytes_consumed);
    latencies_.push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - conn.sent_at)
                             .count());
    return true;
  }

  std::vector<std::string> frames_;
  std::vector<Conn> conns_;
  std::vector<double> latencies_;
};

void record_quantiles(benchmark::State& state, std::vector<double>& latencies) {
  if (latencies.empty()) return;
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    const std::size_t index = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[index];
  };
  state.counters["p50_ms"] = at(0.50);
  state.counters["p99_ms"] = at(0.99);
}

std::vector<std::string> score_frames(const NetBenchFixture& fixture) {
  // Four hot questions: concurrent requests for the same question coalesce
  // into one BatchScorer pass sharing the cached question block.
  std::vector<std::string> frames;
  for (std::uint32_t q = 0; q < 4; ++q) {
    net::Message request;
    request.kind = net::MessageKind::kScoreRequest;
    request.request_id = q + 1;
    request.question =
        static_cast<forum::QuestionId>(q % fixture.dataset.num_questions());
    request.users = {0, 1, 2, 3};
    std::string frame;
    net::append_frame(frame, request);
    frames.push_back(std::move(frame));
  }
  return frames;
}

void BM_NetScore(benchmark::State& state) {
  NetBenchFixture& fixture = NetBenchFixture::instance();
  const auto concurrency = static_cast<std::size_t>(state.range(0));
  LoadGenerator generator(fixture.port(), concurrency, score_frames(fixture));
  const std::size_t per_iteration = 64 * concurrency;

  std::vector<double> latencies;
  for (auto _ : state) {
    generator.run(per_iteration, latencies);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * per_iteration));
  record_quantiles(state, latencies);
}
BENCHMARK(BM_NetScore)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // the generator sleeps in poll(); CPU time would lie

void BM_NetPing(benchmark::State& state) {
  // Health requests are answered inline by the event loop — no batcher, no
  // scoring — so this is the wire + epoll round-trip floor.
  NetBenchFixture& fixture = NetBenchFixture::instance();
  net::Message request;
  request.kind = net::MessageKind::kHealthRequest;
  request.request_id = 1;
  std::string frame;
  net::append_frame(frame, request);
  LoadGenerator generator(fixture.port(), 1, {frame});

  std::vector<double> latencies;
  for (auto _ : state) {
    generator.run(256, latencies);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 256));
  record_quantiles(state, latencies);
}
BENCHMARK(BM_NetPing)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
