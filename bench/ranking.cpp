// Extension experiment: question routing as a *ranking* problem.
//
// The paper evaluates a_{u,q} with pairwise AUC; a deployed recommender
// instead ranks candidate answerers per question. For every held-out
// question we rank its true answerers among 50 sampled non-answerers and
// report precision@1/@5, MRR, and nDCG@10, comparing:
//   * the full 20-feature logistic model (ours),
//   * SPARFA (the paper's matrix-completion baseline),
//   * an activity heuristic (rank by the user's answer count a_u — the
//     strongest single feature, and what naive platforms do).
#include <iostream>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "core/answer_predictor.hpp"
#include "eval/ranking.hpp"
#include "eval/sampling.hpp"
#include "exp/experiment.hpp"
#include "features/extractor.hpp"
#include "ml/sparfa.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto dataset = bench::make_forum(options).dataset.preprocessed();

  // Train on days 1-25, rank answerers for day 26-30 questions.
  const auto history = dataset.questions_in_days(1, 25);
  const auto holdout = dataset.questions_in_days(26, 30);
  if (history.empty() || holdout.empty()) {
    std::cerr << "workload too small\n";
    return 1;
  }

  features::ExtractorConfig extractor_config;
  extractor_config.lda.iterations = options.full ? 100 : 40;
  const features::FeatureExtractor extractor(dataset, history, extractor_config);
  const auto& layout = extractor.layout();

  // ---- train our model + SPARFA on the history window ----
  const auto train_pos = dataset.answered_pairs(history);
  const auto train_neg = eval::sample_negative_pairs(dataset, history,
                                                     train_pos.size(), 11);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (const auto& pair : train_pos) {
    rows.push_back(extractor.features(pair.user, pair.question));
    labels.push_back(1);
  }
  for (const auto& pair : train_neg) {
    rows.push_back(extractor.features(pair.user, pair.question));
    labels.push_back(0);
  }
  core::AnswerPredictorConfig answer_config;
  answer_config.logistic.epochs = options.full ? 200 : 100;
  core::AnswerPredictor model(answer_config);
  model.fit(rows, labels);

  // SPARFA over users × history questions.
  std::vector<ml::BinaryObservation> observations;
  std::unordered_map<forum::QuestionId, std::size_t> q_index;
  for (std::size_t i = 0; i < history.size(); ++i) q_index.emplace(history[i], i);
  for (const auto& pair : train_pos) {
    observations.push_back({pair.user, q_index.at(pair.question), 1});
  }
  for (const auto& pair : train_neg) {
    observations.push_back({pair.user, q_index.at(pair.question), 0});
  }
  ml::Sparfa sparfa;
  sparfa.fit(observations, dataset.num_users(), history.size());

  // ---- rank per held-out question ----
  util::Rng rng(options.seed ^ 0xfeedULL);
  util::RunningStats ours_p1, ours_p5, ours_mrr, ours_ndcg;
  util::RunningStats sparfa_p1, sparfa_p5, sparfa_mrr, sparfa_ndcg;
  util::RunningStats act_p1, act_p5, act_mrr, act_ndcg;
  std::size_t evaluated = 0;

  for (forum::QuestionId q : holdout) {
    const forum::Thread& thread = dataset.thread(q);
    if (thread.answers.empty()) continue;
    std::unordered_set<forum::UserId> positives;
    for (const auto& answer : thread.answers) positives.insert(answer.creator);

    // Candidate pool: true answerers + 50 random non-answerers.
    std::vector<forum::UserId> candidates(positives.begin(), positives.end());
    std::vector<int> candidate_labels(candidates.size(), 1);
    while (candidates.size() < positives.size() + 50) {
      const auto u = static_cast<forum::UserId>(
          rng.uniform_index(dataset.num_users()));
      if (positives.contains(u) || u == thread.question.creator) continue;
      candidates.push_back(u);
      candidate_labels.push_back(0);
    }

    std::vector<double> ours, base, activity;
    for (forum::UserId u : candidates) {
      const auto x = extractor.features(u, q);
      ours.push_back(model.predict_probability(x));
      base.push_back(sparfa.predict_probability(u, history.size()));  // cold item
      activity.push_back(x[layout.offset(features::FeatureId::AnswersProvided)]);
    }
    ++evaluated;
    auto record = [&](std::span<const double> scores, util::RunningStats& p1,
                      util::RunningStats& p5, util::RunningStats& mrr,
                      util::RunningStats& ndcg) {
      p1.add(eval::precision_at_k(scores, candidate_labels, 1));
      p5.add(eval::precision_at_k(scores, candidate_labels, 5));
      mrr.add(eval::reciprocal_rank(scores, candidate_labels));
      ndcg.add(eval::ndcg_at_k(scores, candidate_labels, 10));
    };
    record(ours, ours_p1, ours_p5, ours_mrr, ours_ndcg);
    record(base, sparfa_p1, sparfa_p5, sparfa_mrr, sparfa_ndcg);
    record(activity, act_p1, act_p5, act_mrr, act_ndcg);
  }

  std::cout << "ranked " << evaluated << " held-out questions, "
            << "pool = answerers + 50 negatives each\n";
  util::Table table("Answerer ranking quality (extension experiment)",
                    {"Model", "P@1", "P@5", "MRR", "nDCG@10"});
  auto row = [&](const std::string& name, const util::RunningStats& p1,
                 const util::RunningStats& p5, const util::RunningStats& mrr,
                 const util::RunningStats& ndcg) {
    table.add_row({name, util::Table::num(p1.mean()), util::Table::num(p5.mean()),
                   util::Table::num(mrr.mean()), util::Table::num(ndcg.mean())});
  };
  row("20-feature logistic (ours)", ours_p1, ours_p5, ours_mrr, ours_ndcg);
  row("SPARFA baseline", sparfa_p1, sparfa_p5, sparfa_mrr, sparfa_ndcg);
  row("activity heuristic (a_u)", act_p1, act_p5, act_mrr, act_ndcg);
  bench::emit(table, options, "ranking.csv");

  std::cout << "\nobservations: the feature model beats SPARFA on every metric "
               "(SPARFA cannot score unseen questions at all); the bare "
               "activity count a_u is a surprisingly strong top-of-ranking "
               "heuristic — consistent with paper Fig. 6, which finds a_u "
               "among the most predictive features.\n";
  return 0;
}
