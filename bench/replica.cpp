// Replication-tier throughput for src/replica/: consistent-hash owner
// lookups, primary ingest with a durable WAL (the shipping side's write
// path), and follower apply — a fresh state built from the bundle tailing
// the primary's WAL through WalReader and ingesting every record, which is
// the replay a follower runs on bootstrap and (minus the socket) the work
// it does per shipped batch. items_per_second on BM_FollowerApply feeds the
// BENCH_REPLICA_MIN_EPS guard in tools/run_bench.sh; the JSON report lands
// in BENCH_replica.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/generator.hpp"
#include "replica/ring.hpp"
#include "stream/live_state.hpp"
#include "stream/split.hpp"
#include "stream/wal.hpp"

namespace {

using namespace forumcast;

// One generated forum, one fit, one fully-ingested primary WAL — built on
// first use and shared by every benchmark (fitting dominates setup cost).
struct ReplicaFixture {
  forum::Dataset base;
  std::vector<stream::ForumEvent> events;
  std::string bundle_bytes;
  std::filesystem::path primary_wal_dir;

  static ReplicaFixture& instance() {
    static ReplicaFixture fixture;
    return fixture;
  }

 private:
  ReplicaFixture() {
    forum::GeneratorConfig generator;
    generator.num_users = 300;
    generator.num_questions = 800;
    generator.mean_extra_answers = 1.5;
    generator.seed = 77;
    const auto full = forum::generate_forum(generator).dataset.preprocessed();
    auto split = stream::split_events_after(full, 18.0 * 24.0);
    base = std::move(split.base);
    events = std::move(split.events);

    core::PipelineConfig config;
    config.extractor.lda.iterations = 10;
    config.answer.logistic.epochs = 20;
    config.vote.epochs = 10;
    config.timing.epochs = 4;
    config.survival_samples_per_thread = 3;
    config.timing.learn_omega = false;
    config.timing.f_hidden = {20, 10};

    forum::Dataset fit_dataset = base;
    core::ForecastPipeline pipeline(config);
    std::vector<forum::QuestionId> window(fit_dataset.num_questions());
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<forum::QuestionId>(i);
    }
    pipeline.fit(fit_dataset, window);
    std::ostringstream out;
    pipeline.save(out);
    bundle_bytes = out.str();

    // The primary's durable log: every event ingested once, WAL kept for
    // the follower-apply benchmark to tail.
    primary_wal_dir =
        std::filesystem::temp_directory_path() / "forumcast_bench_replica_p";
    std::filesystem::remove_all(primary_wal_dir);
    std::filesystem::create_directories(primary_wal_dir);
    auto primary = fresh_state(primary_wal_dir);
    primary->live->ingest(std::span<const stream::ForumEvent>(events));
  }

 public:
  // A serving state rebuilt from (base copy, bundle bytes) — the identical
  // construction the daemons use, so replay cost is the deployed cost.
  struct State {
    forum::Dataset dataset;
    core::ForecastPipeline pipeline;
    std::unique_ptr<stream::LiveState> live;
  };

  std::unique_ptr<State> fresh_state(const std::filesystem::path& wal_dir) {
    auto state = std::make_unique<State>();
    state->dataset = base;
    std::istringstream in(bundle_bytes);
    state->pipeline = core::ForecastPipeline::load(in, state->dataset);
    stream::LiveStateConfig live_config;
    live_config.wal_dir = wal_dir.string();
    state->live = std::make_unique<stream::LiveState>(state->pipeline,
                                                      state->dataset,
                                                      live_config);
    return state;
  }
};

// Ring ownership lookups/sec at the deployed vnode count — the per-request
// routing cost a cluster-aware client pays before any socket work.
void BM_RingOwner(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  replica::Ring ring;
  for (std::size_t n = 0; n < nodes; ++n) {
    ring.add_node("replica-" + std::to_string(n));
  }
  std::int64_t looked_up = 0;
  forum::UserId user = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner(user));
    user = (user + 1) % 100000;
    ++looked_up;
  }
  state.SetItemsProcessed(looked_up);
}
BENCHMARK(BM_RingOwner)->Arg(3)->Arg(8);

// Primary write path: ingest with a durable WAL (buffered appends + one
// fsync per chunk). The shipping side can never stream faster than this.
void BM_PrimaryIngest(benchmark::State& state) {
  auto& fixture = ReplicaFixture::instance();
  const auto chunk = static_cast<std::size_t>(state.range(0));
  const std::span<const stream::ForumEvent> events(fixture.events);
  const auto wal_dir =
      std::filesystem::temp_directory_path() / "forumcast_bench_replica_i";

  std::unique_ptr<ReplicaFixture::State> run;
  std::size_t cursor = events.size();  // force a fresh build on entry
  std::int64_t ingested = 0;
  for (auto _ : state) {
    if (cursor + chunk > events.size()) {
      state.PauseTiming();
      std::filesystem::remove_all(wal_dir);
      std::filesystem::create_directories(wal_dir);
      run = fixture.fresh_state(wal_dir);
      cursor = 0;
      state.ResumeTiming();
    }
    run->live->ingest(events.subspan(cursor, chunk));
    cursor += chunk;
    ingested += static_cast<std::int64_t>(chunk);
  }
  state.SetItemsProcessed(ingested);
  run.reset();
  std::filesystem::remove_all(wal_dir);
}
BENCHMARK(BM_PrimaryIngest)
    ->Arg(64)->Iterations(24)
    ->Unit(benchmark::kMillisecond);

// Follower apply: tail the primary's WAL through WalReader (decode
// included) and ingest every record into a bundle-fresh state, in the
// batch size the wire protocol ships. Each iteration replays the whole
// log; the rebuild between iterations is untimed.
void BM_FollowerApply(benchmark::State& state) {
  auto& fixture = ReplicaFixture::instance();
  const std::size_t batch_cap = 256;
  const std::string shipped = stream::wal_path(fixture.primary_wal_dir.string());
  const auto wal_dir =
      std::filesystem::temp_directory_path() / "forumcast_bench_replica_f";

  std::int64_t applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    auto run = fixture.fresh_state(wal_dir);
    stream::WalReader reader(shipped);
    std::vector<stream::ForumEvent> batch;
    state.ResumeTiming();

    while (true) {
      batch.clear();  // poll() appends; each shipped batch starts fresh
      if (reader.poll(batch, batch_cap) == 0) break;
      run->live->ingest(std::span<const stream::ForumEvent>(batch));
      applied += static_cast<std::int64_t>(batch.size());
    }

    state.PauseTiming();
    run.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(applied);
  std::filesystem::remove_all(wal_dir);
}
BENCHMARK(BM_FollowerApply)
    ->Iterations(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
