// Section V question-recommendation system — plus the simulated A/B test the
// paper proposes as future work.
//
// Protocol: the pipeline is trained on days 1–25 of the synthetic forum; each
// question of days 26–30 is then routed with the LP of eq. (2). Because the
// workload is synthetic, forum::OutcomeOracle knows the counterfactual
// expected quality and delay of *any* (u, q). Two outputs:
//
//  1. a λ sweep of the expected routed outcomes against the organic ones
//     (the quality/timing frontier the recommender trades along), and
//  2. a full A/B simulation (core::RoutingSimulator) with acceptance redraws
//     and load bookkeeping, reporting realized group means.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "core/recommender.hpp"
#include "core/routing_simulator.hpp"
#include "forum/oracle.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);
  forum::GeneratorConfig generator_config;
  generator_config.num_users = options.users;
  generator_config.num_questions = options.questions;
  generator_config.seed = options.seed;
  const auto forum_data = forum::generate_forum(generator_config);
  const auto dataset = forum_data.dataset.preprocessed();
  const forum::OutcomeOracle oracle(forum_data.dataset, forum_data.truth,
                                    generator_config);

  const auto history = dataset.questions_in_days(1, 25);
  const auto arrivals = dataset.questions_in_days(26, 30);
  if (history.empty() || arrivals.empty()) {
    std::cerr << "workload too small for the 25/5-day split\n";
    return 1;
  }

  util::Timer timer;
  core::PipelineConfig pipeline_config;
  pipeline_config.extractor.lda.iterations = options.full ? 80 : 40;
  pipeline_config.answer.logistic.epochs = options.full ? 200 : 80;
  pipeline_config.vote.epochs = options.full ? 150 : 60;
  pipeline_config.timing.epochs = options.full ? 60 : 15;
  pipeline_config.timing.f_hidden = options.full
                                        ? std::vector<std::size_t>{100, 50}
                                        : std::vector<std::size_t>{32, 16};
  pipeline_config.timing.g_hidden = pipeline_config.timing.f_hidden;
  pipeline_config.survival_samples_per_thread = options.full ? 20 : 8;
  core::ForecastPipeline pipeline(pipeline_config);
  pipeline.fit(dataset, history);
  std::cout << "pipeline trained on " << history.size() << " threads in "
            << util::Table::num(timer.seconds(), 1) << "s\n";

  // Candidate pool: every user who answered anything in the history window.
  std::vector<forum::UserId> candidates;
  {
    std::vector<bool> seen(dataset.num_users(), false);
    for (const auto& pair : dataset.answered_pairs(history)) {
      if (!seen[pair.user]) {
        seen[pair.user] = true;
        candidates.push_back(pair.user);
      }
    }
  }
  std::cout << "candidate answerers: " << candidates.size() << "\n";

  // ---- 1. λ sweep: expected outcomes under the routed distribution ----
  util::Table frontier("Sec. V — routed vs organic outcomes (ground-truth expectations)",
                       {"lambda", "Routed E[votes]", "Routed E[delay h]",
                        "Organic E[votes]", "Organic E[delay h]", "Routed qs"});
  for (double lambda : {0.0, 0.05, 0.2, 1.0, 5.0}) {
    core::RecommenderConfig rec_config;
    rec_config.epsilon = 0.3;
    rec_config.quality_time_tradeoff = lambda;
    rec_config.default_capacity = 3.0;
    const core::Recommender recommender(pipeline, rec_config);

    util::RunningStats routed_votes, routed_delay, organic_votes, organic_delay;
    std::vector<double> recent_load(candidates.size(), 0.0);
    std::size_t routed_count = 0;
    for (forum::QuestionId q : arrivals) {
      const auto result = recommender.recommend(q, candidates, recent_load);
      if (!result.feasible) continue;
      ++routed_count;
      const auto raw_q = oracle.raw_question_index(
          dataset.thread(q).question.timestamp_hours);
      double votes = 0.0, delay = 0.0;
      for (const auto& rec : result.ranking) {
        votes += rec.probability * oracle.expected_votes(rec.user, raw_q);
        delay += rec.probability * oracle.expected_delay(rec.user);
      }
      routed_votes.add(votes);
      routed_delay.add(delay);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == result.ranking.front().user) {
          recent_load[i] += 1.0;
          break;
        }
      }
      for (const auto& answer : dataset.thread(q).answers) {
        organic_votes.add(oracle.expected_votes(answer.creator, raw_q));
        organic_delay.add(oracle.expected_delay(answer.creator));
      }
    }
    frontier.add_row({util::Table::num(lambda, 2),
                      util::Table::num(routed_votes.mean(), 3),
                      util::Table::num(routed_delay.mean(), 3),
                      util::Table::num(organic_votes.mean(), 3),
                      util::Table::num(organic_delay.mean(), 3),
                      std::to_string(routed_count)});
  }
  bench::emit(frontier, options, "routing.csv");

  // ---- 2. realized A/B simulation with acceptance + load dynamics ----
  core::SimulatorConfig sim_config;
  sim_config.recommender.epsilon = 0.3;
  sim_config.recommender.quality_time_tradeoff = 0.2;
  sim_config.recommender.default_capacity = 3.0;
  core::RoutingSimulator simulator(
      pipeline,
      [&](forum::UserId u, forum::QuestionId q) {
        const auto raw_q = oracle.raw_question_index(
            dataset.thread(q).question.timestamp_hours);
        return core::SimulatedOutcome{oracle.expected_votes(u, raw_q),
                                      oracle.expected_delay(u)};
      },
      sim_config);
  const auto ab = simulator.run(dataset, arrivals, candidates);

  util::Table ab_table("Simulated A/B test (acceptance redraws + load caps)",
                       {"group", "questions", "answered", "mean votes",
                        "mean delay (h)"});
  ab_table.add_row({"A organic", std::to_string(ab.organic.questions),
                    std::to_string(ab.organic.answered),
                    util::Table::num(ab.organic.mean_votes, 3),
                    util::Table::num(ab.organic.mean_delay_hours, 3)});
  ab_table.add_row({"B routed", std::to_string(ab.routed.questions),
                    std::to_string(ab.routed.answered),
                    util::Table::num(ab.routed.mean_votes, 3),
                    util::Table::num(ab.routed.mean_delay_hours, 3)});
  bench::emit(ab_table, options, "routing_ab.csv");

  std::cout << "\nshape checks:\n"
            << "  - λ=0 routes for quality: routed E[votes] exceeds organic.\n"
            << "  - large λ routes for speed: routed E[delay] drops below organic.\n"
            << "  - A/B: group B mean votes should exceed group A.\n";
  return 0;
}
