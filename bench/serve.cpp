// Batch-vs-scalar scoring throughput for the serving layer.
//
// Guards the headline BatchScorer win: scoring one question against N
// candidates through the cached-feature + blocked-GEMM path must beat N
// independent ForecastPipeline::predict calls by a wide margin (the CI bench
// guard in tools/run_bench.sh enforces the ratio). Both paths produce
// bit-identical predictions, so items_per_second is the only axis.
//
// The fixture fits one pipeline on a mid-sized generated forum with the
// PaperUnnormalized delay estimator — the closed-form expectation — so the
// measurement isolates feature assembly + model forwards instead of being
// dominated by the Simpson integration both paths would share.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/generator.hpp"
#include "ml/matrix.hpp"
#include "serve/batch_scorer.hpp"

namespace {

using namespace forumcast;

struct ServeFixture {
  forum::Dataset dataset;
  core::ForecastPipeline pipeline;
  forum::QuestionId question = 0;
  std::vector<forum::UserId> users;

  static ServeFixture& instance() {
    static ServeFixture fixture;
    return fixture;
  }

 private:
  ServeFixture() : dataset(make_dataset()), pipeline(make_config()) {
    const auto history = dataset.questions_in_days(1, 25);
    pipeline.fit(dataset, history);
    const auto late = dataset.questions_in_days(26, 30);
    question = late.empty()
                   ? static_cast<forum::QuestionId>(dataset.num_questions() - 1)
                   : late.front();
    users.resize(dataset.num_users());
    for (std::size_t i = 0; i < users.size(); ++i) {
      users[i] = static_cast<forum::UserId>(i);
    }
  }

  static forum::Dataset make_dataset() {
    forum::GeneratorConfig config;
    config.num_users = 1200;
    // Dense history: candidate answerers carry a real answer record (the
    // paper's Stack Overflow regulars), which is what the per-pair feature
    // loops in the scalar path scale with and the cache amortizes.
    config.num_questions = 900;
    config.mean_extra_answers = 2.0;
    config.seed = 41;
    return forum::generate_forum(config).dataset.preprocessed();
  }

  static core::PipelineConfig make_config() {
    core::PipelineConfig config;
    config.extractor.lda.iterations = 15;
    config.answer.logistic.epochs = 30;
    config.vote.epochs = 10;
    config.timing.epochs = 5;
    config.survival_samples_per_thread = 5;
    config.timing.expectation =
        core::TimingPredictorConfig::Expectation::PaperUnnormalized;
    // Constant ω (no g-network) — the parametrization the paper found best
    // on Stack Overflow and the cheaper serving configuration.
    config.timing.learn_omega = false;
    config.timing.f_hidden = {20, 10};
    return config;
  }
};

std::span<const forum::UserId> candidate_slice(const ServeFixture& fixture,
                                               std::size_t n) {
  return std::span<const forum::UserId>(fixture.users.data(),
                                        std::min(n, fixture.users.size()));
}

void BM_ScalarScore(benchmark::State& state) {
  auto& fixture = ServeFixture::instance();
  const auto users = candidate_slice(fixture, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (const forum::UserId u : users) {
      benchmark::DoNotOptimize(fixture.pipeline.predict(u, fixture.question));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users.size()));
}
BENCHMARK(BM_ScalarScore)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_BatchScore(benchmark::State& state) {
  auto& fixture = ServeFixture::instance();
  const auto users = candidate_slice(fixture, static_cast<std::size_t>(state.range(0)));
  serve::BatchScorer scorer(fixture.pipeline);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score(fixture.question, users));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users.size()));
}
BENCHMARK(BM_BatchScore)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// Component view: feature assembly alone (cache hits only), then the three
// batched model forwards alone. Together they account for BM_BatchScore; use
// them to see which side a regression lives on.
void BM_BatchAssemble(benchmark::State& state) {
  auto& fixture = ServeFixture::instance();
  const auto users = candidate_slice(fixture, static_cast<std::size_t>(state.range(0)));
  serve::FeatureCache cache;
  cache.sync(fixture.pipeline.extractor(), fixture.pipeline.dataset(),
             fixture.pipeline.generation());
  cache.warm_users(users);
  const auto block = cache.question_block(fixture.question);
  ml::Matrix x(users.size(), cache.dimension());
  for (auto _ : state) {
    for (std::size_t r = 0; r < users.size(); ++r) {
      cache.assemble(users[r], *block, x.row(r));
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users.size()));
}
BENCHMARK(BM_BatchAssemble)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BatchForwards(benchmark::State& state) {
  auto& fixture = ServeFixture::instance();
  const auto users = candidate_slice(fixture, static_cast<std::size_t>(state.range(0)));
  serve::FeatureCache cache;
  cache.sync(fixture.pipeline.extractor(), fixture.pipeline.dataset(),
             fixture.pipeline.generation());
  cache.warm_users(users);
  const auto block = cache.question_block(fixture.question);
  ml::Matrix x(users.size(), cache.dimension());
  for (std::size_t r = 0; r < users.size(); ++r) {
    cache.assemble(users[r], *block, x.row(r));
  }
  const double open_duration =
      fixture.pipeline.question_open_duration(fixture.question);
  std::vector<double> answer(users.size()), votes(users.size()),
      delay(users.size());
  for (auto _ : state) {
    fixture.pipeline.answer_predictor().predict_probability_batch(x, answer);
    fixture.pipeline.vote_predictor().predict_batch(x, votes);
    fixture.pipeline.timing_predictor().predict_delay_batch(x, open_duration,
                                                            delay);
    benchmark::DoNotOptimize(delay.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users.size()));
}
BENCHMARK(BM_BatchForwards)->Arg(256)->Unit(benchmark::kMillisecond);

// Cold-cache variant: a fresh scorer per iteration pays the user-block warm
// and the question block build inside the timed region. Shows the cache fill
// amortizes within a single question's scoring pass.
void BM_BatchScoreColdCache(benchmark::State& state) {
  auto& fixture = ServeFixture::instance();
  const auto users = candidate_slice(fixture, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    serve::BatchScorer scorer(fixture.pipeline);
    benchmark::DoNotOptimize(scorer.score(fixture.question, users));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users.size()));
}
BENCHMARK(BM_BatchScoreColdCache)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
