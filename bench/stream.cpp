// Streaming ingestion throughput (events/sec) for src/stream/.
//
// The stream is pre-generated once by splitting a generated forum at an
// early cutoff, so most of its life arrives as events: NewQuestion /
// NewAnswer / Vote in timestamp order, exactly what `forumcast ingest`
// replays. Ingestion mutates the pipeline in place, so each timed run
// consumes the stream from a fresh fit; iteration counts are pinned so a
// run fits inside one pass, with an untimed rebuild as the fallback when
// the stream runs dry. items_per_second in the JSON report is events/sec —
// tools/run_bench.sh surfaces it as BENCH_stream.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/generator.hpp"
#include "graph/centrality.hpp"
#include "serve/batch_scorer.hpp"
#include "stream/live_state.hpp"
#include "stream/split.hpp"
#include "stream/wal.hpp"

namespace {

using namespace forumcast;

struct StreamFixture {
  forum::Dataset base;               // pristine pre-stream forum
  std::vector<stream::ForumEvent> events;
  core::PipelineConfig config;

  static StreamFixture& instance() {
    static StreamFixture fixture;
    return fixture;
  }

 private:
  StreamFixture() {
    forum::GeneratorConfig generator;
    generator.num_users = 300;
    generator.num_questions = 800;
    generator.mean_extra_answers = 1.5;
    generator.seed = 77;
    const auto full = forum::generate_forum(generator).dataset.preprocessed();
    // Day-18 cutoff of a 30-day forum: roughly the back half of the corpus
    // arrives as events — a few thousand of them.
    auto split = stream::split_events_after(full, 18.0 * 24.0);
    base = std::move(split.base);
    events = std::move(split.events);

    config.extractor.lda.iterations = 10;
    config.answer.logistic.epochs = 20;
    config.vote.epochs = 10;
    config.timing.epochs = 4;
    config.survival_samples_per_thread = 3;
    config.timing.learn_omega = false;
    config.timing.f_hidden = {20, 10};
  }
};

// One fitted pipeline + live state consuming the fixture's stream.
struct LiveRun {
  forum::Dataset dataset;
  core::ForecastPipeline pipeline;
  stream::LiveState live;
  std::size_t cursor = 0;

  explicit LiveRun(const StreamFixture& fixture)
      : dataset(fixture.base),
        pipeline(fixture.config),
        live((fit(), pipeline), dataset) {}

 private:
  void fit() {
    std::vector<forum::QuestionId> window(dataset.num_questions());
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<forum::QuestionId>(i);
    }
    pipeline.fit(dataset, window);
  }
};

void BM_StreamIngest(benchmark::State& state) {
  auto& fixture = StreamFixture::instance();
  const auto chunk = static_cast<std::size_t>(state.range(0));
  const std::span<const stream::ForumEvent> events(fixture.events);
  auto run = std::make_unique<LiveRun>(fixture);
  std::int64_t ingested = 0;
  for (auto _ : state) {
    if (run->cursor + chunk > events.size()) {
      state.PauseTiming();
      run = std::make_unique<LiveRun>(fixture);  // stream exhausted: refit
      state.ResumeTiming();
    }
    run->live.ingest(events.subspan(run->cursor, chunk));
    run->cursor += chunk;
    ingested += static_cast<std::int64_t>(chunk);
  }
  state.SetItemsProcessed(ingested);
}
// Iteration count pinned (it applies to every Arg) so runtime stays
// deterministic instead of google-benchmark adaptively looping through
// dozens of untimed refits.
BENCHMARK(BM_StreamIngest)
    ->Arg(1)->Arg(64)->Arg(256)
    ->Iterations(6)
    ->Unit(benchmark::kMillisecond);

// Same replay with sampled + incremental centrality instead of the exact
// full recompute on every refresh — the tentpole's ingest-throughput uplift.
// Compare items_per_second against BM_StreamIngest at the same chunk size.
void BM_StreamIngestSampled(benchmark::State& state) {
  auto& fixture = StreamFixture::instance();
  const auto chunk = static_cast<std::size_t>(state.range(0));
  const std::span<const stream::ForumEvent> events(fixture.events);

  core::PipelineConfig sampled_config = fixture.config;
  sampled_config.extractor.centrality.mode = graph::CentralityMode::kSampled;
  sampled_config.extractor.centrality.num_pivots = 160;

  struct SampledRun {
    forum::Dataset dataset;
    core::ForecastPipeline pipeline;
    std::unique_ptr<stream::LiveState> live;
    std::size_t cursor = 0;
    SampledRun(const forum::Dataset& base, const core::PipelineConfig& config)
        : dataset(base), pipeline(config) {}
  };
  auto fresh = [&] {
    auto run = std::make_unique<SampledRun>(fixture.base, sampled_config);
    std::vector<forum::QuestionId> window(run->dataset.num_questions());
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<forum::QuestionId>(i);
    }
    run->pipeline.fit(run->dataset, window);
    run->live = std::make_unique<stream::LiveState>(run->pipeline,
                                                    run->dataset);
    return run;
  };

  auto run = fresh();
  std::int64_t ingested = 0;
  for (auto _ : state) {
    if (run->cursor + chunk > events.size()) {
      state.PauseTiming();
      run = fresh();
      state.ResumeTiming();
    }
    run->live->ingest(events.subspan(run->cursor, chunk));
    run->cursor += chunk;
    ingested += static_cast<std::int64_t>(chunk);
  }
  state.SetItemsProcessed(ingested);
}
BENCHMARK(BM_StreamIngestSampled)
    ->Arg(1)->Arg(64)->Arg(256)
    ->Iterations(6)
    ->Unit(benchmark::kMillisecond);

// Same ingestion with a warm BatchScorer attached: every batch additionally
// pays fine-grained cache invalidation plus a rescore of the full candidate
// set, i.e. the serve-while-ingesting steady state.
void BM_StreamIngestWithScorer(benchmark::State& state) {
  auto& fixture = StreamFixture::instance();
  const auto chunk = static_cast<std::size_t>(state.range(0));
  const std::span<const stream::ForumEvent> events(fixture.events);
  std::vector<forum::UserId> users(fixture.base.num_users());
  for (std::size_t i = 0; i < users.size(); ++i) {
    users[i] = static_cast<forum::UserId>(i);
  }
  const auto question =
      static_cast<forum::QuestionId>(fixture.base.num_questions() / 2);

  auto run = std::make_unique<LiveRun>(fixture);
  auto scorer = std::make_unique<serve::BatchScorer>(run->pipeline);
  run->live.attach(scorer.get());
  run->live.score(*scorer, question, users);  // warm before the clock starts
  std::int64_t ingested = 0;
  for (auto _ : state) {
    if (run->cursor + chunk > events.size()) {
      state.PauseTiming();
      run = std::make_unique<LiveRun>(fixture);
      scorer = std::make_unique<serve::BatchScorer>(run->pipeline);
      run->live.attach(scorer.get());
      run->live.score(*scorer, question, users);
      state.ResumeTiming();
    }
    run->live.ingest(events.subspan(run->cursor, chunk));
    run->cursor += chunk;
    ingested += static_cast<std::int64_t>(chunk);
    benchmark::DoNotOptimize(run->live.score(*scorer, question, users));
  }
  state.SetItemsProcessed(ingested);
}
BENCHMARK(BM_StreamIngestWithScorer)
    ->Arg(64)->Iterations(24)
    ->Unit(benchmark::kMillisecond);

// Durability floor: ingestion with a WAL dir pays one buffered append per
// event plus one fsync per batch. Runs against tmpdir storage.
void BM_StreamIngestDurable(benchmark::State& state) {
  auto& fixture = StreamFixture::instance();
  const auto chunk = static_cast<std::size_t>(state.range(0));
  const std::span<const stream::ForumEvent> events(fixture.events);
  const auto wal_dir =
      std::filesystem::temp_directory_path() / "forumcast_bench_wal";

  // LiveState is not assignable; rebuild the whole run per pass.
  struct DurableRun {
    forum::Dataset dataset;
    core::ForecastPipeline pipeline;
    std::unique_ptr<stream::LiveState> live;
    std::size_t cursor = 0;
    DurableRun(const forum::Dataset& base, const core::PipelineConfig& config)
        : dataset(base), pipeline(config) {}
  };
  auto fresh = [&] {
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    auto run = std::make_unique<DurableRun>(fixture.base, fixture.config);
    std::vector<forum::QuestionId> window(run->dataset.num_questions());
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<forum::QuestionId>(i);
    }
    run->pipeline.fit(run->dataset, window);
    stream::LiveStateConfig config;
    config.wal_dir = wal_dir.string();
    run->live = std::make_unique<stream::LiveState>(run->pipeline,
                                                    run->dataset, config);
    return run;
  };

  auto run = fresh();
  std::int64_t ingested = 0;
  for (auto _ : state) {
    if (run->cursor + chunk > events.size()) {
      state.PauseTiming();
      run = fresh();
      state.ResumeTiming();
    }
    run->live->ingest(events.subspan(run->cursor, chunk));
    run->cursor += chunk;
    ingested += static_cast<std::int64_t>(chunk);
  }
  state.SetItemsProcessed(ingested);
  std::filesystem::remove_all(wal_dir);
}
BENCHMARK(BM_StreamIngestDurable)
    ->Arg(64)->Iterations(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
