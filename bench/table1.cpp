// Reproduces paper Table I: performance of the three predictors against
// their baselines (SPARFA, MF, Poisson regression) on the full dataset with
// repeated stratified 5-fold cross validation.
//
// Paper reference values (Stack Overflow, 20k threads):
//   a_{u,q}: AUC  0.699 ± .005 → 0.860 ± .004   (+23.0 %)
//   v_{u,q}: RMSE 1.554 ± .057 → 1.213 ± .118   (+21.9 %)
//   r_{u,q}: RMSE 34.25 ± 4.64 → 26.35 ± 3.57   (+22.8 %)
// The synthetic workload reproduces the *shape* (our model wins every task);
// absolute values depend on the simulated vote/delay scales.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "exp/experiment.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace forumcast;
  const auto options = bench::BenchOptions::parse(argc, argv);

  util::Timer timer;
  const auto forum = bench::make_forum(options);
  const auto dataset = forum.dataset.preprocessed();
  const auto stats = dataset.stats();
  std::cout << "dataset: " << stats.questions << " questions, " << stats.answers
            << " answers, " << stats.distinct_users << " users (generated in "
            << util::Table::num(timer.seconds(), 1) << "s)\n";

  timer.reset();
  const auto omega = bench::all_questions(dataset);
  features::ExtractorConfig extractor_config;
  extractor_config.lda.iterations = options.full ? 100 : 50;
  // Default protocol: features over the full window (fast). The paper's
  // strict F(q) = {q' ≤ q} semantics are approximated at 5-day-block
  // granularity by FORUMCAST_BLOCKED=1 (BlockedExperimentContext): block b's
  // features are computed only from earlier blocks.
  std::unique_ptr<exp::PairFeatureSource> context;
  const bool blocked = std::getenv("FORUMCAST_BLOCKED") != nullptr;
  if (blocked) {
    context = std::make_unique<exp::BlockedExperimentContext>(
        dataset, omega, /*block_days=*/5, extractor_config);
  } else {
    context = std::make_unique<exp::ExperimentContext>(dataset, omega, omega,
                                                       extractor_config);
  }
  std::cout << "feature context (" << (blocked ? "blocked F(q)" : "full window")
            << ") built in " << util::Table::num(timer.seconds(), 1) << "s\n";

  exp::TaskSetup setup = exp::fast_task_setup();
  if (options.full) {
    setup = exp::TaskSetup{};  // paper-scale training epochs
    setup.repeats = 5;         // 25 iterations as in Sec. IV-A
  }

  timer.reset();
  const auto result = exp::run_tasks(*context, setup);
  std::cout << "cross-validation (" << setup.folds * setup.repeats
            << " iterations) in " << util::Table::num(timer.seconds(), 1) << "s\n";

  util::Table table("Table I — prediction performance vs baselines",
                    {"Task", "Metric", "Baseline", "Our model", "Improvement"});
  auto row = [&](const std::string& task, const std::string& metric,
                 const exp::TaskMetrics& baseline, const exp::TaskMetrics& ours,
                 bool higher_better) {
    const double improvement = eval::improvement_percent(
        baseline.mean(), ours.mean(), higher_better);
    table.add_row({task, metric,
                   util::Table::num(baseline.mean()) + " ± " +
                       util::Table::num(baseline.stddev()),
                   util::Table::num(ours.mean()) + " ± " +
                       util::Table::num(ours.stddev()),
                   util::Table::num(improvement, 1) + "%"});
  };
  row("a_uq (will answer)", "AUC", result.answer_auc_baseline, result.answer_auc,
      true);
  row("v_uq (net votes)", "RMSE", result.vote_rmse_baseline, result.vote_rmse,
      false);
  row("r_uq (resp. time, h)", "RMSE", result.timing_rmse_baseline,
      result.timing_rmse, false);
  bench::emit(table, options, "table1.csv");
  return 0;
}
