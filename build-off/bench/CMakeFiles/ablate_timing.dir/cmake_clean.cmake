file(REMOVE_RECURSE
  "CMakeFiles/ablate_timing.dir/ablate_timing.cpp.o"
  "CMakeFiles/ablate_timing.dir/ablate_timing.cpp.o.d"
  "ablate_timing"
  "ablate_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
