# Empty dependencies file for ablate_timing.
# This may be replaced when dependencies are built.
