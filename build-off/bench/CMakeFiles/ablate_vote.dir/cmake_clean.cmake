file(REMOVE_RECURSE
  "CMakeFiles/ablate_vote.dir/ablate_vote.cpp.o"
  "CMakeFiles/ablate_vote.dir/ablate_vote.cpp.o.d"
  "ablate_vote"
  "ablate_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
