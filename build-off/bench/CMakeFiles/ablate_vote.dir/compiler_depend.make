# Empty compiler generated dependencies file for ablate_vote.
# This may be replaced when dependencies are built.
