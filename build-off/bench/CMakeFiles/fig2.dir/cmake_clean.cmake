file(REMOVE_RECURSE
  "CMakeFiles/fig2.dir/fig2.cpp.o"
  "CMakeFiles/fig2.dir/fig2.cpp.o.d"
  "fig2"
  "fig2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
