# Empty compiler generated dependencies file for fig2.
# This may be replaced when dependencies are built.
