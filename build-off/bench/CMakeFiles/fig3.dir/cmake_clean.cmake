file(REMOVE_RECURSE
  "CMakeFiles/fig3.dir/fig3.cpp.o"
  "CMakeFiles/fig3.dir/fig3.cpp.o.d"
  "fig3"
  "fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
