# Empty dependencies file for fig3.
# This may be replaced when dependencies are built.
