
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4.cpp" "bench/CMakeFiles/fig4.dir/fig4.cpp.o" "gcc" "bench/CMakeFiles/fig4.dir/fig4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/exp/CMakeFiles/forumcast_exp.dir/DependInfo.cmake"
  "/root/repo/build-off/src/core/CMakeFiles/forumcast_core.dir/DependInfo.cmake"
  "/root/repo/build-off/src/forum/CMakeFiles/forumcast_forum.dir/DependInfo.cmake"
  "/root/repo/build-off/src/features/CMakeFiles/forumcast_features.dir/DependInfo.cmake"
  "/root/repo/build-off/src/eval/CMakeFiles/forumcast_eval.dir/DependInfo.cmake"
  "/root/repo/build-off/src/opt/CMakeFiles/forumcast_opt.dir/DependInfo.cmake"
  "/root/repo/build-off/src/topics/CMakeFiles/forumcast_topics.dir/DependInfo.cmake"
  "/root/repo/build-off/src/graph/CMakeFiles/forumcast_graph.dir/DependInfo.cmake"
  "/root/repo/build-off/src/ml/CMakeFiles/forumcast_ml.dir/DependInfo.cmake"
  "/root/repo/build-off/src/text/CMakeFiles/forumcast_text.dir/DependInfo.cmake"
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
