file(REMOVE_RECURSE
  "CMakeFiles/fig4.dir/fig4.cpp.o"
  "CMakeFiles/fig4.dir/fig4.cpp.o.d"
  "fig4"
  "fig4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
