# Empty dependencies file for fig4.
# This may be replaced when dependencies are built.
