file(REMOVE_RECURSE
  "CMakeFiles/routing.dir/routing.cpp.o"
  "CMakeFiles/routing.dir/routing.cpp.o.d"
  "routing"
  "routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
