# Empty dependencies file for routing.
# This may be replaced when dependencies are built.
