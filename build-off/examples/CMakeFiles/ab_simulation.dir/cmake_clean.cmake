file(REMOVE_RECURSE
  "CMakeFiles/ab_simulation.dir/ab_simulation.cpp.o"
  "CMakeFiles/ab_simulation.dir/ab_simulation.cpp.o.d"
  "ab_simulation"
  "ab_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
