# Empty compiler generated dependencies file for ab_simulation.
# This may be replaced when dependencies are built.
