file(REMOVE_RECURSE
  "CMakeFiles/forum_analytics.dir/forum_analytics.cpp.o"
  "CMakeFiles/forum_analytics.dir/forum_analytics.cpp.o.d"
  "forum_analytics"
  "forum_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forum_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
