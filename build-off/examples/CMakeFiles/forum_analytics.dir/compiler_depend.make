# Empty compiler generated dependencies file for forum_analytics.
# This may be replaced when dependencies are built.
