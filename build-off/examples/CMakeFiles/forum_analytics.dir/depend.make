# Empty dependencies file for forum_analytics.
# This may be replaced when dependencies are built.
