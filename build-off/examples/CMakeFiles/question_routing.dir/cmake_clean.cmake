file(REMOVE_RECURSE
  "CMakeFiles/question_routing.dir/question_routing.cpp.o"
  "CMakeFiles/question_routing.dir/question_routing.cpp.o.d"
  "question_routing"
  "question_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/question_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
