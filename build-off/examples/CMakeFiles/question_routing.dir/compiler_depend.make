# Empty compiler generated dependencies file for question_routing.
# This may be replaced when dependencies are built.
