# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-off/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("util")
subdirs("text")
subdirs("ml")
subdirs("graph")
subdirs("topics")
subdirs("forum")
subdirs("features")
subdirs("eval")
subdirs("opt")
subdirs("core")
subdirs("exp")
