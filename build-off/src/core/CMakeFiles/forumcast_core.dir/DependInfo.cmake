
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/answer_predictor.cpp" "src/core/CMakeFiles/forumcast_core.dir/answer_predictor.cpp.o" "gcc" "src/core/CMakeFiles/forumcast_core.dir/answer_predictor.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/forumcast_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/forumcast_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/recommender.cpp" "src/core/CMakeFiles/forumcast_core.dir/recommender.cpp.o" "gcc" "src/core/CMakeFiles/forumcast_core.dir/recommender.cpp.o.d"
  "/root/repo/src/core/routing_simulator.cpp" "src/core/CMakeFiles/forumcast_core.dir/routing_simulator.cpp.o" "gcc" "src/core/CMakeFiles/forumcast_core.dir/routing_simulator.cpp.o.d"
  "/root/repo/src/core/timing_predictor.cpp" "src/core/CMakeFiles/forumcast_core.dir/timing_predictor.cpp.o" "gcc" "src/core/CMakeFiles/forumcast_core.dir/timing_predictor.cpp.o.d"
  "/root/repo/src/core/vote_predictor.cpp" "src/core/CMakeFiles/forumcast_core.dir/vote_predictor.cpp.o" "gcc" "src/core/CMakeFiles/forumcast_core.dir/vote_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/ml/CMakeFiles/forumcast_ml.dir/DependInfo.cmake"
  "/root/repo/build-off/src/features/CMakeFiles/forumcast_features.dir/DependInfo.cmake"
  "/root/repo/build-off/src/eval/CMakeFiles/forumcast_eval.dir/DependInfo.cmake"
  "/root/repo/build-off/src/opt/CMakeFiles/forumcast_opt.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  "/root/repo/build-off/src/forum/CMakeFiles/forumcast_forum.dir/DependInfo.cmake"
  "/root/repo/build-off/src/topics/CMakeFiles/forumcast_topics.dir/DependInfo.cmake"
  "/root/repo/build-off/src/text/CMakeFiles/forumcast_text.dir/DependInfo.cmake"
  "/root/repo/build-off/src/graph/CMakeFiles/forumcast_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
