file(REMOVE_RECURSE
  "CMakeFiles/forumcast_core.dir/answer_predictor.cpp.o"
  "CMakeFiles/forumcast_core.dir/answer_predictor.cpp.o.d"
  "CMakeFiles/forumcast_core.dir/pipeline.cpp.o"
  "CMakeFiles/forumcast_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/forumcast_core.dir/recommender.cpp.o"
  "CMakeFiles/forumcast_core.dir/recommender.cpp.o.d"
  "CMakeFiles/forumcast_core.dir/routing_simulator.cpp.o"
  "CMakeFiles/forumcast_core.dir/routing_simulator.cpp.o.d"
  "CMakeFiles/forumcast_core.dir/timing_predictor.cpp.o"
  "CMakeFiles/forumcast_core.dir/timing_predictor.cpp.o.d"
  "CMakeFiles/forumcast_core.dir/vote_predictor.cpp.o"
  "CMakeFiles/forumcast_core.dir/vote_predictor.cpp.o.d"
  "libforumcast_core.a"
  "libforumcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
