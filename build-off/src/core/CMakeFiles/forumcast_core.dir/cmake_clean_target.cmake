file(REMOVE_RECURSE
  "libforumcast_core.a"
)
