# Empty dependencies file for forumcast_core.
# This may be replaced when dependencies are built.
