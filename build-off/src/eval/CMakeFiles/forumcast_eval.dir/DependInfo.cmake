
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/crossval.cpp" "src/eval/CMakeFiles/forumcast_eval.dir/crossval.cpp.o" "gcc" "src/eval/CMakeFiles/forumcast_eval.dir/crossval.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/forumcast_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/forumcast_eval.dir/metrics.cpp.o.d"
  "/root/repo/src/eval/ranking.cpp" "src/eval/CMakeFiles/forumcast_eval.dir/ranking.cpp.o" "gcc" "src/eval/CMakeFiles/forumcast_eval.dir/ranking.cpp.o.d"
  "/root/repo/src/eval/sampling.cpp" "src/eval/CMakeFiles/forumcast_eval.dir/sampling.cpp.o" "gcc" "src/eval/CMakeFiles/forumcast_eval.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/forum/CMakeFiles/forumcast_forum.dir/DependInfo.cmake"
  "/root/repo/build-off/src/graph/CMakeFiles/forumcast_graph.dir/DependInfo.cmake"
  "/root/repo/build-off/src/topics/CMakeFiles/forumcast_topics.dir/DependInfo.cmake"
  "/root/repo/build-off/src/text/CMakeFiles/forumcast_text.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
