file(REMOVE_RECURSE
  "CMakeFiles/forumcast_eval.dir/crossval.cpp.o"
  "CMakeFiles/forumcast_eval.dir/crossval.cpp.o.d"
  "CMakeFiles/forumcast_eval.dir/metrics.cpp.o"
  "CMakeFiles/forumcast_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/forumcast_eval.dir/ranking.cpp.o"
  "CMakeFiles/forumcast_eval.dir/ranking.cpp.o.d"
  "CMakeFiles/forumcast_eval.dir/sampling.cpp.o"
  "CMakeFiles/forumcast_eval.dir/sampling.cpp.o.d"
  "libforumcast_eval.a"
  "libforumcast_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
