file(REMOVE_RECURSE
  "libforumcast_eval.a"
)
