# Empty compiler generated dependencies file for forumcast_eval.
# This may be replaced when dependencies are built.
