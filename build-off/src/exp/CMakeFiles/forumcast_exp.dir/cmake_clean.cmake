file(REMOVE_RECURSE
  "CMakeFiles/forumcast_exp.dir/experiment.cpp.o"
  "CMakeFiles/forumcast_exp.dir/experiment.cpp.o.d"
  "libforumcast_exp.a"
  "libforumcast_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
