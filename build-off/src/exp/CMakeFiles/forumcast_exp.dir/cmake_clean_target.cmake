file(REMOVE_RECURSE
  "libforumcast_exp.a"
)
