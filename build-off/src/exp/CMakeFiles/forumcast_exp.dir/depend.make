# Empty dependencies file for forumcast_exp.
# This may be replaced when dependencies are built.
