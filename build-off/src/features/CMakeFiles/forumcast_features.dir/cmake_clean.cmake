file(REMOVE_RECURSE
  "CMakeFiles/forumcast_features.dir/extractor.cpp.o"
  "CMakeFiles/forumcast_features.dir/extractor.cpp.o.d"
  "CMakeFiles/forumcast_features.dir/feature_layout.cpp.o"
  "CMakeFiles/forumcast_features.dir/feature_layout.cpp.o.d"
  "libforumcast_features.a"
  "libforumcast_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
