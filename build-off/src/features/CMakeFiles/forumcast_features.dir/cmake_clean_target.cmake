file(REMOVE_RECURSE
  "libforumcast_features.a"
)
