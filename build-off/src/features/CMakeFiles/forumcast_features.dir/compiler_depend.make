# Empty compiler generated dependencies file for forumcast_features.
# This may be replaced when dependencies are built.
