
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forum/dataset.cpp" "src/forum/CMakeFiles/forumcast_forum.dir/dataset.cpp.o" "gcc" "src/forum/CMakeFiles/forumcast_forum.dir/dataset.cpp.o.d"
  "/root/repo/src/forum/generator.cpp" "src/forum/CMakeFiles/forumcast_forum.dir/generator.cpp.o" "gcc" "src/forum/CMakeFiles/forumcast_forum.dir/generator.cpp.o.d"
  "/root/repo/src/forum/io.cpp" "src/forum/CMakeFiles/forumcast_forum.dir/io.cpp.o" "gcc" "src/forum/CMakeFiles/forumcast_forum.dir/io.cpp.o.d"
  "/root/repo/src/forum/oracle.cpp" "src/forum/CMakeFiles/forumcast_forum.dir/oracle.cpp.o" "gcc" "src/forum/CMakeFiles/forumcast_forum.dir/oracle.cpp.o.d"
  "/root/repo/src/forum/sln.cpp" "src/forum/CMakeFiles/forumcast_forum.dir/sln.cpp.o" "gcc" "src/forum/CMakeFiles/forumcast_forum.dir/sln.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/text/CMakeFiles/forumcast_text.dir/DependInfo.cmake"
  "/root/repo/build-off/src/graph/CMakeFiles/forumcast_graph.dir/DependInfo.cmake"
  "/root/repo/build-off/src/topics/CMakeFiles/forumcast_topics.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
