file(REMOVE_RECURSE
  "CMakeFiles/forumcast_forum.dir/dataset.cpp.o"
  "CMakeFiles/forumcast_forum.dir/dataset.cpp.o.d"
  "CMakeFiles/forumcast_forum.dir/generator.cpp.o"
  "CMakeFiles/forumcast_forum.dir/generator.cpp.o.d"
  "CMakeFiles/forumcast_forum.dir/io.cpp.o"
  "CMakeFiles/forumcast_forum.dir/io.cpp.o.d"
  "CMakeFiles/forumcast_forum.dir/oracle.cpp.o"
  "CMakeFiles/forumcast_forum.dir/oracle.cpp.o.d"
  "CMakeFiles/forumcast_forum.dir/sln.cpp.o"
  "CMakeFiles/forumcast_forum.dir/sln.cpp.o.d"
  "libforumcast_forum.a"
  "libforumcast_forum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_forum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
