file(REMOVE_RECURSE
  "libforumcast_forum.a"
)
