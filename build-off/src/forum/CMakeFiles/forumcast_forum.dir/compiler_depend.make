# Empty compiler generated dependencies file for forumcast_forum.
# This may be replaced when dependencies are built.
