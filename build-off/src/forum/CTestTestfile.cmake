# CMake generated Testfile for 
# Source directory: /root/repo/src/forum
# Build directory: /root/repo/build-off/src/forum
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
