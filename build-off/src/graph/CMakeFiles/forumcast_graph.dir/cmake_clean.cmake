file(REMOVE_RECURSE
  "CMakeFiles/forumcast_graph.dir/centrality.cpp.o"
  "CMakeFiles/forumcast_graph.dir/centrality.cpp.o.d"
  "CMakeFiles/forumcast_graph.dir/graph.cpp.o"
  "CMakeFiles/forumcast_graph.dir/graph.cpp.o.d"
  "CMakeFiles/forumcast_graph.dir/link_features.cpp.o"
  "CMakeFiles/forumcast_graph.dir/link_features.cpp.o.d"
  "libforumcast_graph.a"
  "libforumcast_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
