file(REMOVE_RECURSE
  "libforumcast_graph.a"
)
