# Empty dependencies file for forumcast_graph.
# This may be replaced when dependencies are built.
