
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/activations.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/activations.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/activations.cpp.o.d"
  "/root/repo/src/ml/adam.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/adam.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/adam.cpp.o.d"
  "/root/repo/src/ml/logistic_regression.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/logistic_regression.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/matrix_factorization.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/matrix_factorization.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/matrix_factorization.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/poisson_regression.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/poisson_regression.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/poisson_regression.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/sparfa.cpp" "src/ml/CMakeFiles/forumcast_ml.dir/sparfa.cpp.o" "gcc" "src/ml/CMakeFiles/forumcast_ml.dir/sparfa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
