file(REMOVE_RECURSE
  "CMakeFiles/forumcast_ml.dir/activations.cpp.o"
  "CMakeFiles/forumcast_ml.dir/activations.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/adam.cpp.o"
  "CMakeFiles/forumcast_ml.dir/adam.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/logistic_regression.cpp.o"
  "CMakeFiles/forumcast_ml.dir/logistic_regression.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/matrix.cpp.o"
  "CMakeFiles/forumcast_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/matrix_factorization.cpp.o"
  "CMakeFiles/forumcast_ml.dir/matrix_factorization.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/mlp.cpp.o"
  "CMakeFiles/forumcast_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/poisson_regression.cpp.o"
  "CMakeFiles/forumcast_ml.dir/poisson_regression.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/scaler.cpp.o"
  "CMakeFiles/forumcast_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/serialize.cpp.o"
  "CMakeFiles/forumcast_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/forumcast_ml.dir/sparfa.cpp.o"
  "CMakeFiles/forumcast_ml.dir/sparfa.cpp.o.d"
  "libforumcast_ml.a"
  "libforumcast_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
