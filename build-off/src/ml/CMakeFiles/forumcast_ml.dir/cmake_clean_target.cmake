file(REMOVE_RECURSE
  "libforumcast_ml.a"
)
