# Empty dependencies file for forumcast_ml.
# This may be replaced when dependencies are built.
