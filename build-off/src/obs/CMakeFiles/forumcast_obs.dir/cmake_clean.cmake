file(REMOVE_RECURSE
  "CMakeFiles/forumcast_obs.dir/build_info.cpp.o"
  "CMakeFiles/forumcast_obs.dir/build_info.cpp.o.d"
  "CMakeFiles/forumcast_obs.dir/metrics.cpp.o"
  "CMakeFiles/forumcast_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/forumcast_obs.dir/trace.cpp.o"
  "CMakeFiles/forumcast_obs.dir/trace.cpp.o.d"
  "libforumcast_obs.a"
  "libforumcast_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
