file(REMOVE_RECURSE
  "libforumcast_obs.a"
)
