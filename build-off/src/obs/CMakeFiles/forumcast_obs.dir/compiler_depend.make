# Empty compiler generated dependencies file for forumcast_obs.
# This may be replaced when dependencies are built.
