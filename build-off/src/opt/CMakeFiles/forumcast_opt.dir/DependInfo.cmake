
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/lp.cpp" "src/opt/CMakeFiles/forumcast_opt.dir/lp.cpp.o" "gcc" "src/opt/CMakeFiles/forumcast_opt.dir/lp.cpp.o.d"
  "/root/repo/src/opt/routing_lp.cpp" "src/opt/CMakeFiles/forumcast_opt.dir/routing_lp.cpp.o" "gcc" "src/opt/CMakeFiles/forumcast_opt.dir/routing_lp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
