file(REMOVE_RECURSE
  "CMakeFiles/forumcast_opt.dir/lp.cpp.o"
  "CMakeFiles/forumcast_opt.dir/lp.cpp.o.d"
  "CMakeFiles/forumcast_opt.dir/routing_lp.cpp.o"
  "CMakeFiles/forumcast_opt.dir/routing_lp.cpp.o.d"
  "libforumcast_opt.a"
  "libforumcast_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
