file(REMOVE_RECURSE
  "libforumcast_opt.a"
)
