# Empty dependencies file for forumcast_opt.
# This may be replaced when dependencies are built.
