
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/post_text.cpp" "src/text/CMakeFiles/forumcast_text.dir/post_text.cpp.o" "gcc" "src/text/CMakeFiles/forumcast_text.dir/post_text.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/text/CMakeFiles/forumcast_text.dir/tokenizer.cpp.o" "gcc" "src/text/CMakeFiles/forumcast_text.dir/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocabulary.cpp" "src/text/CMakeFiles/forumcast_text.dir/vocabulary.cpp.o" "gcc" "src/text/CMakeFiles/forumcast_text.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
