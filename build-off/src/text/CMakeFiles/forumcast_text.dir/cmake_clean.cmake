file(REMOVE_RECURSE
  "CMakeFiles/forumcast_text.dir/post_text.cpp.o"
  "CMakeFiles/forumcast_text.dir/post_text.cpp.o.d"
  "CMakeFiles/forumcast_text.dir/tokenizer.cpp.o"
  "CMakeFiles/forumcast_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/forumcast_text.dir/vocabulary.cpp.o"
  "CMakeFiles/forumcast_text.dir/vocabulary.cpp.o.d"
  "libforumcast_text.a"
  "libforumcast_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
