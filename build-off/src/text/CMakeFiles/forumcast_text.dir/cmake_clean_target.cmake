file(REMOVE_RECURSE
  "libforumcast_text.a"
)
