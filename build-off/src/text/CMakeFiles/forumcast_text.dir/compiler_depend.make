# Empty compiler generated dependencies file for forumcast_text.
# This may be replaced when dependencies are built.
