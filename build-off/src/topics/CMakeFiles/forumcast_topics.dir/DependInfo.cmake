
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topics/lda.cpp" "src/topics/CMakeFiles/forumcast_topics.dir/lda.cpp.o" "gcc" "src/topics/CMakeFiles/forumcast_topics.dir/lda.cpp.o.d"
  "/root/repo/src/topics/topic_math.cpp" "src/topics/CMakeFiles/forumcast_topics.dir/topic_math.cpp.o" "gcc" "src/topics/CMakeFiles/forumcast_topics.dir/topic_math.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/text/CMakeFiles/forumcast_text.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
