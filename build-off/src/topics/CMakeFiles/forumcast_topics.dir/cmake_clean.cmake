file(REMOVE_RECURSE
  "CMakeFiles/forumcast_topics.dir/lda.cpp.o"
  "CMakeFiles/forumcast_topics.dir/lda.cpp.o.d"
  "CMakeFiles/forumcast_topics.dir/topic_math.cpp.o"
  "CMakeFiles/forumcast_topics.dir/topic_math.cpp.o.d"
  "libforumcast_topics.a"
  "libforumcast_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
