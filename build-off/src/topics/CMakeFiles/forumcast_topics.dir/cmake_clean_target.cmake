file(REMOVE_RECURSE
  "libforumcast_topics.a"
)
