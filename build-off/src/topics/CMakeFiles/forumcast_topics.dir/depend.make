# Empty dependencies file for forumcast_topics.
# This may be replaced when dependencies are built.
