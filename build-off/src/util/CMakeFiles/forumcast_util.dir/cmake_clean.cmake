file(REMOVE_RECURSE
  "CMakeFiles/forumcast_util.dir/csv.cpp.o"
  "CMakeFiles/forumcast_util.dir/csv.cpp.o.d"
  "CMakeFiles/forumcast_util.dir/logging.cpp.o"
  "CMakeFiles/forumcast_util.dir/logging.cpp.o.d"
  "CMakeFiles/forumcast_util.dir/parallel.cpp.o"
  "CMakeFiles/forumcast_util.dir/parallel.cpp.o.d"
  "CMakeFiles/forumcast_util.dir/rng.cpp.o"
  "CMakeFiles/forumcast_util.dir/rng.cpp.o.d"
  "CMakeFiles/forumcast_util.dir/stats.cpp.o"
  "CMakeFiles/forumcast_util.dir/stats.cpp.o.d"
  "CMakeFiles/forumcast_util.dir/table.cpp.o"
  "CMakeFiles/forumcast_util.dir/table.cpp.o.d"
  "libforumcast_util.a"
  "libforumcast_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
