file(REMOVE_RECURSE
  "libforumcast_util.a"
)
