# Empty dependencies file for forumcast_util.
# This may be replaced when dependencies are built.
