
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_predictors_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/core_predictors_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/core_predictors_test.cpp.o.d"
  "/root/repo/tests/core_serialize_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/core_serialize_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/core_serialize_test.cpp.o.d"
  "/root/repo/tests/core_timing_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/core_timing_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/core_timing_test.cpp.o.d"
  "/root/repo/tests/eval_ranking_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/eval_ranking_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/eval_ranking_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/exp_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/exp_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/exp_test.cpp.o.d"
  "/root/repo/tests/features_edge_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/features_edge_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/features_edge_test.cpp.o.d"
  "/root/repo/tests/features_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/features_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/features_test.cpp.o.d"
  "/root/repo/tests/forum_io_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/forum_io_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/forum_io_test.cpp.o.d"
  "/root/repo/tests/forum_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/forum_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/forum_test.cpp.o.d"
  "/root/repo/tests/generator_property_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/generator_property_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/generator_property_test.cpp.o.d"
  "/root/repo/tests/generator_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/generator_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/generator_test.cpp.o.d"
  "/root/repo/tests/graph_property_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/graph_property_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/graph_property_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ml_matrix_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/ml_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/ml_matrix_test.cpp.o.d"
  "/root/repo/tests/ml_mlp_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/ml_mlp_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/ml_mlp_test.cpp.o.d"
  "/root/repo/tests/ml_models_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/ml_models_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/ml_models_test.cpp.o.d"
  "/root/repo/tests/ml_optim_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/ml_optim_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/ml_optim_test.cpp.o.d"
  "/root/repo/tests/ml_property_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/ml_property_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/ml_property_test.cpp.o.d"
  "/root/repo/tests/ml_serialize_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/ml_serialize_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/ml_serialize_test.cpp.o.d"
  "/root/repo/tests/obs_metrics_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/obs_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/obs_metrics_test.cpp.o.d"
  "/root/repo/tests/obs_trace_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/obs_trace_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/obs_trace_test.cpp.o.d"
  "/root/repo/tests/opt_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/opt_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/opt_test.cpp.o.d"
  "/root/repo/tests/recommender_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/recommender_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/recommender_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/text_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/text_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/text_test.cpp.o.d"
  "/root/repo/tests/topics_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/topics_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/topics_test.cpp.o.d"
  "/root/repo/tests/util_logging_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/util_logging_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/util_logging_test.cpp.o.d"
  "/root/repo/tests/util_parallel_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/util_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/util_parallel_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/forumcast_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/forumcast_tests.dir/util_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/exp/CMakeFiles/forumcast_exp.dir/DependInfo.cmake"
  "/root/repo/build-off/src/core/CMakeFiles/forumcast_core.dir/DependInfo.cmake"
  "/root/repo/build-off/src/forum/CMakeFiles/forumcast_forum.dir/DependInfo.cmake"
  "/root/repo/build-off/src/features/CMakeFiles/forumcast_features.dir/DependInfo.cmake"
  "/root/repo/build-off/src/eval/CMakeFiles/forumcast_eval.dir/DependInfo.cmake"
  "/root/repo/build-off/src/opt/CMakeFiles/forumcast_opt.dir/DependInfo.cmake"
  "/root/repo/build-off/src/topics/CMakeFiles/forumcast_topics.dir/DependInfo.cmake"
  "/root/repo/build-off/src/graph/CMakeFiles/forumcast_graph.dir/DependInfo.cmake"
  "/root/repo/build-off/src/ml/CMakeFiles/forumcast_ml.dir/DependInfo.cmake"
  "/root/repo/build-off/src/text/CMakeFiles/forumcast_text.dir/DependInfo.cmake"
  "/root/repo/build-off/src/util/CMakeFiles/forumcast_util.dir/DependInfo.cmake"
  "/root/repo/build-off/src/obs/CMakeFiles/forumcast_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
