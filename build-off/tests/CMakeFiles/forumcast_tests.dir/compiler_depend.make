# Empty compiler generated dependencies file for forumcast_tests.
# This may be replaced when dependencies are built.
