file(REMOVE_RECURSE
  "CMakeFiles/forumcast_cli.dir/forumcast_cli.cpp.o"
  "CMakeFiles/forumcast_cli.dir/forumcast_cli.cpp.o.d"
  "forumcast"
  "forumcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forumcast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
