# Empty compiler generated dependencies file for forumcast_cli.
# This may be replaced when dependencies are built.
