// Simulated A/B test of the recommendation system — the evaluation the paper
// proposes as future work ("the quality of the approach could be evaluated
// through A/B testing, comparing the net votes and response times observed in
// a group with the system in use to one with it not").
//
// With a synthetic forum we can actually run it: forum::OutcomeOracle knows
// the counterfactual outcome of *any* user answering *any* question, and
// core::RoutingSimulator alternates arrivals between
//   group A — the organic answerers recorded in the dataset, and
//   group B — an answerer drawn from the routing LP's distribution, redrawn
//             until one accepts, with per-user load caps.
#include <iostream>

#include "core/pipeline.hpp"
#include "core/routing_simulator.hpp"
#include "forum/generator.hpp"
#include "forum/oracle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace forumcast;

  forum::GeneratorConfig generator_config;
  generator_config.num_users = 800;
  generator_config.num_questions = 800;
  generator_config.seed = 4242;
  const auto forum_data = forum::generate_forum(generator_config);
  const auto dataset = forum_data.dataset.preprocessed();
  const forum::OutcomeOracle oracle(forum_data.dataset, forum_data.truth,
                                    generator_config);

  core::PipelineConfig pipeline_config;
  pipeline_config.extractor.lda.iterations = 40;
  core::ForecastPipeline pipeline(pipeline_config);
  pipeline.fit(dataset, dataset.questions_in_days(1, 25));
  std::cout << "pipeline trained on days 1-25\n";

  std::vector<forum::UserId> candidates;
  {
    std::vector<bool> seen(dataset.num_users(), false);
    for (const auto& pair :
         dataset.answered_pairs(dataset.questions_in_days(1, 25))) {
      if (!seen[pair.user]) {
        seen[pair.user] = true;
        candidates.push_back(pair.user);
      }
    }
  }

  // Realized (sampled) outcomes, matching the generator's noise model.
  util::Rng outcome_rng(99);
  core::SimulatorConfig sim_config;
  sim_config.recommender.epsilon = 0.3;
  sim_config.recommender.quality_time_tradeoff = 0.2;  // 1 vote ≈ 5 h
  sim_config.recommender.default_capacity = 3.0;
  core::RoutingSimulator simulator(
      pipeline,
      [&](forum::UserId u, forum::QuestionId q) {
        const auto raw_q = oracle.raw_question_index(
            dataset.thread(q).question.timestamp_hours);
        return core::SimulatedOutcome{
            static_cast<double>(oracle.sample_votes(u, raw_q, outcome_rng)),
            oracle.sample_delay(u, outcome_rng)};
      },
      sim_config);

  const auto result =
      simulator.run(dataset, dataset.questions_in_days(26, 30), candidates);

  util::Table table("simulated A/B test, days 26-30",
                    {"group", "questions", "answered", "mean votes",
                     "mean delay (h)"});
  table.add_row({"A (organic)", std::to_string(result.organic.questions),
                 std::to_string(result.organic.answered),
                 util::Table::num(result.organic.mean_votes, 2),
                 util::Table::num(result.organic.mean_delay_hours, 2)});
  table.add_row({"B (routed)", std::to_string(result.routed.questions),
                 std::to_string(result.routed.answered),
                 util::Table::num(result.routed.mean_votes, 2),
                 util::Table::num(result.routed.mean_delay_hours, 2)});
  table.print(std::cout);

  std::cout << "\nGroup B should show higher mean votes at comparable or "
               "better delay — the joint objective of eq. (2).\n";
  return 0;
}
