// Cold start: how prediction quality grows with forum history.
//
// A new deployment of the pipeline starts with days of data, not weeks. This
// example trains the pipeline on growing history windows (5 → 25 days),
// always evaluating on the final five days, and reports:
//   * will-answer AUC,
//   * P(answered within 24 h) calibration — the point-process extension
//     cumulative_intensity/probability_answer_within in action,
//   * vote and delay RMSE.
// It is the operational counterpart of paper Fig. 7 ("how much history do the
// features need?").
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "eval/sampling.hpp"
#include "forum/generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace forumcast;

  forum::GeneratorConfig generator_config;
  generator_config.num_users = 800;
  generator_config.num_questions = 800;
  generator_config.seed = 1701;
  const auto dataset =
      forum::generate_forum(generator_config).dataset.preprocessed();
  const auto holdout = dataset.questions_in_days(26, 30);
  const auto positives = dataset.answered_pairs(holdout);
  const auto negatives =
      eval::sample_negative_pairs(dataset, holdout, positives.size(), 4);
  std::cout << "evaluating on days 26-30: " << positives.size()
            << " answered pairs\n";

  util::Table table("prediction quality vs training history",
                    {"history (days)", "AUC(a)", "RMSE(v)", "RMSE(r) h",
                     "P(<=24h) answered", "P(<=24h) negatives"});

  for (int history_days : {5, 10, 15, 20, 25}) {
    const auto history = dataset.questions_in_days(1, history_days);
    if (history.empty()) continue;

    core::PipelineConfig config;
    config.extractor.lda.iterations = 30;
    config.answer.logistic.epochs = 60;
    config.vote.epochs = 40;
    config.timing.epochs = 12;
    config.survival_samples_per_thread = 8;
    core::ForecastPipeline pipeline(config);
    pipeline.fit(dataset, history);

    std::vector<double> scores, vote_predictions, vote_targets;
    std::vector<double> delay_predictions, delay_targets;
    std::vector<int> labels;
    double p24_positive = 0.0;
    for (const auto& pair : positives) {
      const auto prediction = pipeline.predict(pair.user, pair.question);
      scores.push_back(prediction.answer_probability);
      labels.push_back(1);
      vote_predictions.push_back(prediction.votes);
      vote_targets.push_back(static_cast<double>(pair.votes));
      delay_predictions.push_back(prediction.delay_hours);
      delay_targets.push_back(pair.delay_hours);
      p24_positive += pipeline.timing_predictor().probability_answer_within(
          pipeline.extractor().features(pair.user, pair.question), 24.0);
    }
    double p24_negative = 0.0;
    for (const auto& pair : negatives) {
      scores.push_back(
          pipeline.predict(pair.user, pair.question).answer_probability);
      labels.push_back(0);
      p24_negative += pipeline.timing_predictor().probability_answer_within(
          pipeline.extractor().features(pair.user, pair.question), 24.0);
    }

    table.add_row(
        {std::to_string(history_days),
         util::Table::num(eval::auc(scores, labels)),
         util::Table::num(eval::rmse(vote_predictions, vote_targets)),
         util::Table::num(eval::rmse(delay_predictions, delay_targets)),
         util::Table::num(p24_positive / static_cast<double>(positives.size())),
         util::Table::num(p24_negative / static_cast<double>(negatives.size()))});
  }
  table.print(std::cout);

  std::cout << "\nExpected shapes: AUC grows with history; the point-process "
               "P(answer within 24h) separates true answerers from sampled "
               "negatives.\n";
  return 0;
}
