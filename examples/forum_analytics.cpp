// Forum analytics for administrators — the paper's closing observation that
// "the learnt features can provide analytics to forum administrators too".
//
// Uses the feature pipeline descriptively: community health numbers, the SLN
// graph structure, the most central users (candidate moderators/experts), and
// per-topic supply vs demand (questions asked vs answering capacity), which
// is the signal a routing deployment would monitor.
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "features/extractor.hpp"
#include "forum/generator.hpp"
#include "forum/sln.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace forumcast;

  forum::GeneratorConfig generator_config;
  generator_config.num_users = 800;
  generator_config.num_questions = 700;
  generator_config.seed = 21;
  const auto dataset =
      forum::generate_forum(generator_config).dataset.preprocessed();

  std::vector<forum::QuestionId> all(dataset.num_questions());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<forum::QuestionId>(i);
  }
  features::ExtractorConfig config;
  config.lda.iterations = 40;
  const features::FeatureExtractor extractor(dataset, all, config);

  // ---- community health ----
  const auto stats = dataset.stats();
  const auto pairs = dataset.answered_pairs();
  std::vector<double> delays;
  for (const auto& pair : pairs) delays.push_back(pair.delay_hours);
  util::Table health("community health",
                     {"metric", "value"});
  health.add_row({"answered questions", std::to_string(stats.questions)});
  health.add_row({"answers", std::to_string(stats.answers)});
  health.add_row({"askers", std::to_string(stats.askers)});
  health.add_row({"answerers", std::to_string(stats.answerers)});
  health.add_row({"median time-to-answer (h)",
                  util::Table::num(util::median(delays), 2)});
  health.add_row({"p90 time-to-answer (h)",
                  util::Table::num(util::percentile(delays, 90.0), 2)});
  health.print(std::cout);

  // ---- most central users (expert/moderator candidates) ----
  const auto betweenness = extractor.qa_betweenness();
  std::vector<forum::UserId> by_centrality(dataset.num_users());
  std::iota(by_centrality.begin(), by_centrality.end(), forum::UserId{0});
  std::sort(by_centrality.begin(), by_centrality.end(),
            [&](forum::UserId a, forum::UserId b) {
              return betweenness[a] > betweenness[b];
            });
  util::Table experts("most central users (QA betweenness)",
                      {"user", "betweenness", "answers", "net votes",
                       "median response (h)"});
  for (std::size_t rank = 0; rank < 8; ++rank) {
    const forum::UserId user = by_centrality[rank];
    const auto& user_stats = extractor.user_stats(user);
    experts.add_row({std::to_string(user),
                     util::Table::num(betweenness[user], 1),
                     std::to_string(user_stats.answers_provided),
                     util::Table::num(user_stats.net_answer_votes, 0),
                     util::Table::num(extractor.median_response_time(user), 2)});
  }
  experts.print(std::cout);

  // ---- topic supply vs demand ----
  const std::size_t num_topics = extractor.num_topics();
  std::vector<double> demand(num_topics, 0.0);   // questions asked per topic
  std::vector<double> supply(num_topics, 0.0);   // answering mass per topic
  for (forum::QuestionId q = 0; q < dataset.num_questions(); ++q) {
    const auto topics = extractor.question_topics(q);
    for (std::size_t k = 0; k < num_topics; ++k) demand[k] += topics[k];
  }
  for (forum::UserId u = 0; u < dataset.num_users(); ++u) {
    const auto& user_stats = extractor.user_stats(u);
    if (user_stats.answers_provided == 0) continue;
    for (std::size_t k = 0; k < num_topics; ++k) {
      supply[k] += user_stats.topic_distribution[k] *
                   static_cast<double>(user_stats.answers_provided);
    }
  }
  util::Table topics_table("topic supply vs demand",
                           {"topic", "demand (questions)", "supply (answers)",
                            "supply/demand"});
  for (std::size_t k = 0; k < num_topics; ++k) {
    topics_table.add_row(
        {std::to_string(k), util::Table::num(demand[k], 1),
         util::Table::num(supply[k], 1),
         util::Table::num(demand[k] > 0 ? supply[k] / demand[k] : 0.0, 2)});
  }
  topics_table.print(std::cout);
  std::cout << "\ntopics with supply/demand well below the median are where "
               "routing (or recruiting answerers) pays off first.\n";
  return 0;
}
