// Question routing (paper Sec. V): recommend newly posted questions to the
// answerers predicted to give high-quality, fast answers — subject to
// per-user load caps — by solving the LP of eq. (2) per question.
//
// The example walks one simulated "day" of new questions through the
// recommender, maintaining the sliding load window, and prints who each
// question was routed to and why (the predictions behind the weights).
#include <iostream>
#include <vector>

#include "core/pipeline.hpp"
#include "core/recommender.hpp"
#include "forum/generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace forumcast;

  forum::GeneratorConfig generator_config;
  generator_config.num_users = 600;
  generator_config.num_questions = 500;
  generator_config.seed = 11;
  const auto dataset =
      forum::generate_forum(generator_config).dataset.preprocessed();

  core::PipelineConfig pipeline_config;
  pipeline_config.extractor.lda.iterations = 40;
  core::ForecastPipeline pipeline(pipeline_config);
  pipeline.fit(dataset, dataset.questions_in_days(1, 28));
  std::cout << "pipeline trained on days 1-28\n";

  // Candidates: users who answered at least once during training.
  std::vector<forum::UserId> candidates;
  {
    std::vector<bool> seen(dataset.num_users(), false);
    for (const auto& pair :
         dataset.answered_pairs(dataset.questions_in_days(1, 28))) {
      if (!seen[pair.user]) {
        seen[pair.user] = true;
        candidates.push_back(pair.user);
      }
    }
  }

  core::RecommenderConfig recommender_config;
  recommender_config.epsilon = 0.3;  // eligibility threshold on P(answer)
  recommender_config.quality_time_tradeoff = 0.2;  // 1 vote ≈ 5 h of waiting
  recommender_config.default_capacity = 2.0;       // ≤ 2 routed answers per day
  recommender_config.load_window_hours = 24.0;
  const core::Recommender recommender(pipeline, recommender_config);

  // Route the day-29 arrivals, updating each user's load as we go.
  std::vector<double> load(candidates.size(), 0.0);
  util::Table table("day-29 routing decisions",
                    {"question", "routed to", "p", "P(answer)", "votes",
                     "delay (h)", "alternatives"});
  for (forum::QuestionId question : dataset.questions_in_days(29, 29)) {
    const auto result = recommender.recommend(question, candidates, load);
    if (!result.feasible) {
      table.add_row({std::to_string(question), "(no eligible answerer)", "-",
                     "-", "-", "-", "-"});
      continue;
    }
    const auto& top = result.ranking.front();
    table.add_row({std::to_string(question), std::to_string(top.user),
                   util::Table::num(top.probability, 2),
                   util::Table::num(top.prediction.answer_probability, 2),
                   util::Table::num(top.prediction.votes, 2),
                   util::Table::num(top.prediction.delay_hours, 2),
                   std::to_string(result.ranking.size() - 1)});
    // The platform draws from the distribution until someone answers; charge
    // the first draw against the load window.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i] == top.user) {
        load[i] += 1.0;
        break;
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nNote how repeated routing to the same strong answerer stops "
               "once their daily capacity (2) is consumed — the load "
               "constraint of eq. (2) at work.\n";
  return 0;
}
