// Quickstart: the whole library in ~60 lines.
//
//   1. Generate a synthetic Stack Overflow-like forum (or load your own
//      threads into forum::Dataset).
//   2. Apply the paper's preprocessing.
//   3. Fit the ForecastPipeline (features + the three predictors) on a
//      history window.
//   4. Ask the three questions of the paper for any user-question pair:
//      will u answer q? with how many votes? how fast?
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/pipeline.hpp"
#include "forum/generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace forumcast;

  // 1. A small forum: 500 users, 30 days, ~400 question threads.
  forum::GeneratorConfig generator_config;
  generator_config.num_users = 500;
  generator_config.num_questions = 400;
  generator_config.seed = 7;
  const auto forum_data = forum::generate_forum(generator_config);

  // 2. Paper Sec. III-A preprocessing: drop unanswered questions, dedupe
  //    multi-answers, drop simultaneous answers.
  const auto dataset = forum_data.dataset.preprocessed();
  const auto stats = dataset.stats();
  std::cout << "forum: " << stats.questions << " answered questions, "
            << stats.answers << " answers, " << stats.distinct_users
            << " users\n";

  // 3. Train on the first 25 days.
  core::PipelineConfig config;
  config.extractor.num_topics = 8;     // K, as in the paper
  config.extractor.lda.iterations = 40;
  core::ForecastPipeline pipeline(config);
  pipeline.fit(dataset, dataset.questions_in_days(1, 25));
  std::cout << "pipeline trained; feature dimension = "
            << pipeline.extractor().dimension() << "\n";

  // 4. Score candidate answerers for a fresh question from the last 5 days.
  const auto fresh = dataset.questions_in_days(26, 30);
  if (fresh.empty()) {
    std::cout << "no late questions generated; rerun with more questions\n";
    return 0;
  }
  const forum::QuestionId question = fresh.front();
  std::cout << "\npredictions for question " << question << " (asked by user "
            << dataset.thread(question).question.creator << "):\n";

  util::Table table("candidate answerers",
                    {"user", "P(answer)", "predicted votes", "predicted delay (h)"});
  for (forum::UserId user = 0; user < 10; ++user) {
    const core::Prediction prediction = pipeline.predict(user, question);
    table.add_row({std::to_string(user),
                   util::Table::num(prediction.answer_probability),
                   util::Table::num(prediction.votes, 2),
                   util::Table::num(prediction.delay_hours, 2)});
  }
  table.print(std::cout);
  return 0;
}
