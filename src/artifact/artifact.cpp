#include "artifact/artifact.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "util/check.hpp"

namespace forumcast::artifact {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

void append_raw(std::string& buffer, const void* data, std::size_t size) {
  buffer.append(static_cast<const char*>(data), size);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

const char* section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kExtractor: return "extractor";
    case SectionKind::kAnswerPredictor: return "answer_predictor";
    case SectionKind::kVotePredictor: return "vote_predictor";
    case SectionKind::kTimingPredictor: return "timing_predictor";
    case SectionKind::kModel: return "model";
    case SectionKind::kFeatureBaseline: return "feature_baseline";
    case SectionKind::kCentralityConfig: return "centrality_config";
    case SectionKind::kQuantizedMlp: return "quantized_mlp";
    case SectionKind::kEnd: return "end";
  }
  return "unknown";
}

void Encoder::u8(std::uint8_t value) { append_raw(buffer_, &value, 1); }

void Encoder::u32(std::uint32_t value) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<unsigned char>(value >> (8 * i));
  append_raw(buffer_, bytes, sizeof(bytes));
}

void Encoder::u64(std::uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(value >> (8 * i));
  append_raw(buffer_, bytes, sizeof(bytes));
}

void Encoder::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void Encoder::f64(double value, const char* field) {
  FORUMCAST_CHECK_MSG(std::isfinite(value),
                      "model bundle: refusing to encode non-finite value in '"
                          << field << "'");
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void Encoder::str(std::string_view value) {
  u64(value.size());
  append_raw(buffer_, value.data(), value.size());
}

void Encoder::f64s(std::span<const double> values, const char* field) {
  u64(values.size());
  for (double value : values) f64(value, field);
}

void Encoder::u64s(std::span<const std::uint64_t> values) {
  u64(values.size());
  for (std::uint64_t value : values) u64(value);
}

void Encoder::counts(std::span<const std::size_t> values) {
  u64(values.size());
  for (std::size_t value : values) u64(static_cast<std::uint64_t>(value));
}

void Encoder::i8s(std::span<const std::int8_t> values) {
  u64(values.size());
  append_raw(buffer_, values.data(), values.size());
}

Decoder::Decoder(std::string payload, std::string context)
    : payload_(std::move(payload)), context_(std::move(context)) {}

const char* Decoder::take(std::size_t size, const char* field) {
  FORUMCAST_CHECK_MSG(size <= payload_.size() - cursor_,
                      "model bundle: section '"
                          << context_ << "': truncated while reading '" << field
                          << "' (need " << size << " bytes, have "
                          << payload_.size() - cursor_ << ")");
  const char* data = payload_.data() + cursor_;
  cursor_ += size;
  return data;
}

std::uint64_t Decoder::length(std::size_t elem_size, const char* field) {
  std::uint64_t count = u64(field);
  FORUMCAST_CHECK_MSG(
      count <= remaining() / (elem_size == 0 ? 1 : elem_size),
      "model bundle: section '" << context_ << "': implausible element count "
                                << count << " for '" << field
                                << "' (only " << remaining()
                                << " payload bytes remain)");
  return count;
}

std::uint8_t Decoder::u8(const char* field) {
  return static_cast<std::uint8_t>(*take(1, field));
}

std::uint32_t Decoder::u32(const char* field) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(take(4, field));
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= std::uint32_t{bytes[i]} << (8 * i);
  return value;
}

std::uint64_t Decoder::u64(const char* field) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(take(8, field));
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= std::uint64_t{bytes[i]} << (8 * i);
  return value;
}

std::int64_t Decoder::i64(const char* field) {
  return static_cast<std::int64_t>(u64(field));
}

bool Decoder::boolean(const char* field) {
  std::uint8_t value = u8(field);
  FORUMCAST_CHECK_MSG(value <= 1, "model bundle: section '"
                                      << context_ << "': field '" << field
                                      << "' is not a boolean (byte "
                                      << static_cast<int>(value) << ")");
  return value != 0;
}

double Decoder::f64(const char* field) {
  std::uint64_t bits = u64(field);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  FORUMCAST_CHECK_MSG(std::isfinite(value),
                      "model bundle: section '"
                          << context_ << "': field '" << field
                          << "' holds a non-finite double");
  return value;
}

std::string Decoder::str(const char* field) {
  std::uint64_t count = length(1, field);
  const char* data = take(static_cast<std::size_t>(count), field);
  return std::string(data, static_cast<std::size_t>(count));
}

std::vector<double> Decoder::f64s(const char* field) {
  std::uint64_t count = length(8, field);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(f64(field));
  return values;
}

std::vector<std::uint64_t> Decoder::u64s(const char* field) {
  std::uint64_t count = length(8, field);
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(u64(field));
  return values;
}

std::vector<std::int8_t> Decoder::i8s(const char* field) {
  std::uint64_t count = length(1, field);
  const char* raw = take(static_cast<std::size_t>(count), field);
  std::vector<std::int8_t> values(static_cast<std::size_t>(count));
  std::memcpy(values.data(), raw, static_cast<std::size_t>(count));
  return values;
}

std::vector<std::size_t> Decoder::counts(const char* field) {
  std::uint64_t count = length(8, field);
  std::vector<std::size_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t value = u64(field);
    FORUMCAST_CHECK_MSG(value <= std::numeric_limits<std::size_t>::max(),
                        "model bundle: section '"
                            << context_ << "': field '" << field
                            << "' overflows size_t");
    values.push_back(static_cast<std::size_t>(value));
  }
  return values;
}

void Decoder::finish() {
  FORUMCAST_CHECK_MSG(cursor_ == payload_.size(),
                      "model bundle: section '"
                          << context_ << "': " << payload_.size() - cursor_
                          << " trailing bytes after the last field (format "
                             "skew between writer and reader)");
}

namespace {

constexpr char kMagic[4] = {'F', 'C', 'M', 'B'};

void write_u32(std::ostream& out, std::uint32_t value) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<unsigned char>(value >> (8 * i));
  out.write(reinterpret_cast<const char*>(bytes), sizeof(bytes));
}

std::uint32_t read_u32(std::istream& in, const char* what) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), sizeof(bytes));
  FORUMCAST_CHECK_MSG(in.gcount() == sizeof(bytes),
                      "model bundle: truncated while reading " << what);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= std::uint32_t{bytes[i]} << (8 * i);
  return value;
}

}  // namespace

BundleWriter::BundleWriter(std::ostream& out) : out_(out) {
  out_.write(kMagic, sizeof(kMagic));
  write_u32(out_, kFormatVersion);
  bytes_written_ = sizeof(kMagic) + 4;
}

BundleWriter::~BundleWriter() {
  // No auto-finish: an exception unwinding past a writer must not leave
  // behind a bundle with a valid end marker. Destructors cannot throw, so a
  // forgotten finish() on the success path is an assert, not a CheckError —
  // readers will reject the markerless bundle anyway.
  assert(finished_ || std::uncaught_exceptions());
}

void BundleWriter::section(SectionKind kind, const Encoder& payload) {
  FORUMCAST_CHECK_MSG(!finished_, "BundleWriter: section() after finish()");
  std::string framed;
  framed.reserve(payload.size() + 4);
  {
    Encoder head;
    head.u32(static_cast<std::uint32_t>(kind));
    framed = head.bytes();
  }
  framed += payload.bytes();
  FORUMCAST_CHECK_MSG(framed.size() <= std::numeric_limits<std::uint32_t>::max(),
                      "model bundle: section '" << section_kind_name(kind)
                                                << "' exceeds 4 GiB");
  write_u32(out_, static_cast<std::uint32_t>(framed.size()));
  write_u32(out_, crc32(framed));
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  FORUMCAST_CHECK_MSG(out_.good(), "model bundle: write failed in section '"
                                       << section_kind_name(kind) << "'");
  bytes_written_ += 8 + framed.size();
  ++sections_written_;
}

void BundleWriter::finish() {
  FORUMCAST_CHECK_MSG(!finished_, "BundleWriter: finish() called twice");
  Encoder empty;
  section(SectionKind::kEnd, empty);
  --sections_written_;  // the end marker is framing, not a payload section
  out_.flush();
  FORUMCAST_CHECK_MSG(out_.good(), "model bundle: flush failed");
  finished_ = true;
}

BundleReader::BundleReader(std::istream& in) : in_(in) {
  char magic[4];
  in_.read(magic, sizeof(magic));
  FORUMCAST_CHECK_MSG(in_.gcount() == sizeof(magic) &&
                          std::memcmp(magic, kMagic, sizeof(magic)) == 0,
                      "model bundle: bad magic (not a forumcast model bundle)");
  std::uint32_t version = read_u32(in_, "format version");
  FORUMCAST_CHECK_MSG(version == kFormatVersion,
                      "model bundle: unsupported format version "
                          << version << " (this build reads version "
                          << kFormatVersion << ")");
}

SectionKind BundleReader::next_section(std::string& payload,
                                       SectionKind expected) {
  if (pushback_) {
    const SectionKind kind = pushback_->first;
    payload = std::move(pushback_->second);
    pushback_.reset();
    return kind;
  }
  const char* expected_name = section_kind_name(expected);
  std::uint32_t length = read_u32(in_, "section length");
  std::uint32_t stored_crc = read_u32(in_, "section checksum");
  FORUMCAST_CHECK_MSG(length >= 4, "model bundle: section frame too short for "
                                   "a kind tag (expected section '"
                                       << expected_name << "')");
  std::string framed(length, '\0');
  in_.read(framed.data(), static_cast<std::streamsize>(length));
  FORUMCAST_CHECK_MSG(
      static_cast<std::uint32_t>(in_.gcount()) == length,
      "model bundle: truncated section payload (expected section '"
          << expected_name << "': need " << length << " bytes, got "
          << in_.gcount() << ")");
  FORUMCAST_CHECK_MSG(crc32(framed) == stored_crc,
                      "model bundle: CRC mismatch in section (expected "
                      "section '"
                          << expected_name << "') — bundle is corrupted");
  Decoder head(framed.substr(0, 4), "section header");
  SectionKind kind = static_cast<SectionKind>(head.u32("section kind"));
  payload = framed.substr(4);
  return kind;
}

Decoder BundleReader::expect(SectionKind kind) {
  FORUMCAST_CHECK_MSG(!done_, "model bundle: read past the end marker");
  std::string payload;
  SectionKind actual = next_section(payload, kind);
  FORUMCAST_CHECK_MSG(actual == kind,
                      "model bundle: expected section '"
                          << section_kind_name(kind) << "' but found '"
                          << section_kind_name(actual) << "'");
  return Decoder(std::move(payload), section_kind_name(kind));
}

std::optional<Decoder> BundleReader::try_expect(SectionKind kind) {
  FORUMCAST_CHECK_MSG(!done_, "model bundle: read past the end marker");
  std::string payload;
  const SectionKind actual = next_section(payload, kind);
  if (actual != kind) {
    pushback_.emplace(actual, std::move(payload));
    return std::nullopt;
  }
  return Decoder(std::move(payload), section_kind_name(kind));
}

void BundleReader::finish() {
  FORUMCAST_CHECK_MSG(!done_, "model bundle: finish() called twice");
  std::string payload;
  SectionKind kind = next_section(payload, SectionKind::kEnd);
  FORUMCAST_CHECK_MSG(kind == SectionKind::kEnd,
                      "model bundle: expected end marker but found section '"
                          << section_kind_name(kind) << "'");
  FORUMCAST_CHECK_MSG(payload.empty(),
                      "model bundle: end marker carries a payload");
  done_ = true;
}

}  // namespace forumcast::artifact
