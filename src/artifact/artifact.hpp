// Versioned binary model-artifact layer: the one serialization protocol
// every subsystem that owns fitted doubles speaks.
//
// A bundle is a stream of CRC32-framed sections behind a magic +
// format-version header:
//
//   "FCMB" [u32 format_version]
//   section*  where section = [u32 payload_len][u32 crc32(payload)][payload]
//   end-marker section (kind kEnd, empty body)
//
// — the same [len][crc32][payload] record framing the streaming WAL uses
// (stream::wal), so torn writes and bit rot surface as named errors, never
// as silently default-initialized models. Each section payload starts with a
// u32 SectionKind tag followed by a kind-specific body built from the
// Encoder primitives below. Doubles travel as raw IEEE-754 bits
// (little-endian), so -0.0, denormals, and max-precision values round-trip
// exactly; Decoder::f64 rejects NaN/Inf with the offending field named.
//
// Contract shared by every encode/decode pair in the codebase: a loaded
// model must predict bit-identically to the one that saved it. Decoders
// therefore restore state verbatim instead of re-deriving it, and every
// read is bounds-checked — a truncated or corrupted bundle always throws
// util::CheckError naming the section and field, never returns partial
// state.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace forumcast::artifact {

/// IEEE CRC-32 (the zlib polynomial), table-driven. The streaming WAL's
/// stream::crc32 delegates here — one checksum for every durable byte.
std::uint32_t crc32(std::string_view data);

inline constexpr std::uint32_t kFormatVersion = 1;

/// Per-section kind tags. Values are part of the on-disk format: append
/// new kinds, never renumber.
enum class SectionKind : std::uint32_t {
  kMeta = 1,               ///< bundle-level metadata + dataset fingerprint
  kExtractor = 2,          ///< features::FeatureExtractor
  kAnswerPredictor = 3,    ///< core::AnswerPredictor
  kVotePredictor = 4,      ///< core::VotePredictor
  kTimingPredictor = 5,    ///< core::TimingPredictor
  kModel = 6,              ///< a standalone ml:: model blob
  kFeatureBaseline = 7,    ///< features::FeatureBaseline (drift reference)
  kCentralityConfig = 8,   ///< graph::CentralityConfig (exact↔sampled knob)
  kQuantizedMlp = 9,       ///< ml::QuantizedMlp (int8 vote-MLP inference)
  kEnd = 0xffffffffu,      ///< end-of-bundle marker (empty body)
};

const char* section_kind_name(SectionKind kind);

/// Accumulates one section payload from primitive writes. All integers are
/// little-endian fixed-width; doubles are raw bits; strings and vectors are
/// u64-count-prefixed.
class Encoder {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void boolean(bool value) { u8(value ? 1 : 0); }
  /// Raw IEEE bits: round-trip exact for every value including -0.0 and
  /// denormals. Save-side guard: non-finite values throw (a model holding
  /// NaN/Inf is broken; refusing at save names the bug early).
  void f64(double value, const char* field);
  void str(std::string_view value);
  void f64s(std::span<const double> values, const char* field);
  void u64s(std::span<const std::uint64_t> values);
  void i8s(std::span<const std::int8_t> values);
  void counts(std::span<const std::size_t> values);

  const std::string& bytes() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Reads one section payload back. Every method takes the field name it is
/// reading so truncation and garbage surface as
///   "model bundle: section 'extractor': truncated while reading 'alpha'"
/// instead of a default-initialized model. finish() asserts the payload was
/// fully consumed (trailing bytes mean a format skew).
class Decoder {
 public:
  Decoder(std::string payload, std::string context);

  std::uint8_t u8(const char* field);
  std::uint32_t u32(const char* field);
  std::uint64_t u64(const char* field);
  std::int64_t i64(const char* field);
  bool boolean(const char* field);
  /// Rejects NaN/Inf with the field named; bit-exact otherwise.
  double f64(const char* field);
  std::string str(const char* field);
  std::vector<double> f64s(const char* field);
  std::vector<std::uint64_t> u64s(const char* field);
  std::vector<std::int8_t> i8s(const char* field);
  std::vector<std::size_t> counts(const char* field);

  std::size_t remaining() const { return payload_.size() - cursor_; }
  void finish();

 private:
  /// Reads `size` raw bytes or throws naming `field`.
  const char* take(std::size_t size, const char* field);
  /// Reads a u64 element count and validates count * elem_size fits in the
  /// remaining payload before any allocation happens.
  std::uint64_t length(std::size_t elem_size, const char* field);

  std::string payload_;
  std::string context_;
  std::size_t cursor_ = 0;
};

/// Writes a bundle: header up front, one CRC-framed section per call,
/// end marker + flush on finish(). The destructor checks finish() was
/// called so a half-written bundle cannot pass silently.
class BundleWriter {
 public:
  explicit BundleWriter(std::ostream& out);
  ~BundleWriter();
  BundleWriter(const BundleWriter&) = delete;
  BundleWriter& operator=(const BundleWriter&) = delete;

  void section(SectionKind kind, const Encoder& payload);
  void finish();

  std::size_t bytes_written() const { return bytes_written_; }
  std::size_t sections_written() const { return sections_written_; }

 private:
  std::ostream& out_;
  std::size_t bytes_written_ = 0;
  std::size_t sections_written_ = 0;
  bool finished_ = false;
};

/// Reads a bundle: validates magic + version up front; expect() pulls the
/// next section, verifies its CRC and kind, and hands back a Decoder over
/// the payload. finish() consumes the end marker.
class BundleReader {
 public:
  explicit BundleReader(std::istream& in);

  Decoder expect(SectionKind kind);

  /// Like expect(), but when the next section has a *different* kind it is
  /// pushed back (one section deep) and std::nullopt is returned, leaving
  /// that section for the following expect()/finish() call. This is how
  /// loaders treat a newly appended SectionKind as optional: bundles written
  /// before the kind existed keep loading, with the caller substituting a
  /// default. CRC/truncation errors still throw.
  std::optional<Decoder> try_expect(SectionKind kind);

  void finish();

 private:
  /// Reads the next framed record; returns its kind and fills `payload`.
  /// Consumes the pushback slot first when try_expect() declined a section.
  SectionKind next_section(std::string& payload, SectionKind expected);

  std::istream& in_;
  bool done_ = false;
  std::optional<std::pair<SectionKind, std::string>> pushback_;
};

}  // namespace forumcast::artifact
