#include "core/answer_predictor.hpp"

#include <istream>
#include <ostream>

#include "ml/serialize.hpp"
#include "ml/workspace.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace forumcast::core {

AnswerPredictor::AnswerPredictor(AnswerPredictorConfig config)
    : config_(config), model_(config.logistic) {}

void AnswerPredictor::fit(std::span<const std::vector<double>> rows,
                          std::span<const int> labels) {
  FORUMCAST_CHECK(!rows.empty());
  FORUMCAST_SPAN_NAMED(fit_span, "answer.fit");
  fit_span.arg("rows", static_cast<double>(rows.size()));
  scaler_.fit(rows);
  std::vector<std::vector<double>> scaled(rows.begin(), rows.end());
  scaler_.transform_in_place(scaled);
  model_ = ml::LogisticRegression(config_.logistic);
  model_.fit(scaled, labels);
}

double AnswerPredictor::predict_probability(std::span<const double> features) const {
  FORUMCAST_CHECK(fitted());
  return model_.predict_probability(scaler_.transform(features));
}

void AnswerPredictor::predict_probability_batch(const ml::Matrix& rows,
                                                std::span<double> out) const {
  predict_probability_batch(rows.view(), out);
}

void AnswerPredictor::predict_probability_batch(ml::Tensor<const double> rows,
                                                std::span<double> out) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(out.size() == rows.rows());
  ml::Workspace::Frame frame;
  std::span<double> scaled{frame.workspace().alloc<double>(rows.cols()),
                           rows.cols()};
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    scaler_.transform_into(rows.row(r), scaled);
    out[r] = model_.predict_probability(scaled);
  }
}

void AnswerPredictor::save(std::ostream& out) const {
  FORUMCAST_CHECK_MSG(fitted(), "cannot save an unfitted AnswerPredictor");
  out << "forumcast-answer 1\n";
  ml::save_scaler(scaler_, out);
  ml::save_logistic(model_, out);
}

AnswerPredictor AnswerPredictor::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  FORUMCAST_CHECK_MSG(in.good() && magic == "forumcast-answer" && version == 1,
                      "bad AnswerPredictor header");
  AnswerPredictor predictor;
  predictor.scaler_ = ml::load_scaler(in);
  predictor.model_ = ml::load_logistic(in);
  return predictor;
}

void AnswerPredictor::encode(artifact::Encoder& enc) const {
  FORUMCAST_CHECK_MSG(fitted(), "cannot encode an unfitted AnswerPredictor");
  ml::encode_scaler(scaler_, enc);
  ml::encode_logistic(model_, enc);
}

AnswerPredictor AnswerPredictor::decode(artifact::Decoder& dec) {
  AnswerPredictor predictor;
  predictor.scaler_ = ml::decode_scaler(dec);
  predictor.model_ = ml::decode_logistic(dec);
  return predictor;
}

}  // namespace forumcast::core
