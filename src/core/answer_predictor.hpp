// Predictor for a_{u,q} — will user u answer question q? (Sec. II-A.1)
//
// A logistic regression over standardized features: the paper keeps this
// model deliberately linear because the answering matrix is ~0.03 % dense and
// nonlinear models overfit the negatives.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "artifact/artifact.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/matrix.hpp"
#include "ml/scaler.hpp"

namespace forumcast::core {

struct AnswerPredictorConfig {
  ml::LogisticRegressionConfig logistic = {};
};

class AnswerPredictor {
 public:
  explicit AnswerPredictor(AnswerPredictorConfig config = {});

  /// Trains on feature rows with binary labels (1 = answered).
  void fit(std::span<const std::vector<double>> rows, std::span<const int> labels);

  /// P(a_{u,q} = 1 | x). Requires fit().
  double predict_probability(std::span<const double> features) const;

  /// Batched form over raw (unscaled) feature rows; writes one probability
  /// per row. Results match predict_probability() bit for bit.
  void predict_probability_batch(const ml::Matrix& rows,
                                 std::span<double> out) const;
  void predict_probability_batch(ml::Tensor<const double> rows,
                                 std::span<double> out) const;

  bool fitted() const { return model_.fitted(); }

  /// Persistence: scaler + logistic parameters (not the training config).
  void save(std::ostream& out) const;
  static AnswerPredictor load(std::istream& in);

  /// Model-bundle codec; a decoded predictor is bit-identical in prediction.
  void encode(artifact::Encoder& enc) const;
  static AnswerPredictor decode(artifact::Decoder& dec);

 private:
  AnswerPredictorConfig config_;
  ml::StandardScaler scaler_;
  ml::LogisticRegression model_;
};

}  // namespace forumcast::core
