#include "core/pipeline.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "artifact/artifact.hpp"
#include "ml/serialize.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace forumcast::core {

std::vector<TimingThread> build_timing_threads(
    const forum::Dataset& dataset, const features::FeatureExtractor& extractor,
    std::span<const forum::AnsweredPair> pairs, double last_post_time,
    std::size_t survival_samples_per_thread, std::uint64_t seed) {
  return build_timing_threads(
      dataset,
      FeatureFn([&extractor](forum::UserId u, forum::QuestionId q) {
        return extractor.features(u, q);
      }),
      pairs, last_post_time, survival_samples_per_thread, seed);
}

std::vector<TimingThread> build_timing_threads(
    const forum::Dataset& dataset, const FeatureFn& features,
    std::span<const forum::AnsweredPair> pairs, double last_post_time,
    std::size_t survival_samples_per_thread, std::uint64_t seed) {
  FORUMCAST_CHECK(!pairs.empty());

  // Group pairs by question.
  std::unordered_map<forum::QuestionId, std::vector<const forum::AnsweredPair*>>
      by_question;
  for (const auto& pair : pairs) by_question[pair.question].push_back(&pair);

  util::Rng rng(seed);
  std::vector<TimingThread> threads;
  threads.reserve(by_question.size());

  // Deterministic question order.
  std::vector<forum::QuestionId> questions;
  questions.reserve(by_question.size());
  for (const auto& [q, _] : by_question) questions.push_back(q);
  std::sort(questions.begin(), questions.end());

  const std::size_t num_users = dataset.num_users();
  for (forum::QuestionId q : questions) {
    const forum::Thread& thread_data = dataset.thread(q);
    TimingThread thread;
    thread.open_duration =
        std::max(1e-3, last_post_time - thread_data.question.timestamp_hours);

    std::unordered_set<forum::UserId> answering;
    for (const auto* pair : by_question[q]) {
      thread.answers.push_back(
          {features(pair->user, q), pair->delay_hours});
      // Answerers appear in the survival term exactly (weight 1).
      thread.survival.push_back({features(pair->user, q), 1.0});
      answering.insert(pair->user);
    }
    answering.insert(thread_data.question.creator);

    const std::size_t non_answerers = num_users - answering.size();
    const std::size_t samples =
        std::min(survival_samples_per_thread, non_answerers);
    if (samples > 0) {
      const double weight = static_cast<double>(non_answerers) /
                            static_cast<double>(samples);
      std::unordered_set<forum::UserId> drawn;
      while (drawn.size() < samples) {
        const auto u = static_cast<forum::UserId>(rng.uniform_index(num_users));
        if (answering.contains(u) || drawn.contains(u)) continue;
        drawn.insert(u);
        thread.survival.push_back({features(u, q), weight});
      }
    }
    threads.push_back(std::move(thread));
  }
  return threads;
}

ForecastPipeline::ForecastPipeline(PipelineConfig config)
    : config_(std::move(config)),
      answer_(config_.answer),
      vote_(config_.vote),
      timing_(config_.timing) {
  const std::size_t fit_threads = config_.fit_threads == 0
                                      ? util::default_thread_count()
                                      : config_.fit_threads;
  if (fit_threads != 1) {
    config_.extractor.lda.threads = fit_threads;
    config_.answer.logistic.threads = fit_threads;
    config_.vote.threads = fit_threads;
    config_.timing.threads = fit_threads;
  }
}

void ForecastPipeline::fit(const forum::Dataset& dataset,
                           std::span<const forum::QuestionId> history_questions) {
  FORUMCAST_CHECK(!history_questions.empty());
  FORUMCAST_SPAN_NAMED(fit_span, "pipeline.fit");
  fit_span.arg("history_questions",
               static_cast<double>(history_questions.size()));
  dataset_ = &dataset;
  // Per-stage wall-clock histograms: the fit-threads knob speeds stages up
  // very unevenly (timing dominates), so per-stage timings are what the
  // bench regressions and any perf triage actually need.
  util::Timer stage_timer;
  {
    FORUMCAST_SPAN("pipeline.extractor_build");
    extractor_ = std::make_unique<features::FeatureExtractor>(
        dataset, history_questions, config_.extractor);
  }
  FORUMCAST_HISTOGRAM_OBSERVE("pipeline.fit.extractor_build_ms",
                              stage_timer.milliseconds(), 10, 100, 1000, 10000,
                              60000);
  last_post_time_ = dataset.last_post_time();

  const auto positives = dataset.answered_pairs(history_questions);
  FORUMCAST_CHECK_MSG(!positives.empty(), "history window has no answers");
  FORUMCAST_LOG_INFO_KV("pipeline.fit",
                        {"history_questions", history_questions.size()},
                        {"positives", positives.size()});

  // --- Answer classifier: positives + sampled negatives. ---
  const auto negative_count = static_cast<std::size_t>(
      static_cast<double>(positives.size()) * config_.negatives_per_positive);
  const auto negatives = eval::sample_negative_pairs(
      dataset, history_questions, negative_count, config_.seed ^ 0x9999ULL);
  std::vector<std::vector<double>> answer_rows;
  std::vector<int> answer_labels;
  {
    FORUMCAST_SPAN("pipeline.answer_rows");
    for (const auto& pair : positives) {
      answer_rows.push_back(extractor_->features(pair.user, pair.question));
      answer_labels.push_back(1);
    }
    for (const auto& pair : negatives) {
      answer_rows.push_back(extractor_->features(pair.user, pair.question));
      answer_labels.push_back(0);
    }
  }
  // Drift reference: the histogram of the very matrix the answer classifier
  // trains on. Captured before fit() consumes the rows so serving-time PSI
  // compares against exactly what the model saw.
  baseline_ = features::FeatureBaseline::from_rows(answer_rows);

  answer_ = AnswerPredictor(config_.answer);
  stage_timer.reset();
  answer_.fit(answer_rows, answer_labels);
  FORUMCAST_HISTOGRAM_OBSERVE("pipeline.fit.answer_ms",
                              stage_timer.milliseconds(), 10, 100, 1000, 10000,
                              60000);

  // --- Vote regressor. ---
  std::vector<std::vector<double>> vote_rows;
  std::vector<double> vote_targets;
  for (const auto& pair : positives) {
    vote_rows.push_back(extractor_->features(pair.user, pair.question));
    vote_targets.push_back(static_cast<double>(pair.votes));
  }
  vote_ = VotePredictor(config_.vote);
  stage_timer.reset();
  vote_.fit(vote_rows, vote_targets);
  FORUMCAST_HISTOGRAM_OBSERVE("pipeline.fit.vote_ms",
                              stage_timer.milliseconds(), 10, 100, 1000, 10000,
                              60000);

  // --- Point-process timing model. ---
  FORUMCAST_SPAN_NAMED(timing_span, "pipeline.timing_threads");
  const auto threads = build_timing_threads(
      dataset, *extractor_, positives, last_post_time_,
      config_.survival_samples_per_thread, config_.seed ^ 0x7117ULL);
  timing_span.end();
  timing_ = TimingPredictor(config_.timing);
  stage_timer.reset();
  timing_.fit(threads);
  FORUMCAST_HISTOGRAM_OBSERVE("pipeline.fit.timing_ms",
                              stage_timer.milliseconds(), 10, 100, 1000, 10000,
                              60000);
  ++generation_;
}

Prediction ForecastPipeline::predict(forum::UserId u, forum::QuestionId q) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_COUNTER_ADD("pipeline.predictions", 1);
  const auto x = extractor_->features(u, q);
  Prediction prediction;
  prediction.answer_probability = answer_.predict_probability(x);
  prediction.votes = vote_.predict(x);
  prediction.delay_hours = timing_.predict_delay(x, question_open_duration(q));
  if (prediction_observer_) prediction_observer_(u, q, prediction);
  return prediction;
}

const forum::Dataset& ForecastPipeline::dataset() const {
  FORUMCAST_CHECK(fitted());
  return *dataset_;
}

double ForecastPipeline::question_open_duration(forum::QuestionId q) const {
  FORUMCAST_CHECK(fitted());
  return std::max(
      1e-3, last_post_time_ - dataset_->thread(q).question.timestamp_hours);
}

const features::FeatureExtractor& ForecastPipeline::extractor() const {
  FORUMCAST_CHECK(fitted());
  return *extractor_;
}

features::FeatureExtractor& ForecastPipeline::extractor_mutable() {
  FORUMCAST_CHECK(fitted());
  return *extractor_;
}

void ForecastPipeline::save(std::ostream& out) const {
  FORUMCAST_CHECK_MSG(fitted(), "cannot save an unfitted ForecastPipeline");
  FORUMCAST_SPAN("pipeline.save");
  artifact::BundleWriter writer(out);

  // Dataset fingerprint: load() refuses a bundle fitted against a different
  // forum snapshot — the extractor state indexes users and questions by id,
  // so a mismatch would mis-features silently, not fail loudly.
  artifact::Encoder meta;
  meta.u64(dataset_->num_questions());
  meta.u64(dataset_->num_users());
  meta.u64(dataset_->stats().answers);
  meta.f64(last_post_time_, "meta last post time");
  meta.u64(generation_);
  writer.section(artifact::SectionKind::kMeta, meta);

  artifact::Encoder extractor;
  extractor_->encode(extractor);
  writer.section(artifact::SectionKind::kExtractor, extractor);

  artifact::Encoder answer;
  answer_.encode(answer);
  writer.section(artifact::SectionKind::kAnswerPredictor, answer);

  artifact::Encoder vote;
  vote_.encode(vote);
  writer.section(artifact::SectionKind::kVotePredictor, vote);

  artifact::Encoder timing;
  timing_.encode(timing);
  writer.section(artifact::SectionKind::kTimingPredictor, timing);

  if (!baseline_.empty()) {
    artifact::Encoder baseline;
    baseline_.encode(baseline);
    writer.section(artifact::SectionKind::kFeatureBaseline, baseline);
  }

  // The centrality knob rides along so a loaded model keeps refreshing its
  // SLN centralities the way it was fitted (exact vs pivot-sampled).
  {
    artifact::Encoder centrality;
    const graph::CentralityConfig& cfg = config_.extractor.centrality;
    centrality.u32(1);  // centrality section format
    centrality.u8(static_cast<std::uint8_t>(cfg.mode));
    centrality.u64(cfg.num_pivots);
    centrality.u64(cfg.seed);
    writer.section(artifact::SectionKind::kCentralityConfig, centrality);
  }

  // Optional trailer #3: the int8 vote network, present only when the
  // pipeline was fitted (or asked) to serve quantized. The fp32 weights in
  // the kVotePredictor section stay canonical; this section preserves the
  // fit-time calibration (bias correction) that a load-time regeneration
  // could not recover.
  if (vote_.quantized()) {
    artifact::Encoder quantized;
    ml::encode_quantized_mlp(*vote_.quantized_net(), quantized);
    writer.section(artifact::SectionKind::kQuantizedMlp, quantized);
  }

  writer.finish();
  FORUMCAST_COUNTER_ADD("pipeline.bundle_saves", 1);
}

ForecastPipeline ForecastPipeline::load(std::istream& in,
                                        const forum::Dataset& dataset) {
  FORUMCAST_SPAN("pipeline.load");
  artifact::BundleReader reader(in);

  auto meta = reader.expect(artifact::SectionKind::kMeta);
  const std::uint64_t questions = meta.u64("meta question count");
  const std::uint64_t users = meta.u64("meta user count");
  const std::uint64_t answers = meta.u64("meta answer count");
  const double last_post_time = meta.f64("meta last post time");
  const std::uint64_t generation = meta.u64("meta generation");
  meta.finish();
  FORUMCAST_CHECK_MSG(questions == dataset.num_questions(),
                      "model bundle fingerprint mismatch: bundle fitted on "
                          << questions << " questions, dataset has "
                          << dataset.num_questions());
  FORUMCAST_CHECK_MSG(users == dataset.num_users(),
                      "model bundle fingerprint mismatch: bundle fitted on "
                          << users << " users, dataset has "
                          << dataset.num_users());
  FORUMCAST_CHECK_MSG(answers == dataset.stats().answers,
                      "model bundle fingerprint mismatch: bundle fitted on "
                          << answers << " answers, dataset has "
                          << dataset.stats().answers);
  FORUMCAST_CHECK_MSG(last_post_time == dataset.last_post_time(),
                      "model bundle fingerprint mismatch: bundle last post "
                      "time "
                          << last_post_time << ", dataset "
                          << dataset.last_post_time());
  FORUMCAST_CHECK_MSG(generation >= 1,
                      "model bundle carries generation 0 (unfitted)");

  ForecastPipeline pipeline;
  pipeline.dataset_ = &dataset;
  pipeline.last_post_time_ = last_post_time;
  pipeline.generation_ = generation;

  auto extractor = reader.expect(artifact::SectionKind::kExtractor);
  pipeline.extractor_ = features::FeatureExtractor::decode(extractor, dataset);
  extractor.finish();
  pipeline.config_.extractor = pipeline.extractor_->config();

  auto answer = reader.expect(artifact::SectionKind::kAnswerPredictor);
  pipeline.answer_ = AnswerPredictor::decode(answer);
  answer.finish();

  auto vote = reader.expect(artifact::SectionKind::kVotePredictor);
  pipeline.vote_ = VotePredictor::decode(vote);
  vote.finish();

  auto timing = reader.expect(artifact::SectionKind::kTimingPredictor);
  pipeline.timing_ = TimingPredictor::decode(timing);
  timing.finish();

  // Optional trailer: bundles written before the drift baseline existed end
  // right after the timing predictor. Loading them leaves the baseline
  // empty, and the monitor reports "no baseline" instead of fake PSI.
  if (auto baseline = reader.try_expect(artifact::SectionKind::kFeatureBaseline)) {
    pipeline.baseline_ = features::FeatureBaseline::decode(*baseline);
    baseline->finish();
  }

  // Optional trailer #2: bundles written before the exact↔sampled knob
  // existed default to exact, which is also what the decoded extractor
  // assumes — nothing to patch in that case.
  if (auto centrality =
          reader.try_expect(artifact::SectionKind::kCentralityConfig)) {
    const std::uint32_t format = centrality->u32("centrality format");
    FORUMCAST_CHECK_MSG(format == 1, "model bundle: unknown centrality "
                                     "section format "
                                         << format);
    const std::uint8_t mode = centrality->u8("centrality mode");
    FORUMCAST_CHECK_MSG(mode <= 1,
                        "model bundle: unknown centrality mode " << +mode);
    graph::CentralityConfig cfg;
    cfg.mode = static_cast<graph::CentralityMode>(mode);
    cfg.num_pivots = centrality->u64("centrality num pivots");
    cfg.seed = centrality->u64("centrality seed");
    centrality->finish();
    pipeline.extractor_->set_centrality_config(cfg);
    pipeline.config_.extractor.centrality = cfg;
  }

  // Optional trailer #3: int8 vote network. Bundles without it load on the
  // fp32 path; quantized serving can still be enabled afterwards via
  // quantize_vote(), which regenerates from the fp32 master weights.
  if (auto quantized = reader.try_expect(artifact::SectionKind::kQuantizedMlp)) {
    pipeline.vote_.install_quantized(ml::decode_quantized_mlp(*quantized));
    quantized->finish();
  }

  reader.finish();
  FORUMCAST_COUNTER_ADD("pipeline.bundle_loads", 1);
  return pipeline;
}

void ForecastPipeline::quantize_vote() {
  FORUMCAST_CHECK_MSG(fitted(), "cannot quantize an unfitted ForecastPipeline");
  if (!vote_.quantized()) vote_.quantize_from_master();
}

}  // namespace forumcast::core
