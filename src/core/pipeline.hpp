// End-to-end forecasting pipeline: features + the three predictors.
//
// Mirrors the block diagram of paper Fig. 1: forum data → feature
// construction → (a, v, r) predictors. The pipeline trains on a history
// window of questions (the F(q) inference set) and can then score any
// user-question pair. The free functions below assemble predictor training
// sets from answered pairs and are shared with the evaluation benches, which
// need finer-grained control (pair-level cross validation).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/answer_predictor.hpp"
#include "core/timing_predictor.hpp"
#include "core/vote_predictor.hpp"
#include "eval/sampling.hpp"
#include "features/baseline.hpp"
#include "features/extractor.hpp"
#include "forum/dataset.hpp"

namespace forumcast::core {

struct PipelineConfig {
  features::ExtractorConfig extractor = {};
  AnswerPredictorConfig answer = {};
  VotePredictorConfig vote = {};
  TimingPredictorConfig timing = {};
  /// Sampled non-answerers per thread for the point-process survival term.
  std::size_t survival_samples_per_thread = 20;
  /// Negatives sampled per positive for the answer classifier.
  double negatives_per_positive = 1.0;
  std::uint64_t seed = 99;
  /// Training parallelism, fanned out to every stage: LDA Gibbs shards
  /// (extractor.lda.threads), answer-classifier gradient accumulation
  /// (answer.logistic.threads), and the gemm-backed minibatch paths of the
  /// vote and timing networks (vote.threads / timing.threads). 0 resolves to
  /// util::default_thread_count(). With 1 (the default) every stage runs the
  /// serial path and the fit is bit-equal to previous releases; with N > 1
  /// only the LDA stage changes results (AD-LDA sharding, deterministic for
  /// a fixed N) — the gradient stages stay bit-equal at any thread count.
  /// Values other than 1 override the per-stage thread knobs above.
  std::size_t fit_threads = 1;
};

struct Prediction {
  double answer_probability = 0.0;  ///< â_{u,q}
  double votes = 0.0;               ///< v̂_{u,q}
  double delay_hours = 0.0;         ///< r̂_{u,q}
};

/// Callable producing x_{u,q}; lets callers swap in per-window extractors.
using FeatureFn =
    std::function<std::vector<double>(forum::UserId, forum::QuestionId)>;

/// Observer invoked after every scalar predict() with the scored pair and
/// the resulting Prediction. This is the model-quality monitoring hook: the
/// monitor (obs/monitor) registers itself here to ledger scalar-path
/// predictions without core depending on the monitoring layer.
using PredictionObserver = std::function<void(
    forum::UserId, forum::QuestionId, const Prediction&)>;

/// Callable scoring one question against many candidate users at once,
/// returning one Prediction per candidate in order. The serving layer
/// (serve::BatchScorer) provides an implementation backed by feature caching
/// and batched model forwards; consumers like Recommender fall back to
/// per-pair ForecastPipeline::predict when none is supplied.
using BatchPredictFn = std::function<std::vector<Prediction>(
    forum::QuestionId, std::span<const forum::UserId>)>;

/// Builds the point-process training threads for `pairs`, sampling
/// non-answering users into each thread's survival term with importance
/// weights that extrapolate to the full user population.
std::vector<TimingThread> build_timing_threads(
    const forum::Dataset& dataset, const FeatureFn& features,
    std::span<const forum::AnsweredPair> pairs, double last_post_time,
    std::size_t survival_samples_per_thread, std::uint64_t seed);

/// Convenience overload over a single FeatureExtractor.
std::vector<TimingThread> build_timing_threads(
    const forum::Dataset& dataset, const features::FeatureExtractor& extractor,
    std::span<const forum::AnsweredPair> pairs, double last_post_time,
    std::size_t survival_samples_per_thread, std::uint64_t seed);

class ForecastPipeline {
 public:
  explicit ForecastPipeline(PipelineConfig config = {});

  /// Trains everything on the given history window (feature caches, topic
  /// model, SLN graphs, and all three predictors use only these questions).
  void fit(const forum::Dataset& dataset,
           std::span<const forum::QuestionId> history_questions);

  /// Scores any (u, q) of the fitted dataset. Requires fit().
  Prediction predict(forum::UserId u, forum::QuestionId q) const;

  bool fitted() const { return extractor_ != nullptr; }
  const features::FeatureExtractor& extractor() const;

  /// Mutable extractor access for the streaming ingestion layer
  /// (stream::LiveState), which updates feature state in place as live
  /// events arrive instead of refitting. Requires fit(). Does not bump the
  /// generation: streamed updates invalidate serving caches fine-grained via
  /// the dirty set, not wholesale.
  features::FeatureExtractor& extractor_mutable();
  const AnswerPredictor& answer_predictor() const { return answer_; }
  const VotePredictor& vote_predictor() const { return vote_; }
  const TimingPredictor& timing_predictor() const { return timing_; }

  /// Fit-time feature-distribution histograms, captured over the answer
  /// classifier's training matrix and persisted with the bundle. Empty when
  /// the pipeline was loaded from a bundle written before the baseline
  /// section existed (drift detection then reports no data, never garbage).
  const features::FeatureBaseline& feature_baseline() const {
    return baseline_;
  }

  /// Installs (or clears, with nullptr) the scalar-path prediction observer.
  /// Not synchronized against concurrent predict() calls — install before
  /// serving starts, the same discipline BatchScorer::swap_model documents.
  void set_prediction_observer(PredictionObserver observer) {
    prediction_observer_ = std::move(observer);
  }

  /// The dataset of the last fit(). Requires fit().
  const forum::Dataset& dataset() const;

  /// Δ_q = max(1e-3, T − t_q): how long question q has been open at the
  /// snapshot time T — the horizon predict() feeds the timing model.
  double question_open_duration(forum::QuestionId q) const;

  /// Monotonic snapshot token: bumped by every fit(), so caches keyed on it
  /// (serve::FeatureCache) notice when the forum snapshot they were built
  /// against is gone. Zero means never fitted.
  std::uint64_t generation() const { return generation_; }

  /// Writes the whole fitted pipeline — extractor (topics, aggregates, SLN
  /// graphs) plus all three predictors — as one versioned model bundle.
  /// Requires fit() and a quiesced extractor (no pending streamed updates).
  void save(std::ostream& out) const;

  /// Restores a pipeline from a bundle against `dataset`, which must match
  /// the fingerprint recorded at save time (named error otherwise). Runs
  /// zero fit stages; the loaded pipeline predicts bit-identically to the
  /// one that saved the bundle, on both scalar and batch paths.
  static ForecastPipeline load(std::istream& in, const forum::Dataset& dataset);

  /// Switches vote-network inference to the int8 path, deriving the
  /// quantized net from the fp32 master weights if the bundle did not carry
  /// one. No-op when already quantized. Requires fit() (or load()). Not
  /// synchronized against concurrent predict() — same discipline as
  /// set_prediction_observer().
  void quantize_vote();

 private:
  PipelineConfig config_;
  const forum::Dataset* dataset_ = nullptr;
  std::unique_ptr<features::FeatureExtractor> extractor_;
  AnswerPredictor answer_;
  VotePredictor vote_;
  TimingPredictor timing_;
  features::FeatureBaseline baseline_;
  PredictionObserver prediction_observer_;
  double last_post_time_ = 0.0;
  std::uint64_t generation_ = 0;
};

}  // namespace forumcast::core
