#include "core/recommender.hpp"

#include <algorithm>

#include "opt/routing_lp.hpp"
#include "util/check.hpp"

namespace forumcast::core {

Recommender::Recommender(const ForecastPipeline& pipeline, RecommenderConfig config)
    : Recommender(pipeline, BatchPredictFn{}, config) {}

Recommender::Recommender(const ForecastPipeline& pipeline,
                         BatchPredictFn batch_predict, RecommenderConfig config)
    : pipeline_(pipeline),
      batch_predict_(std::move(batch_predict)),
      config_(config) {
  FORUMCAST_CHECK(config_.epsilon > 0.0 && config_.epsilon < 1.0);
  FORUMCAST_CHECK(config_.default_capacity > 0.0);
}

RecommendationResult Recommender::recommend(
    forum::QuestionId question, std::span<const forum::UserId> candidates,
    std::span<const double> recent_answer_counts,
    std::span<const double> capacities,
    std::optional<double> tradeoff_override) const {
  FORUMCAST_CHECK(!candidates.empty());
  if (!recent_answer_counts.empty()) {
    FORUMCAST_CHECK(recent_answer_counts.size() == candidates.size());
  }
  if (!capacities.empty()) {
    FORUMCAST_CHECK(capacities.size() == candidates.size());
  }
  const double lambda = tradeoff_override.value_or(config_.quality_time_tradeoff);

  RecommendationResult result;

  // Predict for every candidate and keep the eligible ones. With a batch
  // scorer wired in, all candidates go through one bulk call; otherwise each
  // pair runs through the scalar reference path.
  std::vector<Prediction> batch;
  if (batch_predict_) {
    batch = batch_predict_(question, candidates);
    FORUMCAST_CHECK(batch.size() == candidates.size());
  }
  std::vector<forum::UserId> eligible;
  std::vector<Prediction> predictions;
  std::vector<double> weights, caps;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Prediction prediction =
        batch_predict_ ? batch[i] : pipeline_.predict(candidates[i], question);
    if (prediction.answer_probability < config_.epsilon) continue;
    const double base_capacity =
        capacities.empty() ? config_.default_capacity : capacities[i];
    const double load =
        recent_answer_counts.empty() ? 0.0 : recent_answer_counts[i];
    const double remaining = std::max(0.0, base_capacity - load);
    if (remaining <= 0.0) continue;
    eligible.push_back(candidates[i]);
    predictions.push_back(prediction);
    weights.push_back(prediction.votes - lambda * prediction.delay_hours);
    caps.push_back(remaining);
  }
  if (eligible.empty()) return result;

  const opt::RoutingSolution lp =
      opt::solve_routing({std::move(weights), std::move(caps)});
  if (!lp.feasible) return result;

  result.feasible = true;
  result.objective_value = lp.objective_value;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (lp.probabilities[i] > 1e-12) {
      result.ranking.push_back({eligible[i], lp.probabilities[i], predictions[i]});
    }
  }
  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.probability > b.probability;
            });
  return result;
}

}  // namespace forumcast::core
