// Question recommendation system (paper Sec. V, eq. (2)).
//
// For a newly posted question q′, predicts (â, v̂, r̂) for every candidate
// user, forms the eligible set U_{q′} = {u : â ≥ ε}, and solves
//
//   maximize Σ_u (v̂_u − λ_{q′}·r̂_u) p_u   s.t.  0 ≤ p_u ≤ cap_u, Σ p_u = 1
//
// where cap_u = c_u − (answers by u in the recent window of length I).
// The result is a probability distribution over recommended answerers; the
// paper argues for a distribution (rather than an argmax) so the platform can
// redraw until an answer is recorded.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/dataset.hpp"

namespace forumcast::core {

struct RecommenderConfig {
  double epsilon = 0.5;           ///< eligibility threshold on â_{u,q}
  double quality_time_tradeoff = 0.1;  ///< λ_{q′}: hours of delay worth one vote
  double default_capacity = 1.0;  ///< c_u when the user specified none
  double load_window_hours = 24.0;  ///< I: lookback for recent answering load
};

struct Recommendation {
  forum::UserId user = 0;
  double probability = 0.0;  ///< p_u from the LP
  Prediction prediction;     ///< the (â, v̂, r̂) that drove the weight
};

struct RecommendationResult {
  bool feasible = false;
  std::vector<Recommendation> ranking;  ///< p_u > 0, sorted descending
  double objective_value = 0.0;
};

class Recommender {
 public:
  /// The pipeline must stay alive (and fitted) while the recommender is used.
  Recommender(const ForecastPipeline& pipeline, RecommenderConfig config = {});

  /// Same, but candidate scoring goes through `batch_predict` (one call per
  /// question instead of one pipeline.predict per pair) — pass
  /// serve::BatchScorer::predict_fn() here. A null callable falls back to the
  /// per-pair reference path.
  Recommender(const ForecastPipeline& pipeline, BatchPredictFn batch_predict,
              RecommenderConfig config = {});

  /// Recommends answerers for question q among `candidates`.
  /// `now_hours` is the decision time n (used for the load window);
  /// `recent_answer_counts` maps user → answers recorded inside the window
  /// (pass empty to assume an unloaded population). Per-user capacities
  /// default to `default_capacity` unless provided.
  RecommendationResult recommend(
      forum::QuestionId question, std::span<const forum::UserId> candidates,
      std::span<const double> recent_answer_counts = {},
      std::span<const double> capacities = {},
      std::optional<double> tradeoff_override = std::nullopt) const;

  const RecommenderConfig& config() const { return config_; }

 private:
  const ForecastPipeline& pipeline_;
  BatchPredictFn batch_predict_;
  RecommenderConfig config_;
};

}  // namespace forumcast::core
