#include "core/routing_simulator.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace forumcast::core {

RoutingSimulator::RoutingSimulator(const ForecastPipeline& pipeline,
                                   OutcomeFn outcome, SimulatorConfig config)
    : pipeline_(pipeline), outcome_(std::move(outcome)), config_(config) {
  FORUMCAST_CHECK(outcome_ != nullptr);
  FORUMCAST_CHECK(config_.max_draws >= 1);
  FORUMCAST_CHECK(config_.acceptance_scale > 0.0);
}

AbTestResult RoutingSimulator::run(const forum::Dataset& dataset,
                                   std::span<const forum::QuestionId> arrivals,
                                   std::span<const forum::UserId> candidates) {
  FORUMCAST_CHECK(!arrivals.empty());
  FORUMCAST_CHECK(!candidates.empty());

  const Recommender recommender(pipeline_, config_.batch_predict,
                                config_.recommender);
  util::Rng rng(config_.seed);

  util::RunningStats organic_votes, organic_delay, routed_votes, routed_delay;
  GroupOutcome organic, routed;
  std::vector<double> load(candidates.size(), 0.0);

  std::size_t toggle = 0;
  for (forum::QuestionId question : arrivals) {
    if (toggle++ % 2 == 0) {
      // ----- group A: organic -----
      ++organic.questions;
      const auto& answers = dataset.thread(question).answers;
      if (!answers.empty()) ++organic.answered;
      for (const auto& answer : answers) {
        const SimulatedOutcome result = outcome_(answer.creator, question);
        organic_votes.add(result.votes);
        organic_delay.add(result.delay_hours);
        ++organic.answers;
      }
      continue;
    }

    // ----- group B: routed -----
    ++routed.questions;
    const auto recommendation =
        recommender.recommend(question, candidates, load);
    if (!recommendation.feasible) continue;

    std::vector<double> probabilities;
    probabilities.reserve(recommendation.ranking.size());
    for (const auto& rec : recommendation.ranking) {
      probabilities.push_back(rec.probability);
    }
    for (std::size_t draw = 0; draw < config_.max_draws; ++draw) {
      const auto& chosen =
          recommendation.ranking[rng.categorical(probabilities)];
      const double accept = std::min(
          1.0, config_.acceptance_scale * chosen.prediction.answer_probability);
      if (!rng.bernoulli(accept)) continue;

      const SimulatedOutcome result = outcome_(chosen.user, question);
      routed_votes.add(result.votes);
      routed_delay.add(result.delay_hours);
      ++routed.answered;
      ++routed.answers;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == chosen.user) {
          load[i] += 1.0;
          break;
        }
      }
      break;
    }
  }

  organic.mean_votes = organic_votes.mean();
  organic.mean_delay_hours = organic_delay.mean();
  routed.mean_votes = routed_votes.mean();
  routed.mean_delay_hours = routed_delay.mean();
  return {organic, routed};
}

}  // namespace forumcast::core
