// Simulated A/B test of the question recommender (paper Sec. VI future work).
//
// Arrivals are processed chronologically and alternately assigned to
//   group A (control):   the organic answerers recorded in the dataset, or
//   group B (treatment): an answerer drawn from the routing LP's
//                        distribution, redrawn until one accepts (acceptance
//                        probability = predicted â, the quantity the platform
//                        would estimate), with per-user load bookkeeping.
// Realized outcomes for both groups come from a caller-supplied outcome
// model — the synthetic generator's ground-truth oracle in our benches, or
// logged counterfactual estimates on a real platform.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "core/recommender.hpp"
#include "forum/dataset.hpp"

namespace forumcast::core {

struct SimulatedOutcome {
  double votes = 0.0;
  double delay_hours = 0.0;
};

/// Realized outcome if `user` answered `question` (of the working dataset).
using OutcomeFn =
    std::function<SimulatedOutcome(forum::UserId, forum::QuestionId)>;

struct SimulatorConfig {
  RecommenderConfig recommender = {};
  /// Bulk scorer for the routing LP's candidate predictions (pass
  /// serve::BatchScorer::predict_fn()); null scores pair by pair through the
  /// scalar reference path.
  BatchPredictFn batch_predict = {};
  std::uint64_t seed = 5150;
  std::size_t max_draws = 5;       ///< redraws before giving up on a question
  double acceptance_scale = 1.0;   ///< accept prob = min(1, scale · â)
};

struct GroupOutcome {
  std::size_t questions = 0;   ///< questions assigned to the group
  std::size_t answered = 0;    ///< questions that got an answer
  std::size_t answers = 0;     ///< total answer events
  double mean_votes = 0.0;
  double mean_delay_hours = 0.0;
};

struct AbTestResult {
  GroupOutcome organic;  ///< group A
  GroupOutcome routed;   ///< group B
};

class RoutingSimulator {
 public:
  /// `pipeline` must be fitted; both references must outlive the simulator.
  RoutingSimulator(const ForecastPipeline& pipeline, OutcomeFn outcome,
                   SimulatorConfig config = {});

  /// Runs the A/B protocol over `arrivals` (processed in the given order)
  /// with `candidates` as the routing universe.
  AbTestResult run(const forum::Dataset& dataset,
                   std::span<const forum::QuestionId> arrivals,
                   std::span<const forum::UserId> candidates);

 private:
  const ForecastPipeline& pipeline_;
  OutcomeFn outcome_;
  SimulatorConfig config_;
};

}  // namespace forumcast::core
