#include "core/timing_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "ml/adam.hpp"
#include "ml/activations.hpp"
#include "ml/serialize.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::core {

namespace {
constexpr double kMuFloor = 1e-6;
constexpr double kOmegaFloor = 1e-4;

// (1 − e^{−ωΔ}) / ω, stable for small ωΔ.
double survival_integral(double omega, double delta) {
  const double x = omega * delta;
  if (x < 1e-8) return delta * (1.0 - 0.5 * x);
  return (1.0 - std::exp(-x)) / omega;
}

// d/dω of survival_integral.
double survival_integral_domega(double omega, double delta) {
  const double x = omega * delta;
  if (x < 1e-6) return -0.5 * delta * delta;
  const double e = std::exp(-x);
  return (delta * e) / omega - (1.0 - e) / (omega * omega);
}
}  // namespace

TimingPredictor::TimingPredictor(TimingPredictorConfig config)
    : config_(std::move(config)) {
  FORUMCAST_CHECK(config_.constant_omega > 0.0);
}

void TimingPredictor::fit(std::span<const TimingThread> threads) {
  FORUMCAST_CHECK(!threads.empty());
  FORUMCAST_SPAN_NAMED(fit_span, "timing.fit");
  fit_span.arg("threads", static_cast<double>(threads.size()));

  // Collect all feature rows to fit the scaler and determine the dimension.
  std::vector<std::vector<double>> all_rows;
  std::size_t total_answers = 0;
  for (const auto& thread : threads) {
    FORUMCAST_CHECK(thread.open_duration > 0.0);
    for (const auto& answer : thread.answers) {
      all_rows.push_back(answer.features);
      ++total_answers;
    }
    for (const auto& sample : thread.survival) {
      all_rows.push_back(sample.features);
    }
  }
  FORUMCAST_CHECK_MSG(total_answers > 0, "no answer events to fit on");
  scaler_.fit(all_rows);
  const std::size_t dim = all_rows.front().size();

  auto make_net = [&](const std::vector<std::size_t>& hidden,
                      std::uint64_t seed) {
    std::vector<ml::LayerSpec> specs;
    for (std::size_t units : hidden) specs.push_back({units, ml::Activation::Tanh});
    specs.push_back({1, ml::Activation::Softplus});
    return std::make_unique<ml::Mlp>(dim, std::move(specs), seed);
  };
  f_net_ = make_net(config_.f_hidden, config_.seed);
  if (config_.learn_omega) {
    g_net_ = make_net(config_.g_hidden, config_.seed ^ 0x777ULL);
  } else {
    g_net_.reset();
    // Invert ω = softplus(ρ) + floor for the requested initial value.
    const double target = std::max(config_.constant_omega - kOmegaFloor, 1e-6);
    omega_rho_ = std::log(std::expm1(target));
  }

  ml::Adam f_adam(f_net_->param_count(), {.learning_rate = config_.learning_rate});
  std::unique_ptr<ml::Adam> g_adam;
  if (g_net_) {
    g_adam = std::make_unique<ml::Adam>(
        g_net_->param_count(),
        ml::AdamConfig{.learning_rate = config_.learning_rate});
  }
  ml::Adam rho_adam(1, {.learning_rate = config_.learning_rate});

  // Pre-scale features once.
  struct ScaledThread {
    double delta;
    std::vector<std::pair<std::vector<double>, double>> answers;  // (x, delay)
    std::vector<std::pair<std::vector<double>, double>> survival; // (x, weight)
  };
  std::vector<ScaledThread> scaled;
  scaled.reserve(threads.size());
  double total_open = 0.0;
  for (const auto& thread : threads) {
    ScaledThread st;
    st.delta = thread.open_duration;
    total_open += thread.open_duration;
    for (const auto& answer : thread.answers) {
      st.answers.emplace_back(scaler_.transform(answer.features), answer.delay);
    }
    for (const auto& sample : thread.survival) {
      st.survival.emplace_back(scaler_.transform(sample.features), sample.weight);
    }
    scaled.push_back(std::move(st));
  }
  mean_open_duration_ = total_open / static_cast<double>(threads.size());

  std::vector<std::size_t> order(scaled.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Rng rng(config_.seed ^ 0x51adULL);

  ml::Mlp::Tape f_tape, g_tape;
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_threads);
  const bool batched = config_.threads > 1;
  ml::Mlp::BatchTape f_btape, g_btape;
  ml::Matrix xbatch, f_gout, g_gout;
  struct RowMeta {
    double value = 0.0;  ///< delay (answer rows) or weight (survival rows)
    double delta = 0.0;  ///< thread open duration Δ
    bool answer = false;
  };
  std::vector<RowMeta> meta;

  // Evaluates μ, ω for a scaled row and accumulates gradients given
  // dLoss/dμ and dLoss/dω (loss = negative log-likelihood).
  double rho_grad = 0.0;
  auto accumulate = [&](const std::vector<double>& x, double dloss_dmu,
                        double dloss_domega) {
    // μ = f(x) + floor ⇒ dμ/df_out = 1.
    f_net_->forward(x, f_tape);
    f_net_->backward(f_tape, std::vector<double>{dloss_dmu});
    if (g_net_) {
      g_net_->forward(x, g_tape);
      g_net_->backward(g_tape, std::vector<double>{dloss_domega});
    } else if (config_.train_constant_omega) {
      rho_grad += dloss_domega * ml::sigmoid(omega_rho_);
    }
  };
  auto mu_of = [&](const std::vector<double>& x) {
    return f_net_->forward(x)[0] + kMuFloor;
  };
  auto omega_of = [&](const std::vector<double>& x) {
    if (g_net_) return g_net_->forward(x)[0] + kOmegaFloor;
    return ml::softplus(omega_rho_) + kOmegaFloor;
  };

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    FORUMCAST_SPAN("timing.epoch");
    double epoch_nll = 0.0;
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      f_net_->zero_grad();
      if (g_net_) g_net_->zero_grad();
      rho_grad = 0.0;
      const double inv = 1.0 / static_cast<double>(end - start);

      if (!batched) {
        for (std::size_t k = start; k < end; ++k) {
          const ScaledThread& thread = scaled[order[k]];
          // Answer events: loss −= log μ − ω·delay.
          for (const auto& [x, delay] : thread.answers) {
            const double mu = mu_of(x);
            epoch_nll -= std::log(mu) - omega_of(x) * delay;
            accumulate(x, -inv / mu, inv * delay);
          }
          // Survival terms: loss += w · μ · A(ω), A = (1 − e^{−ωΔ})/ω.
          for (const auto& [x, weight] : thread.survival) {
            const double mu = mu_of(x);
            const double omega = omega_of(x);
            const double a = survival_integral(omega, thread.delta);
            const double da = survival_integral_domega(omega, thread.delta);
            epoch_nll += weight * mu * a;
            accumulate(x, inv * weight * a, inv * weight * mu * da);
          }
        }
      } else {
        // Flatten the minibatch's event rows (answers then survival per
        // thread, threads in shuffle order — the serial visit order) and run
        // each net once over the whole block instead of twice per row. The
        // nll/ρ folds below walk the same row order and backward_batch
        // accumulates its contraction in row order, so every fitted
        // parameter matches the serial loop bit for bit.
        meta.clear();
        std::size_t nrows = 0;
        for (std::size_t k = start; k < end; ++k) {
          const ScaledThread& thread = scaled[order[k]];
          nrows += thread.answers.size() + thread.survival.size();
        }
        xbatch.resize(nrows, dim);
        std::size_t b = 0;
        for (std::size_t k = start; k < end; ++k) {
          const ScaledThread& thread = scaled[order[k]];
          for (const auto& [x, delay] : thread.answers) {
            std::copy(x.begin(), x.end(), xbatch.row(b++).begin());
            meta.push_back({delay, thread.delta, true});
          }
          for (const auto& [x, weight] : thread.survival) {
            std::copy(x.begin(), x.end(), xbatch.row(b++).begin());
            meta.push_back({weight, thread.delta, false});
          }
        }
        const ml::Tensor<const double> f_out =
            f_net_->forward_batch(xbatch, f_btape);
        ml::Tensor<const double> g_out;
        if (g_net_) g_out = g_net_->forward_batch(xbatch, g_btape);
        f_gout.resize(nrows, 1);
        if (g_net_) g_gout.resize(nrows, 1);
        const double constant_omega = ml::softplus(omega_rho_) + kOmegaFloor;
        for (std::size_t r = 0; r < nrows; ++r) {
          const double mu = f_out(r, 0) + kMuFloor;
          const double omega =
              g_net_ ? g_out(r, 0) + kOmegaFloor : constant_omega;
          double dloss_dmu = 0.0, dloss_domega = 0.0;
          if (meta[r].answer) {
            epoch_nll -= std::log(mu) - omega * meta[r].value;
            dloss_dmu = -inv / mu;
            dloss_domega = inv * meta[r].value;
          } else {
            const double a = survival_integral(omega, meta[r].delta);
            const double da = survival_integral_domega(omega, meta[r].delta);
            epoch_nll += meta[r].value * mu * a;
            dloss_dmu = inv * meta[r].value * a;
            dloss_domega = inv * meta[r].value * mu * da;
          }
          f_gout(r, 0) = dloss_dmu;
          if (g_net_) {
            g_gout(r, 0) = dloss_domega;
          } else if (config_.train_constant_omega) {
            rho_grad += dloss_domega * ml::sigmoid(omega_rho_);
          }
        }
        f_net_->backward_batch(f_btape, f_gout.view());
        if (g_net_) g_net_->backward_batch(g_btape, g_gout.view());
      }
      f_adam.step(f_net_->params(), f_net_->grads());
      if (g_net_) {
        g_adam->step(g_net_->params(), g_net_->grads());
      } else if (config_.train_constant_omega) {
        double rho = omega_rho_;
        std::span<double> rho_span(&rho, 1);
        rho_adam.step(rho_span, std::span<const double>(&rho_grad, 1));
        omega_rho_ = rho;
      }
    }
    FORUMCAST_GAUGE_SET("timing.train_nll",
                        epoch_nll / static_cast<double>(scaled.size()));
  }

  // Affine calibration of the raw estimator against observed delays.
  calibration_offset_ = 0.0;
  calibration_slope_ = 1.0;
  if (config_.calibrate) {
    std::vector<double> raw, observed;
    if (!batched) {
      for (const auto& thread : scaled) {
        for (const auto& [x, delay] : thread.answers) {
          raw.push_back(raw_estimate(mu_of(x), omega_of(x), thread.delta));
          observed.push_back(delay);
        }
      }
    } else {
      // Same estimates in the same order from one batched forward per net.
      std::size_t nrows = 0;
      for (const auto& thread : scaled) nrows += thread.answers.size();
      ml::Matrix xall, f_mu, g_omega;
      xall.resize(nrows, dim);
      std::vector<double> deltas(nrows);
      std::size_t b = 0;
      for (const auto& thread : scaled) {
        for (const auto& [x, delay] : thread.answers) {
          std::copy(x.begin(), x.end(), xall.row(b).begin());
          deltas[b] = thread.delta;
          observed.push_back(delay);
          ++b;
        }
      }
      f_net_->forward_batch_into(xall, f_mu);
      if (g_net_) g_net_->forward_batch_into(xall, g_omega);
      const double constant_omega = ml::softplus(omega_rho_) + kOmegaFloor;
      raw.reserve(nrows);
      for (std::size_t r = 0; r < nrows; ++r) {
        const double omega_r =
            g_net_ ? g_omega(r, 0) + kOmegaFloor : constant_omega;
        raw.push_back(
            raw_estimate(f_mu(r, 0) + kMuFloor, omega_r, deltas[r]));
      }
    }
    const double n = static_cast<double>(raw.size());
    const double mx = std::accumulate(raw.begin(), raw.end(), 0.0) / n;
    const double my = std::accumulate(observed.begin(), observed.end(), 0.0) / n;
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      sxy += (raw[i] - mx) * (observed[i] - my);
      sxx += (raw[i] - mx) * (raw[i] - mx);
    }
    if (sxx > 1e-12) {
      calibration_slope_ = sxy / sxx;
      calibration_offset_ = my - calibration_slope_ * mx;
      // A negative slope would invert the ordering the likelihood learned;
      // fall back to pure offset correction in that degenerate case.
      if (calibration_slope_ <= 0.0) {
        calibration_slope_ = 1.0;
        calibration_offset_ = my - mx;
      }
    } else {
      calibration_offset_ = my - mx;
    }
  }
  fitted_ = true;
}

double TimingPredictor::mean_log_likelihood(
    std::span<const TimingThread> threads) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(!threads.empty());
  auto rate_params = [&](const std::vector<double>& features) {
    const auto x = scaler_.transform(features);
    const double mu = f_net_->forward(x)[0] + kMuFloor;
    const double omega = g_net_ ? g_net_->forward(x)[0] + kOmegaFloor
                                : ml::softplus(omega_rho_) + kOmegaFloor;
    return std::pair<double, double>{mu, omega};
  };
  double total = 0.0;
  for (const auto& thread : threads) {
    double ll = 0.0;
    for (const auto& answer : thread.answers) {
      const auto [mu, omega] = rate_params(answer.features);
      ll += std::log(mu) - omega * answer.delay;
    }
    for (const auto& sample : thread.survival) {
      const auto [mu, omega] = rate_params(sample.features);
      ll -= sample.weight * mu * survival_integral(omega, thread.open_duration);
    }
    total += ll;
  }
  return total / static_cast<double>(threads.size());
}

double TimingPredictor::raw_estimate(double mu, double omega,
                                     double open_duration) const {
  const double delta = open_duration;
  if (config_.expectation == TimingPredictorConfig::Expectation::PaperUnnormalized) {
    // r̂ = μ/ω² (1 − e^{−ωΔ}(1 + ωΔ)), the paper's E[t] − t(p_{q,0}).
    const double x = omega * delta;
    const double tail = x > 500.0 ? 0.0 : std::exp(-x) * (1.0 + x);
    return mu / (omega * omega) * (1.0 - tail);
  }
  // E[τ | first answer in [0, Δ]] with f(τ) = λ(τ) e^{−Λ(τ)} by Simpson.
  const int segments = 200;  // even
  const double h = delta / segments;
  double numerator = 0.0, denominator = 0.0;
  for (int i = 0; i <= segments; ++i) {
    const double tau = h * i;
    const double lambda = mu * std::exp(-omega * tau);
    const double big_lambda = mu * survival_integral(omega, tau);
    const double density = lambda * std::exp(-big_lambda);
    const double w = (i == 0 || i == segments) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    numerator += w * tau * density;
    denominator += w * density;
  }
  if (denominator <= 1e-300) return delta;  // no mass: predict the horizon
  return numerator / denominator;
}

double TimingPredictor::predict_delay(std::span<const double> features,
                                      double open_duration) const {
  FORUMCAST_CHECK(fitted());
  if (open_duration <= 0.0) open_duration = mean_open_duration_;
  const auto x = scaler_.transform(features);
  const double mu = f_net_->forward(x)[0] + kMuFloor;
  const double omega =
      g_net_ ? g_net_->forward(x)[0] + kOmegaFloor
             : ml::softplus(omega_rho_) + kOmegaFloor;
  const double raw = raw_estimate(mu, omega, open_duration);
  return std::max(0.0, calibration_offset_ + calibration_slope_ * raw);
}

void TimingPredictor::predict_delay_batch(const ml::Matrix& rows,
                                          double open_duration,
                                          std::span<double> out) const {
  predict_delay_batch(rows.view(), open_duration, out);
}

void TimingPredictor::predict_delay_batch(ml::Tensor<const double> rows,
                                          double open_duration,
                                          std::span<double> out) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(out.size() == rows.rows());
  if (open_duration <= 0.0) open_duration = mean_open_duration_;
  // Scratch lives in the thread's workspace arena: transform_rows and
  // forward_batch_into overwrite every element they expose, so nothing
  // stale leaks through.
  ml::Workspace::Frame frame;
  ml::Workspace& ws = frame.workspace();
  ml::Tensor<double> scaled = ws.tensor<double>(rows.rows(), rows.cols());
  scaler_.transform_rows(rows, scaled);
  ml::Tensor<double> mu = ws.tensor<double>(rows.rows(), 1);
  ml::Tensor<double> omega = ws.tensor<double>(rows.rows(), 1);
  f_net_->forward_batch_into(scaled, mu);
  if (g_net_) g_net_->forward_batch_into(scaled, omega);
  const double constant_omega = ml::softplus(omega_rho_) + kOmegaFloor;
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const double omega_r = g_net_ ? omega(r, 0) + kOmegaFloor : constant_omega;
    const double raw = raw_estimate(mu(r, 0) + kMuFloor, omega_r, open_duration);
    out[r] = std::max(0.0, calibration_offset_ + calibration_slope_ * raw);
  }
}

void TimingPredictor::save(std::ostream& out) const {
  FORUMCAST_CHECK_MSG(fitted(), "cannot save an unfitted TimingPredictor");
  out.precision(17);
  out << "forumcast-timing 1\n";
  out << "expectation "
      << (config_.expectation ==
                  TimingPredictorConfig::Expectation::PaperUnnormalized
              ? "paper"
              : "conditional")
      << "\n";
  out << "calibration " << calibration_offset_ << ' ' << calibration_slope_
      << "\n";
  out << "mean_open " << mean_open_duration_ << "\n";
  out << "omega " << (g_net_ ? "learned" : "constant") << ' ' << omega_rho_
      << "\n";
  ml::save_scaler(scaler_, out);
  ml::save_mlp(*f_net_, out);
  if (g_net_) ml::save_mlp(*g_net_, out);
}

TimingPredictor TimingPredictor::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  FORUMCAST_CHECK_MSG(in.good() && magic == "forumcast-timing" && version == 1,
                      "bad TimingPredictor header");
  TimingPredictor predictor;
  std::string token, value;
  in >> token >> value;
  FORUMCAST_CHECK(token == "expectation");
  FORUMCAST_CHECK_MSG(value == "paper" || value == "conditional",
                      "unknown expectation '" << value << "'");
  predictor.config_.expectation =
      value == "paper" ? TimingPredictorConfig::Expectation::PaperUnnormalized
                       : TimingPredictorConfig::Expectation::ConditionalFirstEvent;
  in >> token >> predictor.calibration_offset_ >> predictor.calibration_slope_;
  FORUMCAST_CHECK(token == "calibration" && !in.fail());
  in >> token >> predictor.mean_open_duration_;
  FORUMCAST_CHECK(token == "mean_open" && !in.fail());
  std::string omega_kind;
  in >> token >> omega_kind >> predictor.omega_rho_;
  FORUMCAST_CHECK(token == "omega" && !in.fail());
  FORUMCAST_CHECK_MSG(omega_kind == "learned" || omega_kind == "constant",
                      "unknown omega kind '" << omega_kind << "'");
  predictor.config_.learn_omega = (omega_kind == "learned");
  predictor.scaler_ = ml::load_scaler(in);
  predictor.f_net_ = std::make_unique<ml::Mlp>(ml::load_mlp(in));
  if (predictor.config_.learn_omega) {
    predictor.g_net_ = std::make_unique<ml::Mlp>(ml::load_mlp(in));
  }
  predictor.fitted_ = true;
  return predictor;
}

void TimingPredictor::encode(artifact::Encoder& enc) const {
  FORUMCAST_CHECK_MSG(fitted(), "cannot encode an unfitted TimingPredictor");
  enc.boolean(config_.expectation ==
              TimingPredictorConfig::Expectation::PaperUnnormalized);
  enc.f64(calibration_offset_, "timing calibration offset");
  enc.f64(calibration_slope_, "timing calibration slope");
  enc.f64(mean_open_duration_, "timing mean open duration");
  enc.boolean(static_cast<bool>(g_net_));
  enc.f64(omega_rho_, "timing omega rho");
  ml::encode_scaler(scaler_, enc);
  ml::encode_mlp(*f_net_, enc);
  if (g_net_) ml::encode_mlp(*g_net_, enc);
}

TimingPredictor TimingPredictor::decode(artifact::Decoder& dec) {
  TimingPredictor predictor;
  predictor.config_.expectation =
      dec.boolean("timing expectation kind")
          ? TimingPredictorConfig::Expectation::PaperUnnormalized
          : TimingPredictorConfig::Expectation::ConditionalFirstEvent;
  predictor.calibration_offset_ = dec.f64("timing calibration offset");
  predictor.calibration_slope_ = dec.f64("timing calibration slope");
  predictor.mean_open_duration_ = dec.f64("timing mean open duration");
  predictor.config_.learn_omega = dec.boolean("timing omega kind");
  predictor.omega_rho_ = dec.f64("timing omega rho");
  predictor.scaler_ = ml::decode_scaler(dec);
  predictor.f_net_ = std::make_unique<ml::Mlp>(ml::decode_mlp(dec));
  if (predictor.config_.learn_omega) {
    predictor.g_net_ = std::make_unique<ml::Mlp>(ml::decode_mlp(dec));
  }
  predictor.fitted_ = true;
  return predictor;
}

double TimingPredictor::cumulative_intensity(std::span<const double> features,
                                             double horizon_hours) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(horizon_hours >= 0.0);
  const auto x = scaler_.transform(features);
  const double mu = f_net_->forward(x)[0] + kMuFloor;
  const double omega =
      g_net_ ? g_net_->forward(x)[0] + kOmegaFloor
             : ml::softplus(omega_rho_) + kOmegaFloor;
  return mu * survival_integral(omega, horizon_hours);
}

double TimingPredictor::probability_answer_within(
    std::span<const double> features, double horizon_hours) const {
  return 1.0 - std::exp(-cumulative_intensity(features, horizon_hours));
}

double TimingPredictor::excitation(std::span<const double> features) const {
  FORUMCAST_CHECK(fitted());
  return f_net_->forward(scaler_.transform(features))[0] + kMuFloor;
}

double TimingPredictor::decay(std::span<const double> features) const {
  FORUMCAST_CHECK(fitted());
  if (!g_net_) return ml::softplus(omega_rho_) + kOmegaFloor;
  return g_net_->forward(scaler_.transform(features))[0] + kOmegaFloor;
}

}  // namespace forumcast::core
