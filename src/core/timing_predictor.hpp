// Predictor for r_{u,q} — the response delay (Sec. II-A.3).
//
// Point process with rate λ_{u,q}(t) = μ_{u,q} e^{−ω_{u,q}(t − t_q)} where
// μ = f_Θ(x) and ω = g_Θ(x) (or a single learnable constant, the variant the
// paper found best on Stack Overflow). Trained by maximizing the thread
// log-likelihood
//
//   L_q = Σ_answers [log μ − ω·delay] − Σ_{u ∈ survival set} μ(1−e^{−ωΔ})/ω
//
// with gradients backpropagated through both networks and Adam updates.
// The survival term over *all* users is approximated by the answerers (exact)
// plus uniformly sampled non-answerers weighted up to population size — the
// standard importance-sampling treatment; exact summation is quadratic in
// |U|·|Q| feature evaluations.
//
// Two delay estimators are provided:
//  * PaperUnnormalized — eq. from Sec. II-A.3: r̂ = μ/ω²(1−e^{−ωΔ}(1+ωΔ));
//  * ConditionalFirstEvent — E[τ | first answer within Δ] under the same
//    rate, a normalized estimator that is usually better calibrated.
// An optional affine calibration (fit on training answers) maps the raw
// estimate onto the delay scale; both deviations are documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "artifact/artifact.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"

namespace forumcast::core {

struct TimingPredictorConfig {
  std::vector<std::size_t> f_hidden = {100, 50};  ///< excitation net (tanh)
  bool learn_omega = true;                        ///< g_Θ(x); false = constant ω
  std::vector<std::size_t> g_hidden = {100, 50};
  double constant_omega = 1.0;    ///< initial value (1/hours) when !learn_omega
  bool train_constant_omega = true;
  double learning_rate = 1e-3;
  std::size_t epochs = 60;
  std::size_t batch_threads = 8;
  std::uint64_t seed = 23;
  /// Training threads: >1 flattens each minibatch's event rows into one
  /// matrix and runs both rate networks as blocked-GEMM batch forwards and
  /// backwards (one forward per net per row instead of the serial loop's
  /// two), 1 = the per-sample serial loop. The gemm path visits rows in the
  /// serial order under the pinned fmadd contraction, so the fitted model is
  /// bit-equal either way — the knob only changes execution layout.
  std::size_t threads = 1;

  enum class Expectation { PaperUnnormalized, ConditionalFirstEvent };
  Expectation expectation = Expectation::ConditionalFirstEvent;
  bool calibrate = true;  ///< affine fit of r̂ → r on the training answers
};

/// One training thread: its answers plus a weighted survival sample.
struct TimingThread {
  double open_duration = 0.0;  ///< Δ_q = T − t(p_{q,0}) in hours

  struct Answer {
    std::vector<double> features;  ///< x_{u,q} for the answerer
    double delay = 0.0;            ///< observed r_{u,q}
  };
  std::vector<Answer> answers;

  struct SurvivalSample {
    std::vector<double> features;
    double weight = 1.0;  ///< importance weight toward Σ over all users
  };
  std::vector<SurvivalSample> survival;
};

class TimingPredictor {
 public:
  explicit TimingPredictor(TimingPredictorConfig config = {});

  void fit(std::span<const TimingThread> threads);

  /// Average per-thread log-likelihood of held-out threads under the fitted
  /// rate (same expression the MLE maximizes) — a calibration-free measure
  /// of model fit for ablations. Requires fit().
  double mean_log_likelihood(std::span<const TimingThread> threads) const;

  /// Predicted delay r̂ in hours for a pair with feature vector `features`
  /// whose question has been (or will be) open for `open_duration` hours.
  double predict_delay(std::span<const double> features,
                       double open_duration) const;

  /// Batched form over raw (unscaled) feature rows sharing one question (and
  /// hence one open duration); writes one delay per row. Both rate networks
  /// run as blocked-GEMM forwards; matches predict_delay() bit for bit.
  void predict_delay_batch(const ml::Matrix& rows, double open_duration,
                           std::span<double> out) const;
  void predict_delay_batch(ml::Tensor<const double> rows, double open_duration,
                           std::span<double> out) const;

  /// Rate parameters for a pair (diagnostics / tests).
  double excitation(std::span<const double> features) const;  ///< μ
  double decay(std::span<const double> features) const;       ///< ω

  /// Cumulative intensity Λ_{u,q}(Δ) = μ(1−e^{−ωΔ})/ω — the expected number
  /// of answers by this pair within the first Δ hours. Summed over a
  /// candidate pool it predicts a thread's answer count (extension).
  double cumulative_intensity(std::span<const double> features,
                              double horizon_hours) const;

  /// P(the pair produces at least one answer within Δ) = 1 − e^{−Λ(Δ)} —
  /// the "will this be answered within a day?" product question.
  double probability_answer_within(std::span<const double> features,
                                   double horizon_hours) const;

  bool fitted() const { return fitted_; }

  /// Persistence: scaler, f/g networks (or the constant-ω parameter), the
  /// estimator choice, calibration, and the mean open duration.
  void save(std::ostream& out) const;
  static TimingPredictor load(std::istream& in);

  /// Model-bundle codec covering the full point-process parametrization
  /// (μ via f_Θ, ω via g_Θ or the constant-ω ρ); bit-identical predictions.
  void encode(artifact::Encoder& enc) const;
  static TimingPredictor decode(artifact::Decoder& dec);

 private:
  double raw_estimate(double mu, double omega, double open_duration) const;

  TimingPredictorConfig config_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::Mlp> f_net_;
  std::unique_ptr<ml::Mlp> g_net_;
  double omega_rho_ = 0.0;  ///< constant-ω parametrization: ω = softplus(ρ)+1e-4
  double calibration_offset_ = 0.0;
  double calibration_slope_ = 1.0;
  double mean_open_duration_ = 0.0;
  bool fitted_ = false;
};

}  // namespace forumcast::core
