#include "core/vote_predictor.hpp"

#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "ml/adam.hpp"
#include "ml/serialize.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace forumcast::core {

VotePredictor::VotePredictor(VotePredictorConfig config)
    : config_(std::move(config)) {
  FORUMCAST_CHECK(!config_.hidden_units.empty());
}

std::vector<ml::LayerSpec> VotePredictor::layer_specs(std::size_t) const {
  std::vector<ml::LayerSpec> specs;
  for (std::size_t units : config_.hidden_units) {
    specs.push_back({units, config_.hidden_activation});
  }
  specs.push_back({1, ml::Activation::Identity});
  return specs;
}

void VotePredictor::fit(std::span<const std::vector<double>> rows,
                        std::span<const double> targets) {
  FORUMCAST_CHECK(!rows.empty());
  FORUMCAST_CHECK(rows.size() == targets.size());
  FORUMCAST_SPAN_NAMED(fit_span, "vote.fit");

  scaler_.fit(rows);
  std::vector<std::vector<double>> scaled(rows.begin(), rows.end());
  scaler_.transform_in_place(scaled);

  if (config_.standardize_targets) {
    target_mean_ = util::mean(targets);
    target_scale_ = util::stddev(targets);
    if (target_scale_ < 1e-9) target_scale_ = 1.0;
  } else {
    target_mean_ = 0.0;
    target_scale_ = 1.0;
  }

  const std::size_t dim = rows.front().size();
  network_ = std::make_unique<ml::Mlp>(dim, layer_specs(dim), config_.seed);
  ml::Adam adam(network_->param_count(),
                {.learning_rate = config_.learning_rate,
                 .weight_decay = config_.weight_decay});

  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Rng rng(config_.seed ^ 0xabcdefULL);

  ml::Mlp::Tape tape;
  ml::Matrix xbatch;
  const bool batched = config_.threads > 1;
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    FORUMCAST_SPAN("vote.epoch");
    double epoch_loss = 0.0;
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      network_->zero_grad();
      if (!batched) {
        for (std::size_t k = start; k < end; ++k) {
          const std::size_t idx = order[k];
          const auto output = network_->forward(scaled[idx], tape);
          const double standardized_target =
              (targets[idx] - target_mean_) / target_scale_;
          const double residual = output[0] - standardized_target;
          epoch_loss += 0.5 * residual * residual;
          // d/dŷ of ½(ŷ − y)², averaged over the batch.
          const double grad = residual / static_cast<double>(end - start);
          network_->backward(tape, std::vector<double>{grad});
        }
      } else {
        // Same samples, same order, one gemm-backed step for the whole
        // minibatch; gradients and loss match the serial loop bit for bit.
        xbatch.resize(end - start, dim);
        for (std::size_t k = start; k < end; ++k) {
          const auto& src = scaled[order[k]];
          std::copy(src.begin(), src.end(), xbatch.row(k - start).begin());
        }
        network_->train_batch(
            xbatch, [&](ml::Tensor<const double> outputs,
                        ml::Tensor<double> grad_output) {
              for (std::size_t b = 0; b < outputs.rows(); ++b) {
                const std::size_t idx = order[start + b];
                const double standardized_target =
                    (targets[idx] - target_mean_) / target_scale_;
                const double residual = outputs(b, 0) - standardized_target;
                epoch_loss += 0.5 * residual * residual;
                grad_output(b, 0) =
                    residual / static_cast<double>(end - start);
              }
            });
      }
      adam.step(network_->params(), network_->grads());
    }
    FORUMCAST_GAUGE_SET("vote.train_loss",
                        epoch_loss / static_cast<double>(rows.size()));
  }
  if (fit_span.active()) {
    fit_span.arg("rows", static_cast<double>(rows.size()));
    fit_span.arg("epochs", static_cast<double>(config_.epochs));
  }
  fitted_ = true;

  if (config_.quantize) {
    // Calibrate bias correction on the scaled training rows — the exact
    // input distribution inference will see.
    ml::Matrix calibration(scaled.size(), dim);
    for (std::size_t r = 0; r < scaled.size(); ++r) {
      std::copy(scaled[r].begin(), scaled[r].end(),
                calibration.row(r).begin());
    }
    quantized_ = std::make_unique<ml::QuantizedMlp>(
        ml::QuantizedMlp::from(*network_, calibration));
  }
}

void VotePredictor::quantize_from_master() {
  FORUMCAST_CHECK_MSG(fitted(), "cannot quantize an unfitted VotePredictor");
  quantized_ = std::make_unique<ml::QuantizedMlp>(
      ml::QuantizedMlp::from(*network_));
}

void VotePredictor::install_quantized(ml::QuantizedMlp net) {
  FORUMCAST_CHECK_MSG(fitted(), "cannot install on an unfitted VotePredictor");
  FORUMCAST_CHECK_MSG(net.input_dim() == network_->input_dim() &&
                          net.output_dim() == network_->output_dim(),
                      "quantized network shape mismatch");
  quantized_ = std::make_unique<ml::QuantizedMlp>(std::move(net));
}

double VotePredictor::predict(std::span<const double> features) const {
  FORUMCAST_CHECK(fitted());
  const std::vector<double> scaled = scaler_.transform(features);
  const auto output =
      quantized_ ? quantized_->forward(scaled) : network_->forward(scaled);
  return output[0] * target_scale_ + target_mean_;
}

void VotePredictor::predict_batch(const ml::Matrix& rows,
                                  std::span<double> out) const {
  predict_batch(rows.view(), out);
}

void VotePredictor::predict_batch(ml::Tensor<const double> rows,
                                  std::span<double> out) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(out.size() == rows.rows());
  // Scratch lives in the thread's workspace arena: transform_rows and
  // forward_batch_into overwrite every element they expose, so nothing
  // stale leaks through.
  ml::Workspace::Frame frame;
  ml::Workspace& ws = frame.workspace();
  ml::Tensor<double> scaled = ws.tensor<double>(rows.rows(), rows.cols());
  scaler_.transform_rows(rows, scaled);
  ml::Tensor<double> output = ws.tensor<double>(rows.rows(), 1);
  if (quantized_) {
    quantized_->forward_batch_into(scaled, output);
  } else {
    network_->forward_batch_into(scaled, output);
  }
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    out[r] = output(r, 0) * target_scale_ + target_mean_;
  }
}

void VotePredictor::save(std::ostream& out) const {
  FORUMCAST_CHECK_MSG(fitted(), "cannot save an unfitted VotePredictor");
  out.precision(17);
  out << "forumcast-vote 1\n";
  out << "target " << target_mean_ << ' ' << target_scale_ << "\n";
  ml::save_scaler(scaler_, out);
  ml::save_mlp(*network_, out);
}

VotePredictor VotePredictor::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  FORUMCAST_CHECK_MSG(in.good() && magic == "forumcast-vote" && version == 1,
                      "bad VotePredictor header");
  std::string token;
  in >> token;
  FORUMCAST_CHECK(token == "target");
  VotePredictor predictor;
  in >> predictor.target_mean_ >> predictor.target_scale_;
  FORUMCAST_CHECK_MSG(!in.fail(), "bad VotePredictor target transform");
  FORUMCAST_CHECK(predictor.target_scale_ > 0.0);
  predictor.scaler_ = ml::load_scaler(in);
  predictor.network_ = std::make_unique<ml::Mlp>(ml::load_mlp(in));
  predictor.fitted_ = true;
  return predictor;
}

void VotePredictor::encode(artifact::Encoder& enc) const {
  FORUMCAST_CHECK_MSG(fitted(), "cannot encode an unfitted VotePredictor");
  enc.f64(target_mean_, "vote target mean");
  enc.f64(target_scale_, "vote target scale");
  ml::encode_scaler(scaler_, enc);
  ml::encode_mlp(*network_, enc);
}

VotePredictor VotePredictor::decode(artifact::Decoder& dec) {
  VotePredictor predictor;
  predictor.target_mean_ = dec.f64("vote target mean");
  predictor.target_scale_ = dec.f64("vote target scale");
  FORUMCAST_CHECK_MSG(predictor.target_scale_ > 0.0,
                      "vote target scale must be positive");
  predictor.scaler_ = ml::decode_scaler(dec);
  predictor.network_ = std::make_unique<ml::Mlp>(ml::decode_mlp(dec));
  predictor.fitted_ = true;
  return predictor;
}

}  // namespace forumcast::core
