// Predictor for v_{u,q} — net votes on u's answer to q (Sec. II-A.2).
//
// Fully-connected network per paper eq. (1): default L = 4 with 20 ReLU
// units per hidden layer. One deviation, documented in DESIGN.md: the output
// layer is linear rather than σ, because net votes are signed integers and a
// ReLU/tanh output could not represent the data's negative votes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "artifact/artifact.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/quant.hpp"
#include "ml/scaler.hpp"

namespace forumcast::core {

struct VotePredictorConfig {
  std::vector<std::size_t> hidden_units = {20, 20, 20};  ///< L = 4 total layers
  ml::Activation hidden_activation = ml::Activation::ReLU;
  double learning_rate = 1e-3;
  double weight_decay = 1e-4;
  std::size_t epochs = 150;
  std::size_t batch_size = 32;
  std::uint64_t seed = 17;
  /// Targets are standardized internally; predictions are de-standardized.
  bool standardize_targets = true;
  /// Training threads: >1 routes every minibatch through Mlp::train_batch
  /// (blocked-GEMM forward and backward), 1 = the per-sample serial loop.
  /// The gemm path accumulates gradients in sample order under the pinned
  /// fmadd contraction, so the fitted model is bit-equal either way — the
  /// knob only changes execution layout.
  std::size_t threads = 1;
  /// Opt-in int8 inference: after fit, derive an int8 network calibrated on
  /// the scaled training rows and route predict()/predict_batch() through
  /// it. The fp32 master weights stay canonical and are what persistence
  /// saves; the quantized net travels alongside (or is regenerated at load).
  bool quantize = false;
};

class VotePredictor {
 public:
  explicit VotePredictor(VotePredictorConfig config = {});

  /// Trains with minibatch Adam on mean squared error.
  void fit(std::span<const std::vector<double>> rows,
           std::span<const double> targets);

  double predict(std::span<const double> features) const;

  /// Batched form over raw (unscaled) feature rows; writes one estimate per
  /// row. One blocked-GEMM forward pass; matches predict() bit for bit.
  void predict_batch(const ml::Matrix& rows, std::span<double> out) const;
  void predict_batch(ml::Tensor<const double> rows, std::span<double> out) const;

  bool fitted() const { return fitted_; }

  /// True when inference routes through the int8 network.
  bool quantized() const { return quantized_ != nullptr; }

  /// Derives the int8 network from the fp32 master weights with zero bias
  /// correction (the load-time regeneration path — no calibration data).
  void quantize_from_master();

  /// The active int8 network, or nullptr on the fp32 path (bundle codec).
  const ml::QuantizedMlp* quantized_net() const { return quantized_.get(); }
  /// Installs a decoded int8 network (bundle load).
  void install_quantized(ml::QuantizedMlp net);

  /// Persistence: scaler, network, and the target de-standardization.
  void save(std::ostream& out) const;
  static VotePredictor load(std::istream& in);

  /// Model-bundle codec; a decoded predictor is bit-identical in prediction.
  void encode(artifact::Encoder& enc) const;
  static VotePredictor decode(artifact::Decoder& dec);

 private:
  VotePredictorConfig config_;
  ml::StandardScaler scaler_;
  std::vector<ml::LayerSpec> layer_specs(std::size_t) const;
  std::unique_ptr<ml::Mlp> network_;
  std::unique_ptr<ml::QuantizedMlp> quantized_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
  bool fitted_ = false;
};

}  // namespace forumcast::core
