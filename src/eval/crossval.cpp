#include "eval/crossval.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::eval {

std::vector<Split> stratified_kfold(std::span<const forum::AnsweredPair> pairs,
                                    std::size_t folds, std::size_t repeats,
                                    std::uint64_t seed) {
  FORUMCAST_CHECK(folds >= 2);
  FORUMCAST_CHECK(repeats >= 1);
  FORUMCAST_CHECK_MSG(pairs.size() >= folds, "need at least one pair per fold");

  // Group pair indices by user once.
  std::unordered_map<forum::UserId, std::vector<std::size_t>> by_user;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    by_user[pairs[i].user].push_back(i);
  }
  // Deterministic iteration order for reproducibility.
  std::vector<forum::UserId> users;
  users.reserve(by_user.size());
  for (const auto& [user, indices] : by_user) users.push_back(user);
  std::sort(users.begin(), users.end());

  util::Rng rng(seed);
  std::vector<Split> splits;
  splits.reserve(folds * repeats);

  for (std::size_t rep = 0; rep < repeats; ++rep) {
    std::vector<std::vector<std::size_t>> fold_members(folds);
    // Rotate each user's shuffled pairs across folds starting at a random
    // offset, so every fold gets ⌊n/k⌋ or ⌈n/k⌉ of that user's pairs.
    for (forum::UserId user : users) {
      std::vector<std::size_t> indices = by_user[user];
      rng.shuffle(indices);
      const std::size_t start = rng.uniform_index(folds);
      for (std::size_t i = 0; i < indices.size(); ++i) {
        fold_members[(start + i) % folds].push_back(indices[i]);
      }
    }
    for (std::size_t fold = 0; fold < folds; ++fold) {
      Split split;
      split.test_indices = fold_members[fold];
      for (std::size_t other = 0; other < folds; ++other) {
        if (other == fold) continue;
        split.train_indices.insert(split.train_indices.end(),
                                   fold_members[other].begin(),
                                   fold_members[other].end());
      }
      FORUMCAST_CHECK(!split.train_indices.empty());
      splits.push_back(std::move(split));
    }
  }
  return splits;
}

}  // namespace forumcast::eval
