// Stratified k-fold cross validation over answered (u, q) pairs (Sec. IV-A).
//
// Pairs are stratified by user: each user's positives are spread as evenly as
// possible across folds, so heavy answerers cannot dominate a single fold.
// The whole procedure is repeated `repeats` times with fresh shuffles for the
// paper's 5 × 5-fold = 25 iterations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "forum/dataset.hpp"

namespace forumcast::eval {

struct Split {
  std::vector<std::size_t> train_indices;  ///< indices into the pair array
  std::vector<std::size_t> test_indices;
};

/// All (repeat, fold) splits: repeats × k entries, in repeat-major order.
std::vector<Split> stratified_kfold(std::span<const forum::AnsweredPair> pairs,
                                    std::size_t folds, std::size_t repeats,
                                    std::uint64_t seed);

}  // namespace forumcast::eval
