#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace forumcast::eval {

double auc(std::span<const double> scores, std::span<const int> labels) {
  FORUMCAST_CHECK(scores.size() == labels.size());
  FORUMCAST_CHECK(!scores.empty());
  std::size_t positives = 0;
  for (int label : labels) {
    FORUMCAST_CHECK(label == 0 || label == 1);
    positives += static_cast<std::size_t>(label);
  }
  const std::size_t negatives = labels.size() - positives;
  FORUMCAST_CHECK_MSG(positives > 0 && negatives > 0,
                      "AUC needs both classes present");

  // Average ranks (ties share the mean rank), then the Mann–Whitney statistic.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) positive_rank_sum += avg_rank;
    }
    i = j + 1;
  }
  const double np = static_cast<double>(positives);
  const double nn = static_cast<double>(negatives);
  return (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

double rmse(std::span<const double> predictions, std::span<const double> targets) {
  FORUMCAST_CHECK(predictions.size() == targets.size());
  FORUMCAST_CHECK(!predictions.empty());
  double accum = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double diff = predictions[i] - targets[i];
    accum += diff * diff;
  }
  return std::sqrt(accum / static_cast<double>(predictions.size()));
}

double mae(std::span<const double> predictions, std::span<const double> targets) {
  FORUMCAST_CHECK(predictions.size() == targets.size());
  FORUMCAST_CHECK(!predictions.empty());
  double accum = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    accum += std::abs(predictions[i] - targets[i]);
  }
  return accum / static_cast<double>(predictions.size());
}

double improvement_percent(double baseline, double ours, bool higher_is_better) {
  FORUMCAST_CHECK(baseline != 0.0);
  const double delta = higher_is_better ? ours - baseline : baseline - ours;
  return 100.0 * delta / std::abs(baseline);
}

}  // namespace forumcast::eval
