// Evaluation metrics of Sec. IV-A: AUC for the binary answering task and
// RMSE for the net-vote and response-time tasks.
#pragma once

#include <span>

namespace forumcast::eval {

/// Area under the ROC curve via the rank statistic (tie-aware):
/// AUC = (Σ ranks of positives − n₊(n₊+1)/2) / (n₊ n₋).
/// Requires at least one positive and one negative label.
double auc(std::span<const double> scores, std::span<const int> labels);

/// Root mean squared error; spans must be the same non-zero length.
double rmse(std::span<const double> predictions, std::span<const double> targets);

/// Mean absolute error.
double mae(std::span<const double> predictions, std::span<const double> targets);

/// Relative improvement of `ours` over `baseline` in percent, oriented so
/// positive = better: for error metrics (RMSE) pass higher_is_better=false,
/// for AUC pass true.
double improvement_percent(double baseline, double ours, bool higher_is_better);

}  // namespace forumcast::eval
