#include "eval/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace forumcast::eval {

namespace {
std::vector<std::size_t> ranking_order(std::span<const double> scores,
                                       std::span<const int> labels) {
  FORUMCAST_CHECK(scores.size() == labels.size());
  FORUMCAST_CHECK(!scores.empty());
  for (int label : labels) FORUMCAST_CHECK(label == 0 || label == 1);
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}
}  // namespace

double precision_at_k(std::span<const double> scores,
                      std::span<const int> labels, std::size_t k) {
  FORUMCAST_CHECK(k >= 1);
  const auto order = ranking_order(scores, labels);
  const std::size_t depth = std::min(k, order.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i) hits += labels[order[i]];
  return static_cast<double>(hits) / static_cast<double>(depth);
}

double recall_at_k(std::span<const double> scores, std::span<const int> labels,
                   std::size_t k) {
  FORUMCAST_CHECK(k >= 1);
  const auto order = ranking_order(scores, labels);
  const std::size_t relevant = static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), 1));
  if (relevant == 0) return 0.0;
  const std::size_t depth = std::min(k, order.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i) hits += labels[order[i]];
  return static_cast<double>(hits) / static_cast<double>(relevant);
}

double reciprocal_rank(std::span<const double> scores,
                       std::span<const int> labels) {
  const auto order = ranking_order(scores, labels);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]] == 1) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

double ndcg_at_k(std::span<const double> scores, std::span<const int> labels,
                 std::size_t k) {
  FORUMCAST_CHECK(k >= 1);
  const auto order = ranking_order(scores, labels);
  const std::size_t depth = std::min(k, order.size());
  double dcg = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    if (labels[order[i]] == 1) dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  const std::size_t relevant = static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), 1));
  if (relevant == 0) return 0.0;
  double ideal = 0.0;
  for (std::size_t i = 0; i < std::min(relevant, depth); ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return dcg / ideal;
}

}  // namespace forumcast::eval
