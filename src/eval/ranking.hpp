// Ranking metrics for the question-routing view of the answer task.
//
// The recommender consumes the predictors as a *ranking* over candidate
// answerers per question, so besides the paper's pairwise AUC we evaluate
// precision@k / recall@k / MRR / nDCG of the induced rankings. These power
// the extension bench `bench/ranking`.
#pragma once

#include <cstddef>
#include <span>

namespace forumcast::eval {

/// Fraction of the top-k scored items that are relevant (labels 0/1, aligned
/// with scores; ties broken by original order). Requires k >= 1 and at least
/// one item.
double precision_at_k(std::span<const double> scores,
                      std::span<const int> labels, std::size_t k);

/// Fraction of all relevant items that appear in the top k. 0 if there are
/// no relevant items.
double recall_at_k(std::span<const double> scores, std::span<const int> labels,
                   std::size_t k);

/// Reciprocal rank of the first relevant item; 0 if none.
double reciprocal_rank(std::span<const double> scores,
                       std::span<const int> labels);

/// Normalized discounted cumulative gain at k with binary relevance.
/// 1.0 when all relevant items are ranked first; 0 when none are relevant.
double ndcg_at_k(std::span<const double> scores, std::span<const int> labels,
                 std::size_t k);

}  // namespace forumcast::eval
