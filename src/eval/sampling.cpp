#include "eval/sampling.hpp"

#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::eval {

std::vector<NegativePair> sample_negative_pairs(
    const forum::Dataset& dataset, std::span<const forum::QuestionId> questions,
    std::size_t count, std::uint64_t seed) {
  FORUMCAST_CHECK(!questions.empty());
  FORUMCAST_CHECK(dataset.num_users() > 2);

  util::Rng rng(seed);
  std::vector<NegativePair> negatives;
  negatives.reserve(count);
  std::unordered_set<forum::UserId> excluded;

  for (std::size_t i = 0; i < count; ++i) {
    // Spread equally across questions: round-robin with a shuffled phase.
    const forum::QuestionId q =
        questions[(i + rng.uniform_index(questions.size())) % questions.size()];
    const forum::Thread& thread = dataset.thread(q);
    excluded.clear();
    excluded.insert(thread.question.creator);
    for (const auto& answer : thread.answers) excluded.insert(answer.creator);
    if (excluded.size() >= dataset.num_users()) continue;  // no negative user exists
    for (;;) {
      const auto u = static_cast<forum::UserId>(
          rng.uniform_index(dataset.num_users()));
      if (!excluded.contains(u)) {
        negatives.push_back({u, q});
        break;
      }
    }
  }
  return negatives;
}

}  // namespace forumcast::eval
