// Negative sampling for the binary answering task (Sec. IV-A).
//
// The answering matrix is ~0.03 % dense, so negatives (a_{u,q} = 0) are
// sampled: `count` pairs spread equally across the questions of Ω, with the
// user drawn uniformly among users who did not answer (and did not ask) that
// question.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "forum/dataset.hpp"

namespace forumcast::eval {

struct NegativePair {
  forum::UserId user = 0;
  forum::QuestionId question = 0;
};

std::vector<NegativePair> sample_negative_pairs(
    const forum::Dataset& dataset, std::span<const forum::QuestionId> questions,
    std::size_t count, std::uint64_t seed);

}  // namespace forumcast::eval
