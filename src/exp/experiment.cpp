#include "exp/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/pipeline.hpp"
#include "eval/crossval.hpp"
#include "eval/metrics.hpp"
#include "eval/sampling.hpp"
#include "ml/scaler.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace forumcast::exp {

double TaskMetrics::mean() const { return util::mean(per_iteration); }
double TaskMetrics::stddev() const { return util::stddev(per_iteration); }

// ---------------- ExperimentContext ----------------

ExperimentContext::ExperimentContext(const forum::Dataset& dataset,
                                     std::vector<forum::QuestionId> omega,
                                     std::vector<forum::QuestionId> inference,
                                     features::ExtractorConfig config)
    : dataset_(&dataset), omega_(std::move(omega)) {
  FORUMCAST_CHECK(!omega_.empty());
  FORUMCAST_CHECK(!inference.empty());
  extractor_ = std::make_unique<features::FeatureExtractor>(dataset, inference,
                                                            config);
  positives_ = dataset.answered_pairs(omega_);
  FORUMCAST_CHECK_MSG(!positives_.empty(), "Ω contains no answered pairs");
  positive_features_.reserve(positives_.size());
  for (const auto& pair : positives_) {
    positive_features_.push_back(extractor_->features(pair.user, pair.question));
  }
  last_post_time_ = dataset.last_post_time();
}

std::vector<double> ExperimentContext::features(forum::UserId u,
                                                forum::QuestionId q) const {
  return extractor_->features(u, q);
}

// ---------------- BlockedExperimentContext ----------------

BlockedExperimentContext::BlockedExperimentContext(
    const forum::Dataset& dataset, std::vector<forum::QuestionId> omega,
    int block_days, features::ExtractorConfig config)
    : dataset_(&dataset), omega_(std::move(omega)) {
  FORUMCAST_CHECK(!omega_.empty());
  FORUMCAST_CHECK(block_days >= 1);

  // Partition the timeline into blocks.
  const double horizon = dataset.last_post_time();
  const double block_hours = static_cast<double>(block_days) * 24.0;
  const auto num_blocks =
      static_cast<std::size_t>(std::floor(horizon / block_hours)) + 1;

  block_of_question_.assign(dataset.num_questions(), 0);
  for (forum::QuestionId q = 0; q < dataset.num_questions(); ++q) {
    const double t = dataset.thread(q).question.timestamp_hours;
    block_of_question_[q] = std::min(
        num_blocks - 1, static_cast<std::size_t>(std::floor(t / block_hours)));
  }

  // One extractor per block over all strictly earlier questions.
  extractors_.resize(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::vector<forum::QuestionId> window;
    for (forum::QuestionId q = 0; q < dataset.num_questions(); ++q) {
      if (block_of_question_[q] < b) window.push_back(q);
    }
    if (window.empty()) {
      // Cold start: the first block sees only itself.
      for (forum::QuestionId q = 0; q < dataset.num_questions(); ++q) {
        if (block_of_question_[q] == b) window.push_back(q);
      }
    }
    if (window.empty()) continue;  // no questions at all in this time range
    extractors_[b] = std::make_unique<features::FeatureExtractor>(
        dataset, window, config);
  }

  positives_ = dataset.answered_pairs(omega_);
  FORUMCAST_CHECK_MSG(!positives_.empty(), "Ω contains no answered pairs");
  positive_features_.reserve(positives_.size());
  for (const auto& pair : positives_) {
    positive_features_.push_back(features(pair.user, pair.question));
  }
  last_post_time_ = horizon;
}

std::vector<double> BlockedExperimentContext::features(
    forum::UserId u, forum::QuestionId q) const {
  FORUMCAST_CHECK(q < block_of_question_.size());
  const std::size_t block = block_of_question_[q];
  FORUMCAST_CHECK_MSG(extractors_[block] != nullptr,
                      "no extractor for block " << block);
  return extractors_[block]->features(u, q);
}

// ---------------- run_tasks ----------------

TaskSetup fast_task_setup() {
  TaskSetup setup;
  setup.answer.logistic.epochs = 80;
  setup.vote.epochs = 60;
  setup.timing.epochs = 15;
  setup.timing.f_hidden = {32, 16};
  setup.timing.g_hidden = {32, 16};
  setup.survival_samples_per_thread = 8;
  setup.sparfa.epochs = 40;
  setup.mf.epochs = 40;
  setup.poisson.epochs = 80;
  return setup;
}

namespace {

std::vector<double> project(const std::vector<double>& full,
                            const std::vector<std::size_t>& columns) {
  if (columns.empty()) return full;
  return features::FeatureLayout::project(full, columns);
}

// Dense question-id remapping for the matrix baselines (SPARFA / MF index
// questions over Ω only).
std::unordered_map<forum::QuestionId, std::size_t> question_index(
    std::span<const forum::QuestionId> omega) {
  std::unordered_map<forum::QuestionId, std::size_t> index;
  for (std::size_t i = 0; i < omega.size(); ++i) index.emplace(omega[i], i);
  return index;
}

}  // namespace

ExperimentResult run_tasks(const PairFeatureSource& source,
                           const TaskSetup& setup) {
  ExperimentResult result;
  const auto positives = source.positives();
  const auto cached = source.positive_features();
  const auto& dataset = source.dataset();
  const auto q_index = question_index(source.omega());

  const auto splits =
      eval::stratified_kfold(positives, setup.folds, setup.repeats, setup.seed);

  for (std::size_t iteration = 0; iteration < splits.size(); ++iteration) {
    const eval::Split& split = splits[iteration];
    const std::uint64_t iter_seed = setup.seed * 6364136223846793005ULL +
                                    iteration * 1442695040888963407ULL + 1;

    // ----- Task a_{u,q}: logistic regression vs SPARFA -----
    if (setup.run_answer) {
      // One pool of negatives, split train/test with the same proportions.
      const std::size_t pool_size = positives.size();
      const auto pool = eval::sample_negative_pairs(dataset, source.omega(),
                                                    pool_size, iter_seed);
      const std::size_t train_negatives =
          pool.size() * split.train_indices.size() / positives.size();

      std::vector<std::vector<double>> train_rows;
      std::vector<int> train_labels;
      for (std::size_t idx : split.train_indices) {
        train_rows.push_back(project(cached[idx], setup.feature_columns));
        train_labels.push_back(1);
      }
      for (std::size_t i = 0; i < train_negatives && i < pool.size(); ++i) {
        train_rows.push_back(project(
            source.features(pool[i].user, pool[i].question),
            setup.feature_columns));
        train_labels.push_back(0);
      }

      core::AnswerPredictor model(setup.answer);
      model.fit(train_rows, train_labels);

      std::vector<double> scores;
      std::vector<int> labels;
      for (std::size_t idx : split.test_indices) {
        scores.push_back(model.predict_probability(
            project(cached[idx], setup.feature_columns)));
        labels.push_back(1);
      }
      for (std::size_t i = train_negatives; i < pool.size(); ++i) {
        scores.push_back(model.predict_probability(project(
            source.features(pool[i].user, pool[i].question),
            setup.feature_columns)));
        labels.push_back(0);
      }
      result.answer_auc.per_iteration.push_back(eval::auc(scores, labels));

      if (setup.run_baselines) {
        std::vector<ml::BinaryObservation> observations;
        for (std::size_t idx : split.train_indices) {
          observations.push_back({positives[idx].user,
                                  q_index.at(positives[idx].question), 1});
        }
        for (std::size_t i = 0; i < train_negatives && i < pool.size(); ++i) {
          observations.push_back(
              {pool[i].user, q_index.at(pool[i].question), 0});
        }
        ml::SparfaConfig sparfa_config = setup.sparfa;
        sparfa_config.seed = iter_seed ^ 0xa5a5ULL;
        ml::Sparfa sparfa(sparfa_config);
        sparfa.fit(observations, dataset.num_users(), source.omega().size());

        std::vector<double> base_scores;
        std::vector<int> base_labels;
        for (std::size_t idx : split.test_indices) {
          base_scores.push_back(sparfa.predict_probability(
              positives[idx].user, q_index.at(positives[idx].question)));
          base_labels.push_back(1);
        }
        for (std::size_t i = train_negatives; i < pool.size(); ++i) {
          base_scores.push_back(sparfa.predict_probability(
              pool[i].user, q_index.at(pool[i].question)));
          base_labels.push_back(0);
        }
        result.answer_auc_baseline.per_iteration.push_back(
            eval::auc(base_scores, base_labels));
      }
    }

    // ----- Task v_{u,q}: neural network vs MF -----
    if (setup.run_votes) {
      std::vector<std::vector<double>> train_rows;
      std::vector<double> train_targets;
      for (std::size_t idx : split.train_indices) {
        train_rows.push_back(project(cached[idx], setup.feature_columns));
        train_targets.push_back(static_cast<double>(positives[idx].votes));
      }
      core::VotePredictorConfig vote_config = setup.vote;
      vote_config.seed = iter_seed ^ 0x17ULL;
      core::VotePredictor model(vote_config);
      model.fit(train_rows, train_targets);

      std::vector<double> predictions, targets;
      for (std::size_t idx : split.test_indices) {
        predictions.push_back(
            model.predict(project(cached[idx], setup.feature_columns)));
        targets.push_back(static_cast<double>(positives[idx].votes));
      }
      result.vote_rmse.per_iteration.push_back(eval::rmse(predictions, targets));

      if (setup.run_baselines) {
        std::vector<ml::Rating> ratings;
        for (std::size_t idx : split.train_indices) {
          ratings.push_back({positives[idx].user,
                             q_index.at(positives[idx].question),
                             static_cast<double>(positives[idx].votes)});
        }
        ml::MatrixFactorizationConfig mf_config = setup.mf;
        mf_config.seed = iter_seed ^ 0x2bULL;
        ml::MatrixFactorization mf(mf_config);
        mf.fit(ratings, dataset.num_users(), source.omega().size());
        std::vector<double> base_predictions;
        for (std::size_t idx : split.test_indices) {
          base_predictions.push_back(mf.predict(
              positives[idx].user, q_index.at(positives[idx].question)));
        }
        result.vote_rmse_baseline.per_iteration.push_back(
            eval::rmse(base_predictions, targets));
      }
    }

    // ----- Task r_{u,q}: point process vs Poisson regression -----
    if (setup.run_timing) {
      std::vector<forum::AnsweredPair> train_pairs;
      for (std::size_t idx : split.train_indices) {
        train_pairs.push_back(positives[idx]);
      }
      auto threads = core::build_timing_threads(
          dataset,
          core::FeatureFn([&source](forum::UserId u, forum::QuestionId q) {
            return source.features(u, q);
          }),
          train_pairs, source.last_post_time(),
          setup.survival_samples_per_thread, iter_seed ^ 0x99ULL);
      if (!setup.feature_columns.empty()) {
        for (auto& thread : threads) {
          for (auto& answer : thread.answers) {
            answer.features = project(answer.features, setup.feature_columns);
          }
          for (auto& sample : thread.survival) {
            sample.features = project(sample.features, setup.feature_columns);
          }
        }
      }
      core::TimingPredictorConfig timing_config = setup.timing;
      timing_config.seed = iter_seed ^ 0x31ULL;
      core::TimingPredictor model(timing_config);
      model.fit(threads);

      std::vector<double> predictions, targets;
      for (std::size_t idx : split.test_indices) {
        const double open_duration =
            std::max(1e-3, source.last_post_time() -
                               dataset.thread(positives[idx].question)
                                   .question.timestamp_hours);
        predictions.push_back(model.predict_delay(
            project(cached[idx], setup.feature_columns), open_duration));
        targets.push_back(positives[idx].delay_hours);
      }
      result.timing_rmse.per_iteration.push_back(
          eval::rmse(predictions, targets));

      if (setup.run_baselines) {
        // Poisson regression on ⌈r⌉ with standardized features (Sec. IV-A).
        std::vector<std::vector<double>> train_rows;
        std::vector<double> train_targets;
        for (std::size_t idx : split.train_indices) {
          train_rows.push_back(project(cached[idx], setup.feature_columns));
          train_targets.push_back(std::ceil(positives[idx].delay_hours));
        }
        ml::StandardScaler scaler;
        scaler.fit(train_rows);
        scaler.transform_in_place(train_rows);
        ml::PoissonRegressionConfig pr_config = setup.poisson;
        pr_config.seed = iter_seed ^ 0x47ULL;
        ml::PoissonRegression baseline(pr_config);
        baseline.fit(train_rows, train_targets);
        std::vector<double> base_predictions;
        for (std::size_t idx : split.test_indices) {
          base_predictions.push_back(baseline.predict_mean(scaler.transform(
              project(cached[idx], setup.feature_columns))));
        }
        result.timing_rmse_baseline.per_iteration.push_back(
            eval::rmse(base_predictions, targets));
      }
    }

    FORUMCAST_LOG_DEBUG << "iteration " << (iteration + 1) << "/"
                        << splits.size() << " complete";
  }
  return result;
}

}  // namespace forumcast::exp
