// The evaluation protocol of Sec. IV, reusable across every table/figure.
//
// A PairFeatureSource supplies the answered pairs of the evaluation partition
// Ω with their feature vectors, plus on-demand features for arbitrary pairs
// (negative samples, survival samples). Two implementations:
//
//  * ExperimentContext — one extractor over a fixed window F (the fast path;
//    used by the figure benches).
//  * BlockedExperimentContext — the paper's F(q) = {q′ ≤ q} semantics,
//    approximated at day-block granularity: pairs of block b get features
//    computed only from strictly earlier blocks.
//
// run_tasks() then executes the paper's repeated stratified cross validation
// for any subset of the three prediction tasks, any feature-column subset
// (for the Fig. 6/7 ablations), with or without the SPARFA / MF / Poisson
// regression baselines of Sec. IV-A.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/answer_predictor.hpp"
#include "core/timing_predictor.hpp"
#include "core/vote_predictor.hpp"
#include "features/extractor.hpp"
#include "forum/dataset.hpp"
#include "ml/matrix_factorization.hpp"
#include "ml/poisson_regression.hpp"
#include "ml/sparfa.hpp"

namespace forumcast::exp {

/// Values of one metric across cross-validation iterations.
struct TaskMetrics {
  std::vector<double> per_iteration;
  double mean() const;
  double stddev() const;
  bool empty() const { return per_iteration.empty(); }
};

/// Supplies Ω's answered pairs and features for arbitrary (u, q) queries.
class PairFeatureSource {
 public:
  virtual ~PairFeatureSource() = default;
  virtual const forum::Dataset& dataset() const = 0;
  virtual std::span<const forum::QuestionId> omega() const = 0;
  virtual std::span<const forum::AnsweredPair> positives() const = 0;
  virtual std::span<const std::vector<double>> positive_features() const = 0;
  /// Feature vector for any (u, q) with q ∈ Ω (used for negative samples and
  /// point-process survival samples).
  virtual std::vector<double> features(forum::UserId u,
                                       forum::QuestionId q) const = 0;
  virtual double last_post_time() const = 0;
};

class ExperimentContext : public PairFeatureSource {
 public:
  /// Builds the extractor over `inference` (the F window) and caches the
  /// feature vectors of every answered pair among `omega` (the Ω partition).
  ExperimentContext(const forum::Dataset& dataset,
                    std::vector<forum::QuestionId> omega,
                    std::vector<forum::QuestionId> inference,
                    features::ExtractorConfig config = {});

  const forum::Dataset& dataset() const override { return *dataset_; }
  std::span<const forum::QuestionId> omega() const override { return omega_; }
  std::span<const forum::AnsweredPair> positives() const override {
    return positives_;
  }
  std::span<const std::vector<double>> positive_features() const override {
    return positive_features_;
  }
  std::vector<double> features(forum::UserId u,
                               forum::QuestionId q) const override;
  double last_post_time() const override { return last_post_time_; }

  const features::FeatureExtractor& extractor() const { return *extractor_; }

 private:
  const forum::Dataset* dataset_;
  std::vector<forum::QuestionId> omega_;
  std::unique_ptr<features::FeatureExtractor> extractor_;
  std::vector<forum::AnsweredPair> positives_;
  std::vector<std::vector<double>> positive_features_;
  double last_post_time_ = 0.0;
};

class BlockedExperimentContext : public PairFeatureSource {
 public:
  /// Splits Ω into `block_days`-day blocks by question timestamp; block b's
  /// features come from an extractor over all dataset questions strictly
  /// before the block (the first block, having no history, uses its own
  /// questions — the cold-start the paper's earliest F(q) windows also have).
  BlockedExperimentContext(const forum::Dataset& dataset,
                           std::vector<forum::QuestionId> omega,
                           int block_days = 5,
                           features::ExtractorConfig config = {});

  const forum::Dataset& dataset() const override { return *dataset_; }
  std::span<const forum::QuestionId> omega() const override { return omega_; }
  std::span<const forum::AnsweredPair> positives() const override {
    return positives_;
  }
  std::span<const std::vector<double>> positive_features() const override {
    return positive_features_;
  }
  std::vector<double> features(forum::UserId u,
                               forum::QuestionId q) const override;
  double last_post_time() const override { return last_post_time_; }

  std::size_t block_count() const { return extractors_.size(); }

 private:
  const forum::Dataset* dataset_;
  std::vector<forum::QuestionId> omega_;
  std::vector<std::unique_ptr<features::FeatureExtractor>> extractors_;
  std::vector<std::size_t> block_of_question_;  // per dataset question
  std::vector<forum::AnsweredPair> positives_;
  std::vector<std::vector<double>> positive_features_;
  double last_post_time_ = 0.0;
};

struct TaskSetup {
  std::size_t folds = 5;
  std::size_t repeats = 2;  ///< paper uses 5 (25 iterations); 2 is the fast default
  std::uint64_t seed = 1234;

  /// Columns of the full feature vector to use; empty = all.
  std::vector<std::size_t> feature_columns;

  bool run_answer = true;
  bool run_votes = true;
  bool run_timing = true;
  bool run_baselines = true;

  core::AnswerPredictorConfig answer = {};
  core::VotePredictorConfig vote = {};
  core::TimingPredictorConfig timing = {};
  std::size_t survival_samples_per_thread = 10;

  ml::SparfaConfig sparfa = {};
  ml::MatrixFactorizationConfig mf = {};
  ml::PoissonRegressionConfig poisson = {};
};

/// Shrinks the training epochs of every model for quick bench runs.
TaskSetup fast_task_setup();

struct ExperimentResult {
  TaskMetrics answer_auc;
  TaskMetrics answer_auc_baseline;   ///< SPARFA
  TaskMetrics vote_rmse;
  TaskMetrics vote_rmse_baseline;    ///< MF
  TaskMetrics timing_rmse;
  TaskMetrics timing_rmse_baseline;  ///< Poisson regression
};

ExperimentResult run_tasks(const PairFeatureSource& source,
                           const TaskSetup& setup);

}  // namespace forumcast::exp
