#include "features/baseline.hpp"

#include <algorithm>
#include <cmath>

#include "artifact/artifact.hpp"
#include "util/check.hpp"

namespace forumcast::features {

namespace {
// Body format version inside the bundle section, mirroring the extractor
// codec: lets the histogram inventory evolve without a bundle version bump.
constexpr std::uint32_t kBaselineFormat = 1;
}  // namespace

FeatureBaseline FeatureBaseline::from_rows(
    const std::vector<std::vector<double>>& rows) {
  FeatureBaseline baseline;
  if (rows.empty()) return baseline;
  const std::size_t dimension = rows.front().size();
  baseline.features_.resize(dimension);
  baseline.sample_count_ = rows.size();

  for (std::size_t f = 0; f < dimension; ++f) {
    FeatureHistogram& hist = baseline.features_[f];
    hist.min = rows.front()[f];
    hist.max = rows.front()[f];
    for (const auto& row : rows) {
      FORUMCAST_CHECK_MSG(row.size() == dimension,
                          "FeatureBaseline: ragged feature matrix (row has "
                              << row.size() << " columns, expected "
                              << dimension << ")");
      hist.min = std::min(hist.min, row[f]);
      hist.max = std::max(hist.max, row[f]);
    }
    hist.counts.assign(kBins, 0);
  }
  for (const auto& row : rows) {
    for (std::size_t f = 0; f < dimension; ++f) {
      ++baseline.features_[f].counts[baseline.bin(f, row[f])];
    }
  }
  return baseline;
}

std::size_t FeatureBaseline::bin(std::size_t index, double value) const {
  const FeatureHistogram& hist = features_[index];
  const double width = hist.max - hist.min;
  if (!(width > 0.0)) return 0;  // constant column: everything is bin 0
  const double position = (value - hist.min) / width * kBins;
  if (position <= 0.0) return 0;
  const auto bin = static_cast<std::size_t>(position);
  return std::min(bin, kBins - 1);
}

void FeatureBaseline::encode(artifact::Encoder& enc) const {
  enc.u32(kBaselineFormat);
  enc.u64(sample_count_);
  enc.u64(features_.size());
  for (const FeatureHistogram& hist : features_) {
    enc.f64(hist.min, "baseline bin min");
    enc.f64(hist.max, "baseline bin max");
    enc.u64s(hist.counts);
  }
}

FeatureBaseline FeatureBaseline::decode(artifact::Decoder& dec) {
  const std::uint32_t format = dec.u32("baseline format");
  FORUMCAST_CHECK_MSG(format == kBaselineFormat,
                      "model bundle: unsupported feature-baseline format "
                          << format);
  FeatureBaseline baseline;
  baseline.sample_count_ = dec.u64("baseline sample count");
  const std::uint64_t dimension = dec.u64("baseline dimension");
  baseline.features_.resize(static_cast<std::size_t>(dimension));
  for (FeatureHistogram& hist : baseline.features_) {
    hist.min = dec.f64("baseline bin min");
    hist.max = dec.f64("baseline bin max");
    hist.counts = dec.u64s("baseline bin counts");
    FORUMCAST_CHECK_MSG(hist.counts.size() == kBins,
                        "model bundle: feature-baseline histogram has "
                            << hist.counts.size() << " bins, expected "
                            << kBins);
    FORUMCAST_CHECK_MSG(hist.max >= hist.min,
                        "model bundle: feature-baseline bin range inverted");
  }
  return baseline;
}

}  // namespace forumcast::features
