// Fit-time feature-distribution baseline: the reference the drift detector
// compares serving-time feature vectors against.
//
// ForecastPipeline::fit captures one FeatureBaseline over the answer-
// classifier training matrix (positives + sampled negatives — the closest
// fit-time proxy for the (u, q) pairs the model will score live) and
// persists it as its own bundle section, so a loaded model carries its own
// drift reference. Each feature column gets an equal-width histogram over
// the observed [min, max]; PSI against live traffic is computed downstream
// (obs/monitor) from the bin counts, keeping this layer dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace forumcast::artifact {
class Encoder;
class Decoder;
}  // namespace forumcast::artifact

namespace forumcast::features {

class FeatureBaseline {
 public:
  /// Equal-width bins per feature. 10 is the conventional PSI resolution:
  /// coarse enough that fit-time counts per bin stay meaningful on small
  /// training sets, fine enough to see a mean shift of half a bin width.
  static constexpr std::size_t kBins = 10;

  struct FeatureHistogram {
    double min = 0.0;           ///< observed fit-time minimum
    double max = 0.0;           ///< observed fit-time maximum
    std::vector<std::uint64_t> counts;  ///< kBins entries
  };

  FeatureBaseline() = default;

  /// Builds per-column histograms over `rows`; every row must have the same
  /// dimension. A constant column (min == max) puts all mass in bin 0 and
  /// bins every live value there too, so it contributes zero PSI until the
  /// live values actually move.
  static FeatureBaseline from_rows(const std::vector<std::vector<double>>& rows);

  bool empty() const { return features_.empty(); }
  std::size_t dimension() const { return features_.size(); }
  std::uint64_t sample_count() const { return sample_count_; }
  const FeatureHistogram& feature(std::size_t index) const {
    return features_[index];
  }

  /// Bin index for a live value under feature `index`'s fit-time edges;
  /// values outside [min, max] clamp into the first/last bin, which is
  /// exactly where out-of-range drift should pile up.
  std::size_t bin(std::size_t index, double value) const;

  void encode(artifact::Encoder& enc) const;
  static FeatureBaseline decode(artifact::Decoder& dec);

 private:
  std::vector<FeatureHistogram> features_;
  std::uint64_t sample_count_ = 0;
};

}  // namespace forumcast::features
