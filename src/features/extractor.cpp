#include "features/extractor.hpp"

#include <algorithm>

#include "forum/sln.hpp"
#include "graph/centrality.hpp"
#include "graph/link_features.hpp"
#include "obs/obs.hpp"
#include "text/post_text.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"
#include "topics/topic_math.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace forumcast::features {

namespace {
std::vector<forum::QuestionId> intersect_sorted(
    const std::vector<forum::QuestionId>& a,
    const std::vector<forum::QuestionId>& b, std::size_t& count) {
  count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return {};
}

// Deterministic fold-in seed for an answer document outside the topic
// corpus. Keyed by (question, answer index) so a streaming fold-in and a
// batch rebuild draw identical Gibbs chains for the same post. (Question
// posts keep their historical 0x5eed + q seed.)
std::uint64_t answer_doc_seed(forum::QuestionId q, std::size_t answer_index) {
  return 0xa45e7d0cULL +
         0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(q) +
         static_cast<std::uint64_t>(answer_index);
}

void insert_sorted_unique(std::vector<forum::QuestionId>& ids,
                          forum::QuestionId q) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), q);
  if (it == ids.end() || *it != q) ids.insert(it, q);
}
}  // namespace

FeatureExtractor::FeatureExtractor(const forum::Dataset& dataset,
                                   std::span<const forum::QuestionId> inference_set,
                                   ExtractorConfig config)
    : dataset_(dataset),
      config_(config),
      layout_(config.num_topics),
      lda_([&config] {
        topics::LdaConfig lda_config = config.lda;
        lda_config.num_topics = config.num_topics;
        return lda_config;
      }()),
      qa_graph_(0),
      dense_graph_(0) {
  FORUMCAST_CHECK(config_.num_topics > 0);
  FORUMCAST_SPAN_NAMED(build_span, "features.build");

  window_.assign(inference_set.begin(), inference_set.end());
  std::sort(window_.begin(), window_.end());
  window_.erase(std::unique(window_.begin(), window_.end()), window_.end());

  // --- Topic model over the window's posts (questions and answers). ---
  // Document ids: for each window question, its question post then answers.
  // Posts beyond the corpus cutoff stay out of the training set entirely —
  // they are folded in below, exactly like the streaming path would.
  const double corpus_cutoff = config_.topic_corpus_cutoff_hours;
  struct DocRef {
    forum::QuestionId question;
    int answer_index;  // -1 = the question post
  };
  std::vector<DocRef> doc_refs;
  std::vector<std::vector<text::TokenId>> documents;
  {
    FORUMCAST_SPAN("features.tokenize_corpus");
    for (forum::QuestionId q : inference_set) {
      const forum::Thread& thread = dataset_.thread(q);
      if (thread.question.timestamp_hours <= corpus_cutoff) {
        const auto q_split = text::split_post_body(thread.question.body_html);
        documents.push_back(
            vocabulary_.encode(tokenizer_.tokenize(q_split.words)));
        doc_refs.push_back({q, -1});
      }
      for (std::size_t a = 0; a < thread.answers.size(); ++a) {
        if (thread.answers[a].timestamp_hours > corpus_cutoff) continue;
        const auto a_split = text::split_post_body(thread.answers[a].body_html);
        documents.push_back(
            vocabulary_.encode(tokenizer_.tokenize(a_split.words)));
        doc_refs.push_back({q, static_cast<int>(a)});
      }
    }
  }

  // Degenerate window (no documents / empty vocabulary): uniform topics.
  has_corpus_ = !documents.empty() && vocabulary_.size() > 0;
  if (has_corpus_) {
    lda_.fit(documents, vocabulary_.size());
  }
  auto uniform = topics::uniform_distribution(config_.num_topics);

  // --- Topic distribution + lengths for every dataset question. ---
  const std::size_t num_questions = dataset_.num_questions();
  question_topics_.assign(num_questions, uniform);
  question_word_length_.assign(num_questions, 0.0);
  question_code_length_.assign(num_questions, 0.0);
  std::vector<std::uint8_t> question_in_corpus(num_questions, 0);
  if (has_corpus_) {
    for (std::size_t doc = 0; doc < doc_refs.size(); ++doc) {
      if (doc_refs[doc].answer_index == -1) {
        question_topics_[doc_refs[doc].question] = lda_.document_topics(doc);
        question_in_corpus[doc_refs[doc].question] = 1;
      }
    }
  }
  // Lengths are cheap; fold-in inference for questions whose post is not a
  // corpus document is not, and each question is independent (own seed), so
  // it runs in parallel.
  std::vector<forum::QuestionId> to_infer;
  for (forum::QuestionId q = 0; q < num_questions; ++q) {
    const forum::Thread& thread = dataset_.thread(q);
    const auto split = text::split_post_body(thread.question.body_html);
    question_word_length_[q] = static_cast<double>(split.words.size());
    question_code_length_[q] = static_cast<double>(split.code.size());
    if (has_corpus_ && !question_in_corpus[q]) to_infer.push_back(q);
  }
  // In-corpus questions reuse the trained per-document distributions (cache
  // hits); everything else pays a Gibbs fold-in (cache misses).
  FORUMCAST_COUNTER_ADD("features.topic_cache_hits",
                        num_questions - to_infer.size());
  FORUMCAST_COUNTER_ADD("features.topic_cache_misses", to_infer.size());
  {
    FORUMCAST_SPAN("features.topic_fold_in");
    util::parallel_for_chunks(
        to_infer.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            question_topics_[to_infer[i]] = fold_question_topics(to_infer[i]);
          }
        });
  }

  // --- Per-user aggregates over the window. ---
  FORUMCAST_SPAN_NAMED(user_stats_span, "features.user_stats");
  user_stats_.assign(dataset_.num_users(), UserStats{});
  for (auto& stats : user_stats_) stats.topic_distribution = uniform;

  user_topic_accum_.assign(dataset_.num_users(), {});
  user_doc_count_.assign(dataset_.num_users(), 0);
  user_streamed_docs_.assign(dataset_.num_users(), {});
  for (auto& topics_accum : user_topic_accum_) {
    topics_accum.assign(config_.num_topics, 0.0);
  }

  std::vector<double> all_delays;
  for (std::size_t doc = 0; has_corpus_ && doc < doc_refs.size(); ++doc) {
    const DocRef& ref = doc_refs[doc];
    if (ref.answer_index < 0) continue;
    const forum::Thread& thread = dataset_.thread(ref.question);
    const forum::Post& answer =
        thread.answers[static_cast<std::size_t>(ref.answer_index)];
    const auto theta = lda_.document_topics(doc);
    auto& accum = user_topic_accum_[answer.creator];
    for (std::size_t k = 0; k < config_.num_topics; ++k) accum[k] += theta[k];
    ++user_doc_count_[answer.creator];
  }
  // Answer documents beyond the corpus cutoff: folded in with deterministic
  // per-document seeds, in (question, answer index) order — the exact
  // sequence the streaming path appends, so both accumulate the same bits.
  if (has_corpus_) {
    for (forum::QuestionId q : inference_set) {
      const forum::Thread& thread = dataset_.thread(q);
      for (std::size_t a = 0; a < thread.answers.size(); ++a) {
        const forum::Post& answer = thread.answers[a];
        if (answer.timestamp_hours <= corpus_cutoff) continue;
        const auto split = text::split_post_body(answer.body_html);
        const auto tokens =
            vocabulary_.encode_existing(tokenizer_.tokenize(split.words));
        const auto theta =
            lda_.infer(tokens, /*iterations=*/30, answer_doc_seed(q, a));
        auto& accum = user_topic_accum_[answer.creator];
        for (std::size_t k = 0; k < config_.num_topics; ++k) {
          accum[k] += theta[k];
        }
        ++user_doc_count_[answer.creator];
      }
    }
  }

  for (forum::QuestionId q : inference_set) {
    const forum::Thread& thread = dataset_.thread(q);
    auto& asker_stats = user_stats_[thread.question.creator];
    ++asker_stats.questions_asked;
    asker_stats.participated.push_back(q);
    for (const auto& answer : thread.answers) {
      auto& stats = user_stats_[answer.creator];
      ++stats.answers_provided;
      stats.net_answer_votes += answer.net_votes;
      stats.answer_votes.push_back(static_cast<double>(answer.net_votes));
      const double delay =
          answer.timestamp_hours - thread.question.timestamp_hours;
      stats.response_times.push_back(delay);
      all_delays.push_back(delay);
      global_delay_sketch_.add(delay);
      stats.answered.push_back(q);
      stats.answered_votes.push_back(static_cast<double>(answer.net_votes));
      stats.participated.push_back(q);
    }
  }
  for (std::size_t u = 0; u < user_stats_.size(); ++u) {
    auto& stats = user_stats_[u];
    std::sort(stats.participated.begin(), stats.participated.end());
    stats.participated.erase(
        std::unique(stats.participated.begin(), stats.participated.end()),
        stats.participated.end());
    if (user_doc_count_[u] > 0) {
      // Scale the raw sums without mutating them: the accumulators stay
      // live so streamed answer documents can extend them later.
      const double inv = 1.0 / static_cast<double>(user_doc_count_[u]);
      const auto& accum = user_topic_accum_[u];
      for (std::size_t k = 0; k < config_.num_topics; ++k) {
        stats.topic_distribution[k] = accum[k] * inv;
      }
    }
  }
  global_median_response_ =
      all_delays.empty() ? 0.0 : util::median(all_delays);
  user_stats_span.end();

  // --- SLN graphs and centralities over the window. ---
  {
    FORUMCAST_SPAN("features.sln_graphs");
    qa_graph_ = forum::build_qa_graph(dataset_, inference_set);
    dense_graph_ = forum::build_dense_graph(dataset_, inference_set);
    qa_centrality_engine_ = graph::CentralityEngine(config_.centrality);
    dense_centrality_engine_ = graph::CentralityEngine(config_.centrality);
    refresh_centrality_full(util::default_thread_count());
  }

  if (build_span.active()) {
    build_span.arg("window_questions",
                   static_cast<double>(inference_set.size()));
    build_span.arg("users", static_cast<double>(dataset_.num_users()));
  }
  FORUMCAST_LOG_INFO_KV("features.build",
                        {"window_questions", inference_set.size()},
                        {"users", dataset_.num_users()},
                        {"dimension", layout_.dimension()});
}

std::vector<double> FeatureExtractor::fold_question_topics(
    forum::QuestionId q) const {
  const auto split = text::split_post_body(dataset_.thread(q).question.body_html);
  const auto tokens =
      vocabulary_.encode_existing(tokenizer_.tokenize(split.words));
  return lda_.infer(tokens, /*iterations=*/30, /*seed=*/0x5eedULL + q);
}

bool FeatureExtractor::in_window(forum::QuestionId q) const {
  return std::binary_search(window_.begin(), window_.end(), q);
}

void FeatureExtractor::stream_add_question(forum::QuestionId q) {
  FORUMCAST_CHECK(q < dataset_.num_questions());
  FORUMCAST_CHECK_MSG(q == question_topics_.size(),
                      "streamed questions must extend the dataset contiguously");
  const forum::Thread& thread = dataset_.thread(q);
  const auto split = text::split_post_body(thread.question.body_html);
  question_word_length_.push_back(static_cast<double>(split.words.size()));
  question_code_length_.push_back(static_cast<double>(split.code.size()));
  question_topics_.push_back(
      has_corpus_ ? fold_question_topics(q)
                  : topics::uniform_distribution(config_.num_topics));

  auto& asker_stats = user_stats_[thread.question.creator];
  ++asker_stats.questions_asked;
  insert_sorted_unique(asker_stats.participated, q);
  window_.push_back(q);  // ids are monotone, so window_ stays sorted
  FORUMCAST_COUNTER_ADD("features.topic_cache_misses", 1);
}

bool FeatureExtractor::stream_add_answer(forum::QuestionId q,
                                         std::size_t answer_index) {
  FORUMCAST_CHECK_MSG(in_window(q), "streamed answer to a non-window question");
  const forum::Thread& thread = dataset_.thread(q);
  FORUMCAST_CHECK(answer_index < thread.answers.size());
  const forum::Post& answer = thread.answers[answer_index];
  const forum::UserId u = answer.creator;
  auto& stats = user_stats_[u];

  // Insert at the canonical position — ascending (question, answer index) —
  // which is exactly where a batch rebuild's aggregate loop would have
  // emitted this answer. All four aligned lists share one position.
  const std::size_t pos = static_cast<std::size_t>(
      std::upper_bound(stats.answered.begin(), stats.answered.end(), q) -
      stats.answered.begin());
  const double delay =
      answer.timestamp_hours - thread.question.timestamp_hours;
  stats.answered.insert(stats.answered.begin() + pos, q);
  stats.answered_votes.insert(stats.answered_votes.begin() + pos,
                              static_cast<double>(answer.net_votes));
  stats.answer_votes.insert(stats.answer_votes.begin() + pos,
                            static_cast<double>(answer.net_votes));
  stats.response_times.insert(stats.response_times.begin() + pos, delay);
  ++stats.answers_provided;
  stats.net_answer_votes += answer.net_votes;
  insert_sorted_unique(stats.participated, q);

  global_delay_sketch_.add(delay);
  global_median_response_ = global_delay_sketch_.median();

  if (has_corpus_) {
    const auto split = text::split_post_body(answer.body_html);
    const auto tokens =
        vocabulary_.encode_existing(tokenizer_.tokenize(split.words));
    StreamedDoc doc;
    doc.question = q;
    doc.answer_index = static_cast<std::uint32_t>(answer_index);
    doc.theta = lda_.infer(tokens, /*iterations=*/30,
                           answer_doc_seed(q, answer_index));
    auto& docs = user_streamed_docs_[u];
    const auto it = std::upper_bound(
        docs.begin(), docs.end(), doc,
        [](const StreamedDoc& a, const StreamedDoc& b) {
          return a.question != b.question ? a.question < b.question
                                          : a.answer_index < b.answer_index;
        });
    docs.insert(it, std::move(doc));
    ++user_doc_count_[u];
    topics_dirty_.push_back(u);
  }

  // Incremental SLN edges: the asker–answerer QA edge, and dense edges from
  // the new answerer to every prior thread participant. The union over all
  // events equals the batch pairwise build (add_edge deduplicates).
  bool edges_added = false;
  const forum::UserId asker = thread.question.creator;
  if (asker != u && qa_graph_.add_edge(asker, u)) {
    edges_added = true;
    qa_new_edges_.emplace_back(asker, u);
  }
  std::vector<forum::UserId> prior = {asker};
  for (std::size_t a = 0; a < answer_index; ++a) {
    prior.push_back(thread.answers[a].creator);
  }
  std::sort(prior.begin(), prior.end());
  prior.erase(std::unique(prior.begin(), prior.end()), prior.end());
  for (const forum::UserId p : prior) {
    if (p != u && dense_graph_.add_edge(u, p)) {
      edges_added = true;
      dense_new_edges_.emplace_back(u, p);
    }
  }
  graph_dirty_ |= edges_added;
  return edges_added;
}

void FeatureExtractor::stream_apply_answer_vote(forum::QuestionId q,
                                                std::size_t answer_index,
                                                int delta) {
  FORUMCAST_CHECK_MSG(in_window(q), "streamed vote on a non-window question");
  const forum::Thread& thread = dataset_.thread(q);
  FORUMCAST_CHECK(answer_index < thread.answers.size());
  const forum::Post& answer = thread.answers[answer_index];
  const forum::UserId u = answer.creator;
  auto& stats = user_stats_[u];

  // The n-th of u's answers within this thread (by index) occupies the n-th
  // slot of the run of `q` entries in the user's aligned lists.
  std::size_t rank = 0;
  for (std::size_t a = 0; a < answer_index; ++a) {
    if (thread.answers[a].creator == u) ++rank;
  }
  const std::size_t pos =
      static_cast<std::size_t>(
          std::lower_bound(stats.answered.begin(), stats.answered.end(), q) -
          stats.answered.begin()) +
      rank;
  FORUMCAST_CHECK(pos < stats.answered.size() && stats.answered[pos] == q);
  stats.net_answer_votes += delta;
  stats.answered_votes[pos] += delta;
  stats.answer_votes[pos] += delta;
}

void FeatureExtractor::stream_refresh() {
  FORUMCAST_SPAN("features.stream_refresh");
  std::sort(topics_dirty_.begin(), topics_dirty_.end());
  topics_dirty_.erase(
      std::unique(topics_dirty_.begin(), topics_dirty_.end()),
      topics_dirty_.end());
  for (const forum::UserId u : topics_dirty_) {
    // Replay the rebuild's accumulation: trained-corpus sums first, then
    // every folded document in (question, answer index) order, one divide.
    std::vector<double> accum = user_topic_accum_[u];
    for (const StreamedDoc& doc : user_streamed_docs_[u]) {
      for (std::size_t k = 0; k < config_.num_topics; ++k) {
        accum[k] += doc.theta[k];
      }
    }
    const double inv = 1.0 / static_cast<double>(user_doc_count_[u]);
    // Element-wise writes keep the distribution's buffer (and the spans the
    // serving cache hands out) stable.
    auto& dist = user_stats_[u].topic_distribution;
    for (std::size_t k = 0; k < config_.num_topics; ++k) {
      dist[k] = accum[k] * inv;
    }
  }
  topics_dirty_.clear();

  if (graph_dirty_) {
    FORUMCAST_SPAN_NAMED(span, "features.stream_centrality_refresh");
    const std::size_t threads = util::default_thread_count();
    if (config_.centrality.mode == graph::CentralityMode::kExact) {
      refresh_centrality_full(threads);
    } else {
      refresh_centrality_incremental(threads);
    }
    qa_new_edges_.clear();
    dense_new_edges_.clear();
    graph_dirty_ = false;
    FORUMCAST_HISTOGRAM_OBSERVE("features.centrality_refresh_ms",
                                span.elapsed_seconds() * 1e3, 0.1, 1, 10, 100,
                                1000, 10000);
  }
}

void FeatureExtractor::refresh_centrality_full(std::size_t threads) {
  if (config_.centrality.mode == graph::CentralityMode::kExact) {
    qa_closeness_ = graph::closeness_centrality(qa_graph_, threads);
    qa_betweenness_ = graph::betweenness_centrality(qa_graph_, threads);
    dense_closeness_ = graph::closeness_centrality(dense_graph_, threads);
    dense_betweenness_ = graph::betweenness_centrality(dense_graph_, threads);
    // Two graphs recomputed in full (the engines count their own rebuilds).
    FORUMCAST_COUNTER_ADD("centrality.full_refreshes", 2);
  } else {
    qa_centrality_engine_.rebuild(qa_graph_, threads);
    dense_centrality_engine_.rebuild(dense_graph_, threads);
    qa_closeness_ = qa_centrality_engine_.closeness();
    qa_betweenness_ = qa_centrality_engine_.betweenness();
    dense_closeness_ = dense_centrality_engine_.closeness();
    dense_betweenness_ = dense_centrality_engine_.betweenness();
  }
}

void FeatureExtractor::refresh_centrality_incremental(std::size_t threads) {
  // Uninitialized engines (fresh decode, config swap) fall back to a full
  // pivot rebuild inside refresh(); a graph with no new edges keeps every
  // cached pivot and the fold below is a cheap re-sum.
  if (!qa_new_edges_.empty() || !qa_centrality_engine_.built()) {
    qa_centrality_engine_.refresh(qa_graph_, qa_new_edges_, threads);
    qa_closeness_ = qa_centrality_engine_.closeness();
    qa_betweenness_ = qa_centrality_engine_.betweenness();
  }
  if (!dense_new_edges_.empty() || !dense_centrality_engine_.built()) {
    dense_centrality_engine_.refresh(dense_graph_, dense_new_edges_, threads);
    dense_closeness_ = dense_centrality_engine_.closeness();
    dense_betweenness_ = dense_centrality_engine_.betweenness();
  }
}

void FeatureExtractor::set_centrality_config(
    const graph::CentralityConfig& config) {
  FORUMCAST_CHECK_MSG(!graph_dirty_,
                      "set_centrality_config on a graph-dirty extractor");
  config_.centrality = config;
  qa_centrality_engine_ = graph::CentralityEngine(config);
  dense_centrality_engine_ = graph::CentralityEngine(config);
}

const FeatureExtractor::UserStats& FeatureExtractor::user_stats(
    forum::UserId u) const {
  FORUMCAST_CHECK(u < user_stats_.size());
  return user_stats_[u];
}

std::span<const double> FeatureExtractor::question_topics(
    forum::QuestionId q) const {
  FORUMCAST_CHECK(q < question_topics_.size());
  return question_topics_[q];
}

double FeatureExtractor::question_word_length(forum::QuestionId q) const {
  FORUMCAST_CHECK(q < question_word_length_.size());
  return question_word_length_[q];
}

double FeatureExtractor::question_code_length(forum::QuestionId q) const {
  FORUMCAST_CHECK(q < question_code_length_.size());
  return question_code_length_[q];
}

double FeatureExtractor::median_response_time(forum::UserId u) const {
  const UserStats& stats = user_stats(u);
  if (stats.response_times.empty()) return global_median_response_;
  return util::median(stats.response_times);
}

double FeatureExtractor::thread_cooccurrence(forum::UserId u,
                                             forum::UserId v) const {
  std::size_t count = 0;
  intersect_sorted(user_stats(u).participated, user_stats(v).participated, count);
  return static_cast<double>(count);
}

std::vector<double> FeatureExtractor::features(forum::UserId u,
                                               forum::QuestionId q) const {
  FORUMCAST_CHECK(u < dataset_.num_users());
  FORUMCAST_CHECK(q < dataset_.num_questions());
  FORUMCAST_COUNTER_ADD("features.vectors_built", 1);
  const UserStats& stats = user_stats_[u];
  const forum::Thread& thread = dataset_.thread(q);
  const forum::UserId asker = thread.question.creator;
  const auto& d_u = stats.topic_distribution;
  const auto& d_q = question_topics_[q];
  const auto& d_v = user_stats_[asker].topic_distribution;

  std::vector<double> x(layout_.dimension(), 0.0);
  auto put = [&](FeatureId id, double value) { x[layout_.offset(id)] = value; };
  auto put_dist = [&](FeatureId id, std::span<const double> dist) {
    const std::size_t start = layout_.offset(id);
    for (std::size_t k = 0; k < config_.num_topics; ++k) x[start + k] = dist[k];
  };

  // User features (i)-(v).
  put(FeatureId::AnswersProvided, static_cast<double>(stats.answers_provided));
  put(FeatureId::AnswerRatio,
      static_cast<double>(stats.answers_provided) /
          (1.0 + static_cast<double>(stats.questions_asked)));
  put(FeatureId::NetAnswerVotes, stats.net_answer_votes);
  put(FeatureId::MedianResponseTime, median_response_time(u));
  put_dist(FeatureId::TopicsAnswered, d_u);

  // Question features (vi)-(ix).
  put(FeatureId::NetQuestionVotes, static_cast<double>(thread.question.net_votes));
  put(FeatureId::QuestionWordLength, question_word_length_[q]);
  put(FeatureId::QuestionCodeLength, question_code_length_[q]);
  put_dist(FeatureId::TopicsAsked, d_q);

  // User-question features (x)-(xii).
  put(FeatureId::UserQuestionTopicSimilarity,
      topics::total_variation_similarity(d_u, d_q));
  double topic_weighted_answers = 0.0;
  double topic_weighted_votes = 0.0;
  for (std::size_t i = 0; i < stats.answered.size(); ++i) {
    const forum::QuestionId r = stats.answered[i];
    if (r == q) continue;
    const double sim =
        topics::total_variation_similarity(question_topics_[r], d_q);
    topic_weighted_answers += sim;
    topic_weighted_votes += stats.answered_votes[i] * sim;
  }
  put(FeatureId::TopicWeightedQuestionsAnswered, topic_weighted_answers);
  put(FeatureId::TopicWeightedAnswerVotes, topic_weighted_votes);

  // Social features (xiii)-(xx).
  put(FeatureId::UserUserTopicSimilarity,
      topics::total_variation_similarity(d_u, d_v));
  // Exclude the target thread itself from co-occurrence: counting it would
  // label every observed answerer with h ≥ 1 and make training trivially
  // separable (a leak the paper's 0.86 AUC clearly does not have).
  double cooccurrence = thread_cooccurrence(u, asker);
  if (std::binary_search(stats.participated.begin(), stats.participated.end(), q) &&
      std::binary_search(user_stats_[asker].participated.begin(),
                         user_stats_[asker].participated.end(), q)) {
    cooccurrence -= 1.0;
  }
  put(FeatureId::ThreadCooccurrence, cooccurrence);
  put(FeatureId::QaCloseness, qa_closeness_[u]);
  put(FeatureId::QaBetweenness, qa_betweenness_[u]);
  put(FeatureId::QaResourceAllocation,
      graph::resource_allocation_index(qa_graph_, u, asker));
  put(FeatureId::DenseCloseness, dense_closeness_[u]);
  put(FeatureId::DenseBetweenness, dense_betweenness_[u]);
  put(FeatureId::DenseResourceAllocation,
      graph::resource_allocation_index(dense_graph_, u, asker));
  return x;
}

}  // namespace forumcast::features
