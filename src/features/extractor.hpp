// FeatureExtractor: computes x_{u,q} (Sec. II-B) over an inference window.
//
// Construction does all the heavy lifting once per window F(q): tokenizes the
// posts, trains LDA over the window's documents, folds in topic distributions
// for questions outside the window, aggregates per-user answering statistics,
// and builds both SLN graphs with their closeness/betweenness centralities.
// After that, features(u, q) is a cheap assembly per pair.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "forum/dataset.hpp"
#include "features/feature_layout.hpp"
#include "graph/graph.hpp"
#include "topics/lda.hpp"

namespace forumcast::features {

struct ExtractorConfig {
  std::size_t num_topics = 8;  ///< K (paper default 8)
  topics::LdaConfig lda = {};  ///< .num_topics is overridden by `num_topics`
};

class FeatureExtractor {
 public:
  /// Builds caches over the window `inference_set` ⊆ dataset questions.
  /// Pairs may later be queried for *any* question in the dataset (questions
  /// outside the window get folded-in topic distributions), but only window
  /// activity contributes to user history and graphs — this is exactly the
  /// F(q) semantics of Sec. IV.
  FeatureExtractor(const forum::Dataset& dataset,
                   std::span<const forum::QuestionId> inference_set,
                   ExtractorConfig config = {});

  /// Full feature vector x_{u,q}, dimension 18 + 2K, paper ordering.
  std::vector<double> features(forum::UserId u, forum::QuestionId q) const;

  const FeatureLayout& layout() const { return layout_; }
  std::size_t dimension() const { return layout_.dimension(); }
  std::size_t num_topics() const { return config_.num_topics; }

  const graph::Graph& qa_graph() const { return qa_graph_; }
  const graph::Graph& dense_graph() const { return dense_graph_; }
  const topics::Lda& lda() const { return lda_; }

  /// Per-user aggregates over the window, exposed for the descriptive
  /// analytics of paper Figs. 3–4.
  struct UserStats {
    std::size_t answers_provided = 0;                ///< a_u
    std::size_t questions_asked = 0;
    double net_answer_votes = 0.0;                   ///< v_u
    std::vector<double> answer_votes;                ///< each v(p) by u
    std::vector<double> response_times;              ///< each delay by u
    std::vector<double> topic_distribution;          ///< d_u
    std::vector<forum::QuestionId> answered;         ///< window questions answered
    std::vector<double> answered_votes;              ///< votes aligned with `answered`
    std::vector<forum::QuestionId> participated;     ///< sorted thread ids (ask or answer)
  };

  const UserStats& user_stats(forum::UserId u) const;
  std::span<const double> question_topics(forum::QuestionId q) const;
  double question_word_length(forum::QuestionId q) const;
  double question_code_length(forum::QuestionId q) const;
  std::span<const double> qa_closeness() const { return qa_closeness_; }
  std::span<const double> qa_betweenness() const { return qa_betweenness_; }
  std::span<const double> dense_closeness() const { return dense_closeness_; }
  std::span<const double> dense_betweenness() const { return dense_betweenness_; }

  /// Median response time r_u, falling back to the window-global median for
  /// users without window answers (and 0 when the window has none at all).
  double median_response_time(forum::UserId u) const;

  /// Thread co-occurrence count h_{u,v} over the window.
  double thread_cooccurrence(forum::UserId u, forum::UserId v) const;

 private:
  const forum::Dataset& dataset_;
  ExtractorConfig config_;
  FeatureLayout layout_;

  topics::Lda lda_;
  std::vector<std::vector<double>> question_topics_;  // per dataset question
  std::vector<double> question_word_length_;
  std::vector<double> question_code_length_;

  std::vector<UserStats> user_stats_;
  double global_median_response_ = 0.0;

  graph::Graph qa_graph_;
  graph::Graph dense_graph_;
  std::vector<double> qa_closeness_;
  std::vector<double> qa_betweenness_;
  std::vector<double> dense_closeness_;
  std::vector<double> dense_betweenness_;
};

}  // namespace forumcast::features
