// FeatureExtractor: computes x_{u,q} (Sec. II-B) over an inference window.
//
// Construction does all the heavy lifting once per window F(q): tokenizes the
// posts, trains LDA over the window's documents, folds in topic distributions
// for questions outside the window, aggregates per-user answering statistics,
// and builds both SLN graphs with their closeness/betweenness centralities.
// After that, features(u, q) is a cheap assembly per pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "artifact/artifact.hpp"
#include "forum/dataset.hpp"
#include "features/feature_layout.hpp"
#include "graph/centrality_engine.hpp"
#include "graph/graph.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"
#include "topics/lda.hpp"
#include "util/stats.hpp"

namespace forumcast::features {

struct ExtractorConfig {
  std::size_t num_topics = 8;  ///< K (paper default 8)
  topics::LdaConfig lda = {};  ///< .num_topics is overridden by `num_topics`
  /// Only posts with timestamp ≤ this cutoff join the LDA training corpus;
  /// later posts (and questions whose post lies beyond it) get folded-in
  /// topic distributions instead. The default (+inf) trains on the whole
  /// window — the batch behavior. The streaming layer uses a finite cutoff
  /// to rebuild reference state whose topic model matches a live extractor
  /// that was fitted before the streamed events existed (see stream/).
  double topic_corpus_cutoff_hours = std::numeric_limits<double>::infinity();
  /// How the four SLN centrality arrays are computed and refreshed. The
  /// default (exact) keeps every historical digest bit-identical; sampled
  /// mode swaps in pivot-sampled estimates with incremental dirty-region
  /// refreshes so streaming ingest stops paying O(V·E) per batch.
  graph::CentralityConfig centrality = {};
};

class FeatureExtractor {
 public:
  /// Builds caches over the window `inference_set` ⊆ dataset questions.
  /// Pairs may later be queried for *any* question in the dataset (questions
  /// outside the window get folded-in topic distributions), but only window
  /// activity contributes to user history and graphs — this is exactly the
  /// F(q) semantics of Sec. IV.
  FeatureExtractor(const forum::Dataset& dataset,
                   std::span<const forum::QuestionId> inference_set,
                   ExtractorConfig config = {});

  /// Full feature vector x_{u,q}, dimension 18 + 2K, paper ordering.
  std::vector<double> features(forum::UserId u, forum::QuestionId q) const;

  const FeatureLayout& layout() const { return layout_; }
  std::size_t dimension() const { return layout_.dimension(); }
  std::size_t num_topics() const { return config_.num_topics; }
  const ExtractorConfig& config() const { return config_; }

  const graph::Graph& qa_graph() const { return qa_graph_; }
  const graph::Graph& dense_graph() const { return dense_graph_; }
  const topics::Lda& lda() const { return lda_; }

  /// Per-user aggregates over the window, exposed for the descriptive
  /// analytics of paper Figs. 3–4.
  struct UserStats {
    std::size_t answers_provided = 0;                ///< a_u
    std::size_t questions_asked = 0;
    double net_answer_votes = 0.0;                   ///< v_u
    std::vector<double> answer_votes;                ///< each v(p) by u
    std::vector<double> response_times;              ///< each delay by u
    std::vector<double> topic_distribution;          ///< d_u
    std::vector<forum::QuestionId> answered;         ///< window questions answered
    std::vector<double> answered_votes;              ///< votes aligned with `answered`
    std::vector<forum::QuestionId> participated;     ///< sorted thread ids (ask or answer)
  };

  const UserStats& user_stats(forum::UserId u) const;
  std::span<const double> question_topics(forum::QuestionId q) const;
  double question_word_length(forum::QuestionId q) const;
  double question_code_length(forum::QuestionId q) const;
  std::span<const double> qa_closeness() const { return qa_closeness_; }
  std::span<const double> qa_betweenness() const { return qa_betweenness_; }
  std::span<const double> dense_closeness() const { return dense_closeness_; }
  std::span<const double> dense_betweenness() const { return dense_betweenness_; }

  /// Median response time r_u, falling back to the window-global median for
  /// users without window answers (and 0 when the window has none at all).
  double median_response_time(forum::UserId u) const;

  /// Thread co-occurrence count h_{u,v} over the window.
  double thread_cooccurrence(forum::UserId u, forum::UserId v) const;

  /// The window-global median response delay — the r_u fallback for users
  /// with no window answers. stream::LiveState watches it to know when that
  /// fallback shifted under answerless users.
  double global_median_response() const { return global_median_response_; }

  // --- Streaming update API (driven by stream::LiveState) ---
  //
  // These mutate the extractor in place as live events arrive, with the
  // invariant that after stream_refresh() the observable state (features,
  // aggregates, graphs, centralities) is bit-identical to constructing a
  // fresh extractor over the mutated dataset with the same window plus the
  // streamed question ids and `topic_corpus_cutoff_hours` set to the fit-time
  // corpus horizon. Callers must mutate the shared forum::Dataset *first*
  // (append_thread / append_answer / apply_vote) and synchronize externally:
  // none of these are safe to run concurrently with feature reads.

  /// True if `q` is part of the inference window (original or streamed).
  bool in_window(forum::QuestionId q) const;

  /// Registers the freshly appended dataset question `q` (topics fold-in,
  /// lengths, asker aggregates) and adds it to the window.
  void stream_add_question(forum::QuestionId q);

  /// Registers answer `answer_index` of window thread `q` (user aggregates,
  /// topic doc fold-in, incremental G_QA/G_D edges). Returns true if any new
  /// graph edge appeared — centralities are then stale until
  /// stream_refresh().
  bool stream_add_answer(forum::QuestionId q, std::size_t answer_index);

  /// Applies a vote delta to the aggregates tracking answer `answer_index`
  /// of window thread `q`. The dataset post must already carry the delta.
  void stream_apply_answer_vote(forum::QuestionId q, std::size_t answer_index,
                                int delta);

  /// Recomputes state invalidated by stream_add_answer: the topic profiles
  /// d_u of users with new answer documents and, if the graph structure
  /// changed, all four centrality arrays — exactly (full Brandes) in the
  /// default mode, or via the pivot engines' dirty-region refresh in
  /// sampled mode.
  void stream_refresh();

  /// Swaps the centrality config in (decode path / post-load override).
  /// Requires a quiesced graph; drops any sampled pivot caches, so the next
  /// sampled refresh starts with a full pivot rebuild at epoch 0.
  void set_centrality_config(const graph::CentralityConfig& config);

  /// Serializes the complete fitted state — config, topic model +
  /// vocabulary, per-question topic/length caches, per-user aggregates
  /// (including the streamed-document fold-in accumulators), both SLN
  /// graphs, and all four centrality arrays — into a model-bundle section
  /// body. Requires a quiesced extractor: no pending stream_refresh() work.
  void encode(artifact::Encoder& enc) const;

  /// Rebuilds an extractor over `dataset` (which must be the dataset the
  /// encoded one was built on — question/user counts are validated). No fit
  /// stage runs: every cached value is restored verbatim, so features(u, q)
  /// and streamed fold-ins are bit-identical to the encoded extractor.
  static std::unique_ptr<FeatureExtractor> decode(
      artifact::Decoder& dec, const forum::Dataset& dataset);

 private:
  /// Decode-path constructor: wires the dataset and config without running
  /// any fit stage; decode() fills every cache afterwards.
  struct DecodeTag {};
  FeatureExtractor(const forum::Dataset& dataset, ExtractorConfig config,
                   DecodeTag);

  std::vector<double> fold_question_topics(forum::QuestionId q) const;

  /// Recomputes all four centrality arrays from scratch: full Brandes in
  /// exact mode, full pivot rebuilds in sampled mode.
  void refresh_centrality_full(std::size_t threads);
  /// Sampled-mode incremental path: feeds the edges recorded since the last
  /// refresh into each engine's dirty-region recompute.
  void refresh_centrality_incremental(std::size_t threads);

  const forum::Dataset& dataset_;
  ExtractorConfig config_;
  FeatureLayout layout_;

  topics::Lda lda_;
  std::vector<std::vector<double>> question_topics_;  // per dataset question
  std::vector<double> question_word_length_;
  std::vector<double> question_code_length_;

  std::vector<UserStats> user_stats_;
  double global_median_response_ = 0.0;

  graph::Graph qa_graph_;
  graph::Graph dense_graph_;
  std::vector<double> qa_closeness_;
  std::vector<double> qa_betweenness_;
  std::vector<double> dense_closeness_;
  std::vector<double> dense_betweenness_;

  // Sampled-mode machinery: per-graph pivot engines plus the edges inserted
  // since the last refresh (the dirty region fed to the incremental
  // recompute). Unused — and empty — in exact mode.
  graph::CentralityEngine qa_centrality_engine_;
  graph::CentralityEngine dense_centrality_engine_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> qa_new_edges_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> dense_new_edges_;

  // Retained text/topic machinery so streamed posts can be folded in with
  // the vocabulary and topic-word counts of the original fit.
  text::Tokenizer tokenizer_;
  text::Vocabulary vocabulary_;
  bool has_corpus_ = false;
  std::vector<forum::QuestionId> window_;  // sorted window question ids

  // Raw (unscaled) per-user answer-document topic sums and counts. d_u is
  // always recomputed from these in the batch accumulation order — trained
  // corpus documents first, then folded documents sorted by (question,
  // answer index) — so incremental updates reproduce the rebuild bits.
  std::vector<std::vector<double>> user_topic_accum_;
  std::vector<std::size_t> user_doc_count_;
  struct StreamedDoc {
    forum::QuestionId question = 0;
    std::uint32_t answer_index = 0;
    std::vector<double> theta;
  };
  std::vector<std::vector<StreamedDoc>> user_streamed_docs_;
  std::vector<forum::UserId> topics_dirty_;

  // Global median over all window response delays, maintained as an exact
  // streaming sketch (bit-equal to util::median over the same multiset).
  util::StreamingMedian global_delay_sketch_;
  bool graph_dirty_ = false;
};

}  // namespace forumcast::features
