// FeatureExtractor artifact codec: the complete fitted-state inventory.
//
// Everything construction derives is restored verbatim — nothing is refit on
// decode, so a decoded extractor's features(u, q) and streamed fold-ins are
// bit-identical to the encoded one's. The only member not stored literally
// is the global-delay StreamingMedian sketch: its median (and every median
// after future adds) is determined by the multiset of delays, so it is
// rebuilt by re-adding the serialized per-user response times.
#include <cmath>
#include <utility>

#include "features/extractor.hpp"
#include "graph/serialize.hpp"
#include "text/serialize.hpp"
#include "util/check.hpp"

namespace forumcast::features {

namespace {

// The extractor body is format-versioned inside the bundle section so the
// aggregate inventory can evolve without a whole-bundle version bump.
constexpr std::uint32_t kExtractorFormat = 1;

void encode_question_ids(artifact::Encoder& enc,
                         std::span<const forum::QuestionId> ids) {
  enc.u64(ids.size());
  for (const forum::QuestionId id : ids) enc.u32(id);
}

std::vector<forum::QuestionId> decode_question_ids(artifact::Decoder& dec,
                                                   const char* field,
                                                   std::size_t bound) {
  const auto count = dec.u64(field);
  std::vector<forum::QuestionId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const forum::QuestionId id = dec.u32(field);
    FORUMCAST_CHECK_MSG(id < bound, "model bundle: " << field << " holds "
                                                     << id
                                                     << ", out of range (< "
                                                     << bound << ")");
    ids.push_back(id);
  }
  return ids;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const forum::Dataset& dataset,
                                   ExtractorConfig config, DecodeTag)
    : dataset_(dataset),
      config_(config),
      layout_(config.num_topics),
      lda_([&config] {
        topics::LdaConfig lda_config = config.lda;
        lda_config.num_topics = config.num_topics;
        return lda_config;
      }()),
      qa_graph_(0),
      dense_graph_(0),
      tokenizer_(text::TokenizerOptions{}) {}

void FeatureExtractor::encode(artifact::Encoder& enc) const {
  FORUMCAST_CHECK_MSG(topics_dirty_.empty() && !graph_dirty_,
                      "cannot encode an extractor with pending "
                      "stream_refresh() work");
  enc.u32(kExtractorFormat);

  // Config. The corpus cutoff legitimately defaults to +inf (train on the
  // whole window), which the strict f64 codec rejects — store finiteness
  // explicitly.
  enc.u64(config_.num_topics);
  const bool finite_cutoff = std::isfinite(config_.topic_corpus_cutoff_hours);
  enc.boolean(finite_cutoff);
  if (finite_cutoff) {
    enc.f64(config_.topic_corpus_cutoff_hours, "extractor corpus cutoff");
  }

  // Text/topic machinery for streamed fold-ins.
  text::encode_tokenizer_options(tokenizer_.options(), enc);
  text::encode_vocabulary(vocabulary_, enc);
  enc.boolean(has_corpus_);
  if (has_corpus_) lda_.encode(enc);

  // Window + per-question caches.
  encode_question_ids(enc, window_);
  enc.u64(question_topics_.size());
  for (const auto& topics : question_topics_) {
    enc.f64s(topics, "extractor question topics");
  }
  enc.f64s(question_word_length_, "extractor question word length");
  enc.f64s(question_code_length_, "extractor question code length");

  // Per-user aggregates (and the raw fold-in accumulators that keep
  // streamed updates bit-equal to a batch rebuild).
  enc.u64(user_stats_.size());
  for (std::size_t u = 0; u < user_stats_.size(); ++u) {
    const UserStats& stats = user_stats_[u];
    enc.u64(stats.answers_provided);
    enc.u64(stats.questions_asked);
    enc.f64(stats.net_answer_votes, "extractor net answer votes");
    enc.f64s(stats.answer_votes, "extractor answer votes");
    enc.f64s(stats.response_times, "extractor response times");
    enc.f64s(stats.topic_distribution, "extractor topic distribution");
    encode_question_ids(enc, stats.answered);
    enc.f64s(stats.answered_votes, "extractor answered votes");
    encode_question_ids(enc, stats.participated);

    enc.f64s(user_topic_accum_[u], "extractor topic accumulator");
    enc.u64(user_doc_count_[u]);
    enc.u64(user_streamed_docs_[u].size());
    for (const StreamedDoc& doc : user_streamed_docs_[u]) {
      enc.u64(doc.question);
      enc.u32(doc.answer_index);
      enc.f64s(doc.theta, "extractor streamed doc theta");
    }
  }
  enc.f64(global_median_response_, "extractor global median response");

  // SLN graphs + centralities.
  graph::encode_graph(qa_graph_, enc);
  graph::encode_graph(dense_graph_, enc);
  enc.f64s(qa_closeness_, "extractor qa closeness");
  enc.f64s(qa_betweenness_, "extractor qa betweenness");
  enc.f64s(dense_closeness_, "extractor dense closeness");
  enc.f64s(dense_betweenness_, "extractor dense betweenness");
}

std::unique_ptr<FeatureExtractor> FeatureExtractor::decode(
    artifact::Decoder& dec, const forum::Dataset& dataset) {
  const auto format = dec.u32("extractor format");
  FORUMCAST_CHECK_MSG(format == kExtractorFormat,
                      "unsupported extractor format " << format);

  ExtractorConfig config;
  config.num_topics = static_cast<std::size_t>(dec.u64("extractor num topics"));
  FORUMCAST_CHECK_MSG(config.num_topics >= 1,
                      "extractor num topics must be >= 1");
  if (dec.boolean("extractor corpus cutoff finite")) {
    config.topic_corpus_cutoff_hours = dec.f64("extractor corpus cutoff");
  }

  const text::TokenizerOptions tokenizer_options =
      text::decode_tokenizer_options(dec);
  auto vocabulary = text::decode_vocabulary(dec);
  const bool has_corpus = dec.boolean("extractor has corpus");

  std::unique_ptr<FeatureExtractor> extractor(
      new FeatureExtractor(dataset, config, DecodeTag{}));
  extractor->tokenizer_ = text::Tokenizer(tokenizer_options);
  extractor->vocabulary_ = std::move(vocabulary);
  extractor->has_corpus_ = has_corpus;
  if (has_corpus) {
    extractor->lda_ = topics::Lda::decode(dec);
    FORUMCAST_CHECK_MSG(
        extractor->lda_.num_topics() == config.num_topics,
        "extractor topic model has " << extractor->lda_.num_topics()
                                     << " topics, expected "
                                     << config.num_topics);
    FORUMCAST_CHECK_MSG(
        extractor->lda_.vocab_size() == extractor->vocabulary_.size(),
        "extractor topic model vocabulary size "
            << extractor->lda_.vocab_size() << " != "
            << extractor->vocabulary_.size() << " stored tokens");
    // config_.lda drives nothing after construction (the fitted Lda carries
    // its own config), but keep them coherent for introspection.
    extractor->config_.lda = extractor->lda_.config();
  }

  const std::size_t num_questions = dataset.num_questions();
  const std::size_t num_users = dataset.num_users();

  extractor->window_ =
      decode_question_ids(dec, "extractor window", num_questions);
  for (std::size_t i = 1; i < extractor->window_.size(); ++i) {
    FORUMCAST_CHECK_MSG(
        extractor->window_[i - 1] < extractor->window_[i],
        "extractor window is not a sorted set of dataset question ids");
  }

  const auto stored_questions = dec.u64("extractor question count");
  FORUMCAST_CHECK_MSG(stored_questions == num_questions,
                      "extractor was saved over " << stored_questions
                                                  << " questions, dataset has "
                                                  << num_questions);
  extractor->question_topics_.reserve(num_questions);
  for (std::size_t q = 0; q < num_questions; ++q) {
    auto topics = dec.f64s("extractor question topics");
    FORUMCAST_CHECK_MSG(topics.size() == config.num_topics,
                        "extractor question topics row has "
                            << topics.size() << " entries, expected "
                            << config.num_topics);
    extractor->question_topics_.push_back(std::move(topics));
  }
  extractor->question_word_length_ =
      dec.f64s("extractor question word length");
  extractor->question_code_length_ =
      dec.f64s("extractor question code length");
  FORUMCAST_CHECK_MSG(
      extractor->question_word_length_.size() == num_questions &&
          extractor->question_code_length_.size() == num_questions,
      "extractor question length caches do not cover the dataset");

  const auto stored_users = dec.u64("extractor user count");
  FORUMCAST_CHECK_MSG(stored_users == num_users,
                      "extractor was saved over " << stored_users
                                                  << " users, dataset has "
                                                  << num_users);
  extractor->user_stats_.resize(num_users);
  extractor->user_topic_accum_.resize(num_users);
  extractor->user_doc_count_.resize(num_users);
  extractor->user_streamed_docs_.resize(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    UserStats& stats = extractor->user_stats_[u];
    stats.answers_provided =
        static_cast<std::size_t>(dec.u64("extractor answers provided"));
    stats.questions_asked =
        static_cast<std::size_t>(dec.u64("extractor questions asked"));
    stats.net_answer_votes = dec.f64("extractor net answer votes");
    stats.answer_votes = dec.f64s("extractor answer votes");
    stats.response_times = dec.f64s("extractor response times");
    stats.topic_distribution = dec.f64s("extractor topic distribution");
    FORUMCAST_CHECK_MSG(stats.topic_distribution.size() == config.num_topics,
                        "extractor topic distribution has "
                            << stats.topic_distribution.size()
                            << " entries, expected " << config.num_topics);
    stats.answered =
        decode_question_ids(dec, "extractor answered", num_questions);
    stats.answered_votes = dec.f64s("extractor answered votes");
    stats.participated =
        decode_question_ids(dec, "extractor participated", num_questions);
    FORUMCAST_CHECK_MSG(
        stats.answered.size() == stats.answered_votes.size() &&
            stats.answered.size() == stats.answer_votes.size() &&
            stats.answered.size() == stats.response_times.size(),
        "extractor per-answer lists are misaligned for user " << u);

    extractor->user_topic_accum_[u] = dec.f64s("extractor topic accumulator");
    FORUMCAST_CHECK_MSG(
        extractor->user_topic_accum_[u].size() == config.num_topics,
        "extractor topic accumulator has "
            << extractor->user_topic_accum_[u].size() << " entries, expected "
            << config.num_topics);
    extractor->user_doc_count_[u] =
        static_cast<std::size_t>(dec.u64("extractor doc count"));
    const auto streamed = dec.u64("extractor streamed doc count");
    auto& docs = extractor->user_streamed_docs_[u];
    docs.reserve(static_cast<std::size_t>(streamed));
    for (std::uint64_t d = 0; d < streamed; ++d) {
      StreamedDoc doc;
      doc.question = static_cast<forum::QuestionId>(
          dec.u64("extractor streamed doc question"));
      doc.answer_index = dec.u32("extractor streamed doc answer index");
      doc.theta = dec.f64s("extractor streamed doc theta");
      FORUMCAST_CHECK_MSG(doc.theta.size() == config.num_topics,
                          "extractor streamed doc theta has "
                              << doc.theta.size() << " entries, expected "
                              << config.num_topics);
      docs.push_back(std::move(doc));
    }

    // Rebuild the global-delay sketch: the median is multiset-determined,
    // so re-adding per-user delays (any order) reproduces every future
    // median bit-exactly.
    for (const double delay : stats.response_times) {
      extractor->global_delay_sketch_.add(delay);
    }
  }
  extractor->global_median_response_ =
      dec.f64("extractor global median response");

  extractor->qa_graph_ = graph::decode_graph(dec);
  extractor->dense_graph_ = graph::decode_graph(dec);
  FORUMCAST_CHECK_MSG(
      extractor->qa_graph_.node_count() == num_users &&
          extractor->dense_graph_.node_count() == num_users,
      "extractor SLN graphs do not cover the dataset's users");
  extractor->qa_closeness_ = dec.f64s("extractor qa closeness");
  extractor->qa_betweenness_ = dec.f64s("extractor qa betweenness");
  extractor->dense_closeness_ = dec.f64s("extractor dense closeness");
  extractor->dense_betweenness_ = dec.f64s("extractor dense betweenness");
  FORUMCAST_CHECK_MSG(
      extractor->qa_closeness_.size() == num_users &&
          extractor->qa_betweenness_.size() == num_users &&
          extractor->dense_closeness_.size() == num_users &&
          extractor->dense_betweenness_.size() == num_users,
      "extractor centrality arrays do not cover the dataset's users");
  return extractor;
}

}  // namespace forumcast::features
