#include "features/feature_layout.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace forumcast::features {

const std::array<FeatureId, kFeatureCount>& all_features() {
  static const std::array<FeatureId, kFeatureCount> kAll = {
      FeatureId::AnswersProvided,
      FeatureId::AnswerRatio,
      FeatureId::NetAnswerVotes,
      FeatureId::MedianResponseTime,
      FeatureId::TopicsAnswered,
      FeatureId::NetQuestionVotes,
      FeatureId::QuestionWordLength,
      FeatureId::QuestionCodeLength,
      FeatureId::TopicsAsked,
      FeatureId::UserQuestionTopicSimilarity,
      FeatureId::TopicWeightedQuestionsAnswered,
      FeatureId::TopicWeightedAnswerVotes,
      FeatureId::UserUserTopicSimilarity,
      FeatureId::ThreadCooccurrence,
      FeatureId::QaCloseness,
      FeatureId::QaBetweenness,
      FeatureId::QaResourceAllocation,
      FeatureId::DenseCloseness,
      FeatureId::DenseBetweenness,
      FeatureId::DenseResourceAllocation,
  };
  return kAll;
}

FeatureGroup feature_group(FeatureId id) {
  switch (id) {
    case FeatureId::AnswersProvided:
    case FeatureId::AnswerRatio:
    case FeatureId::NetAnswerVotes:
    case FeatureId::MedianResponseTime:
    case FeatureId::TopicsAnswered:
      return FeatureGroup::User;
    case FeatureId::NetQuestionVotes:
    case FeatureId::QuestionWordLength:
    case FeatureId::QuestionCodeLength:
    case FeatureId::TopicsAsked:
      return FeatureGroup::Question;
    case FeatureId::UserQuestionTopicSimilarity:
    case FeatureId::TopicWeightedQuestionsAnswered:
    case FeatureId::TopicWeightedAnswerVotes:
      return FeatureGroup::UserQuestion;
    case FeatureId::UserUserTopicSimilarity:
    case FeatureId::ThreadCooccurrence:
    case FeatureId::QaCloseness:
    case FeatureId::QaBetweenness:
    case FeatureId::QaResourceAllocation:
    case FeatureId::DenseCloseness:
    case FeatureId::DenseBetweenness:
    case FeatureId::DenseResourceAllocation:
      return FeatureGroup::Social;
  }
  return FeatureGroup::Social;
}

std::string feature_name(FeatureId id) {
  switch (id) {
    case FeatureId::AnswersProvided: return "a_u";
    case FeatureId::AnswerRatio: return "o_u";
    case FeatureId::NetAnswerVotes: return "v_u";
    case FeatureId::MedianResponseTime: return "r_u";
    case FeatureId::TopicsAnswered: return "d_u";
    case FeatureId::NetQuestionVotes: return "v_q";
    case FeatureId::QuestionWordLength: return "x_q";
    case FeatureId::QuestionCodeLength: return "c_q";
    case FeatureId::TopicsAsked: return "d_q";
    case FeatureId::UserQuestionTopicSimilarity: return "s_uq";
    case FeatureId::TopicWeightedQuestionsAnswered: return "g_uq";
    case FeatureId::TopicWeightedAnswerVotes: return "e_uq";
    case FeatureId::UserUserTopicSimilarity: return "s_uv";
    case FeatureId::ThreadCooccurrence: return "h_uv";
    case FeatureId::QaCloseness: return "l^QA_u";
    case FeatureId::QaBetweenness: return "b^QA_u";
    case FeatureId::QaResourceAllocation: return "Re^QA_uv";
    case FeatureId::DenseCloseness: return "l^D_u";
    case FeatureId::DenseBetweenness: return "b^D_u";
    case FeatureId::DenseResourceAllocation: return "Re^D_uv";
  }
  return "?";
}

std::string group_name(FeatureGroup group) {
  switch (group) {
    case FeatureGroup::User: return "user";
    case FeatureGroup::Question: return "question";
    case FeatureGroup::UserQuestion: return "user-question";
    case FeatureGroup::Social: return "social";
  }
  return "?";
}

FeatureLayout::FeatureLayout(std::size_t num_topics) : num_topics_(num_topics) {
  FORUMCAST_CHECK(num_topics_ > 0);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    const FeatureId id = all_features()[i];
    offsets_[i] = offset;
    offset += width(id);
  }
  dimension_ = offset;
}

std::size_t FeatureLayout::offset(FeatureId id) const {
  const auto& all = all_features();
  const auto it = std::find(all.begin(), all.end(), id);
  FORUMCAST_CHECK(it != all.end());
  return offsets_[static_cast<std::size_t>(it - all.begin())];
}

std::size_t FeatureLayout::width(FeatureId id) const {
  return (id == FeatureId::TopicsAnswered || id == FeatureId::TopicsAsked)
             ? num_topics_
             : 1;
}

std::vector<std::size_t> FeatureLayout::columns_excluding(
    const std::vector<FeatureId>& excluded) const {
  std::vector<bool> drop(dimension_, false);
  for (FeatureId id : excluded) {
    const std::size_t start = offset(id);
    for (std::size_t c = 0; c < width(id); ++c) drop[start + c] = true;
  }
  std::vector<std::size_t> kept;
  kept.reserve(dimension_);
  for (std::size_t c = 0; c < dimension_; ++c) {
    if (!drop[c]) kept.push_back(c);
  }
  FORUMCAST_CHECK_MSG(!kept.empty(), "cannot exclude every feature");
  return kept;
}

std::vector<FeatureId> FeatureLayout::features_in_group(FeatureGroup group) {
  std::vector<FeatureId> ids;
  for (FeatureId id : all_features()) {
    if (feature_group(id) == group) ids.push_back(id);
  }
  return ids;
}

std::vector<double> FeatureLayout::project(
    const std::vector<double>& full, const std::vector<std::size_t>& columns) {
  std::vector<double> reduced;
  reduced.reserve(columns.size());
  for (std::size_t c : columns) {
    FORUMCAST_CHECK(c < full.size());
    reduced.push_back(full[c]);
  }
  return reduced;
}

}  // namespace forumcast::features
