// The 20 features of Sec. II-B: identifiers, groups, and vector layout.
//
// The feature vector x_{u,q} has dimension 18 + 2K: eighteen scalars plus two
// K-dimensional topic distributions (topics answered d_u and topics asked
// d_q). FeatureLayout maps each feature to its column range so the ablation
// experiments (paper Figs. 6 and 7) can drop features or whole groups.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace forumcast::features {

enum class FeatureId {
  // User features (i)–(v)
  AnswersProvided = 0,      ///< a_u
  AnswerRatio,              ///< o_u
  NetAnswerVotes,           ///< v_u
  MedianResponseTime,       ///< r_u
  TopicsAnswered,           ///< d_u (K columns)
  // Question features (vi)–(ix)
  NetQuestionVotes,         ///< v_q
  QuestionWordLength,       ///< x_q
  QuestionCodeLength,       ///< c_q
  TopicsAsked,              ///< d_q (K columns)
  // User-question features (x)–(xii)
  UserQuestionTopicSimilarity,     ///< s_{u,q}
  TopicWeightedQuestionsAnswered,  ///< g_{u,q}
  TopicWeightedAnswerVotes,        ///< e_{u,q}
  // Social features (xiii)–(xx)
  UserUserTopicSimilarity,  ///< s_{u,v}, v = asker
  ThreadCooccurrence,       ///< h_{u,v}
  QaCloseness,              ///< l^QA_u
  QaBetweenness,            ///< b^QA_u
  QaResourceAllocation,     ///< Re^QA_{u,v}
  DenseCloseness,           ///< l^D_u
  DenseBetweenness,         ///< b^D_u
  DenseResourceAllocation,  ///< Re^D_{u,v}
};

inline constexpr std::size_t kFeatureCount = 20;

enum class FeatureGroup { User, Question, UserQuestion, Social };

/// All 20 feature ids in paper order.
const std::array<FeatureId, kFeatureCount>& all_features();

FeatureGroup feature_group(FeatureId id);

/// Paper symbol, e.g. "a_u", "Re^QA_{u,v}".
std::string feature_name(FeatureId id);

std::string group_name(FeatureGroup group);

/// Column layout of x_{u,q} for a given topic count K.
class FeatureLayout {
 public:
  explicit FeatureLayout(std::size_t num_topics);

  std::size_t num_topics() const { return num_topics_; }
  std::size_t dimension() const { return dimension_; }

  std::size_t offset(FeatureId id) const;
  /// 1 for scalars, K for the two topic-distribution features.
  std::size_t width(FeatureId id) const;

  /// Columns kept when `excluded` features are removed, in original order.
  std::vector<std::size_t> columns_excluding(
      const std::vector<FeatureId>& excluded) const;

  /// Convenience: every feature belonging to `group`.
  static std::vector<FeatureId> features_in_group(FeatureGroup group);

  /// Projects a full vector onto the given columns.
  static std::vector<double> project(const std::vector<double>& full,
                                     const std::vector<std::size_t>& columns);

 private:
  std::size_t num_topics_;
  std::size_t dimension_;
  std::array<std::size_t, kFeatureCount> offsets_{};
};

}  // namespace forumcast::features
