#include "forum/dataset.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace forumcast::forum {

Dataset::Dataset(std::vector<Thread> threads, std::size_t num_users)
    : threads_(std::move(threads)), num_users_(num_users) {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    auto& thread = threads_[i];
    thread.id = static_cast<QuestionId>(i);
    FORUMCAST_CHECK(thread.question.creator < num_users_);
    for (const auto& answer : thread.answers) {
      FORUMCAST_CHECK(answer.creator < num_users_);
    }
    std::sort(thread.answers.begin(), thread.answers.end(),
              [](const Post& a, const Post& b) {
                return a.timestamp_hours < b.timestamp_hours;
              });
  }
}

const Thread& Dataset::thread(QuestionId q) const {
  FORUMCAST_CHECK(q < threads_.size());
  return threads_[q];
}

Dataset Dataset::preprocessed() const {
  std::vector<Thread> kept;
  kept.reserve(threads_.size());
  for (const auto& thread : threads_) {
    Thread cleaned;
    cleaned.question = thread.question;
    // Highest-voted answer per user; simultaneous-with-question answers drop.
    std::unordered_map<UserId, const Post*> best;
    for (const auto& answer : thread.answers) {
      if (answer.timestamp_hours <= thread.question.timestamp_hours) continue;
      auto [it, inserted] = best.emplace(answer.creator, &answer);
      if (!inserted && answer.net_votes > it->second->net_votes) {
        it->second = &answer;
      }
    }
    if (best.empty()) continue;  // question never answered
    for (const auto& [user, post] : best) cleaned.answers.push_back(*post);
    std::sort(cleaned.answers.begin(), cleaned.answers.end(),
              [](const Post& a, const Post& b) {
                return a.timestamp_hours < b.timestamp_hours;
              });
    kept.push_back(std::move(cleaned));
  }
  std::sort(kept.begin(), kept.end(), [](const Thread& a, const Thread& b) {
    return a.question.timestamp_hours < b.question.timestamp_hours;
  });
  return Dataset(std::move(kept), num_users_);
}

std::vector<AnsweredPair> Dataset::answered_pairs() const {
  std::vector<AnsweredPair> pairs;
  for (const auto& thread : threads_) {
    for (const auto& answer : thread.answers) {
      pairs.push_back({answer.creator, thread.id,
                       answer.timestamp_hours - thread.question.timestamp_hours,
                       answer.net_votes});
    }
  }
  return pairs;
}

std::vector<AnsweredPair> Dataset::answered_pairs(
    std::span<const QuestionId> questions) const {
  std::vector<AnsweredPair> pairs;
  for (QuestionId q : questions) {
    const Thread& thread = this->thread(q);
    for (const auto& answer : thread.answers) {
      pairs.push_back({answer.creator, thread.id,
                       answer.timestamp_hours - thread.question.timestamp_hours,
                       answer.net_votes});
    }
  }
  return pairs;
}

DatasetStats Dataset::stats() const {
  DatasetStats stats;
  std::unordered_set<UserId> askers, answerers, all;
  std::size_t answers = 0;
  for (const auto& thread : threads_) {
    askers.insert(thread.question.creator);
    all.insert(thread.question.creator);
    for (const auto& answer : thread.answers) {
      answerers.insert(answer.creator);
      all.insert(answer.creator);
      ++answers;
    }
  }
  stats.questions = threads_.size();
  stats.answers = answers;
  stats.askers = askers.size();
  stats.answerers = answerers.size();
  stats.distinct_users = all.size();
  const double cells = static_cast<double>(answerers.size()) *
                       static_cast<double>(threads_.size());
  stats.answer_matrix_density = cells > 0.0 ? static_cast<double>(answers) / cells : 0.0;
  return stats;
}

std::vector<QuestionId> Dataset::questions_chronological() const {
  std::vector<QuestionId> order(threads_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<QuestionId>(i);
  std::sort(order.begin(), order.end(), [&](QuestionId a, QuestionId b) {
    return threads_[a].question.timestamp_hours < threads_[b].question.timestamp_hours;
  });
  return order;
}

std::vector<QuestionId> Dataset::questions_in_days(int first_day, int last_day) const {
  FORUMCAST_CHECK(first_day >= 1 && first_day <= last_day);
  const double lo = static_cast<double>(first_day - 1) * 24.0;
  const double hi = static_cast<double>(last_day) * 24.0;
  std::vector<QuestionId> selected;
  for (const auto& thread : threads_) {
    const double t = thread.question.timestamp_hours;
    if (t >= lo && t < hi) selected.push_back(thread.id);
  }
  return selected;
}

QuestionId Dataset::append_thread(Post question) {
  FORUMCAST_CHECK(question.creator < num_users_);
  Thread thread;
  thread.id = static_cast<QuestionId>(threads_.size());
  thread.question = std::move(question);
  threads_.push_back(std::move(thread));
  return threads_.back().id;
}

std::size_t Dataset::append_answer(QuestionId q, Post answer) {
  FORUMCAST_CHECK(q < threads_.size());
  FORUMCAST_CHECK(answer.creator < num_users_);
  Thread& thread = threads_[q];
  FORUMCAST_CHECK_MSG(
      answer.timestamp_hours >= thread.question.timestamp_hours,
      "streamed answer precedes its question");
  FORUMCAST_CHECK_MSG(thread.answers.empty() ||
                          answer.timestamp_hours >=
                              thread.answers.back().timestamp_hours,
                      "streamed answer out of time order");
  thread.answers.push_back(std::move(answer));
  return thread.answers.size() - 1;
}

void Dataset::apply_vote(QuestionId q, int answer_index, int delta) {
  FORUMCAST_CHECK(q < threads_.size());
  Thread& thread = threads_[q];
  if (answer_index < 0) {
    thread.question.net_votes += delta;
    return;
  }
  FORUMCAST_CHECK(static_cast<std::size_t>(answer_index) < thread.answers.size());
  thread.answers[static_cast<std::size_t>(answer_index)].net_votes += delta;
}

double Dataset::last_post_time() const {
  double last = 0.0;
  for (const auto& thread : threads_) {
    last = std::max(last, thread.question.timestamp_hours);
    for (const auto& answer : thread.answers) {
      last = std::max(last, answer.timestamp_hours);
    }
  }
  return last;
}

}  // namespace forumcast::forum
