// The question-thread dataset plus the preprocessing of Sec. III-A and the
// windowing helpers (Ω partitions, F(q) inference sets) used in Sec. IV.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "forum/post.hpp"

namespace forumcast::forum {

/// One observed (u, q) pair with a_{u,q} = 1: the prediction targets.
struct AnsweredPair {
  UserId user = 0;
  QuestionId question = 0;
  double delay_hours = 0.0;  ///< r_{u,q} = t(answer) − t(question)
  int votes = 0;             ///< v_{u,q}
};

/// Headline dataset counts (paper Sec. III-A reports these for Stack Overflow).
struct DatasetStats {
  std::size_t questions = 0;
  std::size_t answers = 0;
  std::size_t askers = 0;
  std::size_t answerers = 0;
  std::size_t distinct_users = 0;
  double answer_matrix_density = 0.0;  ///< share of 1s in A over answerers × questions
};

class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of threads; `num_users` bounds all creator ids.
  Dataset(std::vector<Thread> threads, std::size_t num_users);

  std::size_t num_users() const { return num_users_; }
  std::size_t num_questions() const { return threads_.size(); }
  const std::vector<Thread>& threads() const { return threads_; }
  const Thread& thread(QuestionId q) const;

  /// Applies the paper's preprocessing: drops questions with no answers,
  /// keeps only the highest-voted answer per (user, question), and removes
  /// answers posted at (or before) the question timestamp. Thread ids are
  /// re-assigned contiguously in chronological question order.
  Dataset preprocessed() const;

  /// All (u, q) pairs with a_{u,q} = 1, in thread order.
  std::vector<AnsweredPair> answered_pairs() const;

  /// Answered pairs restricted to the given question ids.
  std::vector<AnsweredPair> answered_pairs(std::span<const QuestionId> questions) const;

  DatasetStats stats() const;

  /// Question ids sorted by question timestamp (the chronological order the
  /// paper uses for F(q) = {q' : q' ≤ q}).
  std::vector<QuestionId> questions_chronological() const;

  /// Question ids whose question timestamp lies in day ∈ [first_day, last_day]
  /// (1-based days of the 30-day collection window, inclusive).
  std::vector<QuestionId> questions_in_days(int first_day, int last_day) const;

  /// Timestamp of the last post anywhere in the dataset (the paper's T).
  double last_post_time() const;

  // --- Streaming mutation API (src/stream/) ---
  // The live ingestion path grows a dataset in place instead of rebuilding
  // it. Mutators preserve every constructor invariant (creator bounds,
  // answers sorted by timestamp) so readers holding a reference — the
  // extractor, the pipeline — always observe a valid snapshot. They do NOT
  // re-id or re-sort threads: new questions take the next contiguous id.

  /// Appends a new question thread (no answers yet) and returns its id.
  QuestionId append_thread(Post question);

  /// Appends an answer to thread `q`; the timestamp must not precede the
  /// question's or the thread's last answer (streaming events arrive in
  /// time order). Returns the answer's index within the thread.
  std::size_t append_answer(QuestionId q, Post answer);

  /// Applies a vote delta to the question post (`answer_index` < 0) or to
  /// the answer at `answer_index`.
  void apply_vote(QuestionId q, int answer_index, int delta);

 private:
  std::vector<Thread> threads_;
  std::size_t num_users_ = 0;
};

}  // namespace forumcast::forum
