#include "forum/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "topics/topic_math.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::forum {

namespace {

// Sparse ground-truth topic-word distributions: each topic prefers a distinct
// band of the vocabulary so topics are recoverable by LDA.
std::vector<std::vector<double>> make_topic_word_dists(std::size_t num_topics,
                                                       std::size_t vocab,
                                                       util::Rng& rng) {
  std::vector<std::vector<double>> phi(num_topics);
  const std::size_t band = vocab / num_topics;
  for (std::size_t k = 0; k < num_topics; ++k) {
    std::vector<double> weights(vocab, 0.02);
    const std::size_t start = k * band;
    const std::size_t end = (k + 1 == num_topics) ? vocab : start + band;
    for (std::size_t w = start; w < end; ++w) {
      weights[w] = 1.0 + 4.0 * rng.uniform();
    }
    double total = 0.0;
    for (double w : weights) total += w;
    for (double& w : weights) w /= total;
    phi[k] = std::move(weights);
  }
  return phi;
}

// Synthetic vocabulary token; alphanumeric so the tokenizer keeps it intact.
std::string word_token(std::size_t index) { return "w" + std::to_string(index); }

// Emits `char_budget` characters of topic-conditioned prose.
std::string emit_words(std::span<const double> topic_mix,
                       const std::vector<std::vector<double>>& phi,
                       double char_budget, util::Rng& rng) {
  std::string text;
  while (static_cast<double>(text.size()) < char_budget) {
    const std::size_t k = rng.categorical(topic_mix);
    const std::size_t w = rng.categorical(phi[k]);
    if (!text.empty()) text += ' ';
    text += word_token(w);
  }
  return text;
}

// Emits code-looking characters (identifiers, punctuation, newlines).
std::string emit_code(double char_budget, util::Rng& rng) {
  static constexpr std::string_view kFragments[] = {
      "for i in range(n):", "import numpy as np", "def f(x):",
      "return x + 1",       "print(result)",      "x = [v for v in xs]",
      "try:",               "except ValueError:", "df.groupby('k').sum()",
      "while queue:",       "class Node:",        "self.value = value",
  };
  std::string code;
  while (static_cast<double>(code.size()) < char_budget) {
    code += kFragments[rng.uniform_index(std::size(kFragments))];
    code += '\n';
  }
  return code;
}

std::string make_body(const std::string& words, const std::string& code) {
  std::string body = "<p>" + words + "</p>";
  if (!code.empty()) {
    body += "<pre><code>" + code + "</code></pre>";
  }
  return body;
}

double lognormal(util::Rng& rng, double median, double sigma) {
  return median * std::exp(sigma * rng.normal());
}

}  // namespace

SynthForum generate_forum(const GeneratorConfig& config) {
  FORUMCAST_CHECK(config.num_users >= 10);
  FORUMCAST_CHECK(config.num_questions >= 1);
  FORUMCAST_CHECK(config.num_topics >= 2);
  FORUMCAST_CHECK(config.vocab_words >= config.num_topics);
  FORUMCAST_CHECK(config.days > 0.0);

  util::Rng rng(config.seed);
  const std::size_t K = config.num_topics;
  const double horizon = config.days * 24.0;

  const auto phi = make_topic_word_dists(K, config.vocab_words, rng);

  GroundTruth truth;
  truth.user_interest.reserve(config.num_users);
  truth.user_activity.reserve(config.num_users);
  truth.user_expertise.reserve(config.num_users);
  truth.user_speed_scale.reserve(config.num_users);
  std::vector<double> ask_weight(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    truth.user_interest.push_back(rng.dirichlet_symmetric(K, 0.25));
    const double activity = std::exp(config.activity_sigma * rng.normal());
    truth.user_activity.push_back(activity);
    truth.user_expertise.push_back(rng.normal(0.0, config.expertise_sigma));
    // Active users answer faster (paper Fig. 4b): speed scale shrinks with
    // activity. Delay itself is drawn independently of expertise so votes
    // and timing stay uncorrelated (paper Fig. 3).
    truth.user_speed_scale.push_back(std::exp(0.7 * rng.normal()) /
                                     (1.0 + std::log1p(activity)));
    ask_weight[u] = std::exp(0.9 * rng.normal());
  }

  // Question arrival times: uniform order statistics over the window.
  std::vector<double> arrivals(config.num_questions);
  for (double& t : arrivals) t = rng.uniform(0.0, horizon);
  std::sort(arrivals.begin(), arrivals.end());

  // Social memory: co-occurrence counts between user pairs, built causally.
  std::unordered_map<std::uint64_t, int> ties;
  auto tie_key = [](UserId a, UserId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  auto tie_count = [&](UserId a, UserId b) {
    const auto it = ties.find(tie_key(a, b));
    return it == ties.end() ? 0 : it->second;
  };

  std::vector<Thread> threads;
  threads.reserve(config.num_questions);
  std::vector<double> score(config.num_users);

  for (std::size_t qi = 0; qi < config.num_questions; ++qi) {
    Thread thread;
    const auto asker = static_cast<UserId>(rng.categorical(ask_weight));

    // Question topics: the asker's interests blended with fresh noise.
    const auto noise = rng.dirichlet_symmetric(K, 0.3);
    std::vector<double> q_topics(K);
    for (std::size_t k = 0; k < K; ++k) {
      q_topics[k] = 0.55 * truth.user_interest[asker][k] + 0.45 * noise[k];
    }

    const double popularity = std::exp(0.8 * rng.normal());
    const double word_chars =
        lognormal(rng, config.median_word_chars, config.word_chars_sigma);
    const double code_chars =
        rng.bernoulli(config.no_code_fraction)
            ? 0.0
            : lognormal(rng, config.median_code_chars, config.code_chars_sigma);

    thread.question.creator = asker;
    thread.question.timestamp_hours = arrivals[qi];
    thread.question.net_votes =
        std::max(-6, rng.poisson(1.2 * popularity) - rng.poisson(0.4));
    thread.question.body_html = make_body(
        emit_words(q_topics, phi, word_chars, rng), emit_code(code_chars, rng));

    // Decide answer count, then pick answerers by activity × topic match ×
    // social-tie preference (sampled without replacement).
    std::size_t num_answers = 0;
    if (!rng.bernoulli(config.unanswered_fraction)) {
      num_answers = 1 + static_cast<std::size_t>(
                            rng.poisson(config.mean_extra_answers));
    }
    num_answers = std::min(num_answers, config.num_users - 1);

    if (num_answers > 0) {
      for (std::size_t u = 0; u < config.num_users; ++u) {
        if (u == asker) {
          score[u] = 0.0;
          continue;
        }
        const double match = topics::total_variation_similarity(
            truth.user_interest[u], q_topics);
        const double tie_boost =
            1.0 + config.social_tie_bonus *
                      std::min(3, tie_count(static_cast<UserId>(u), asker));
        score[u] = truth.user_activity[u] *
                   (0.05 + std::pow(match, config.topic_match_weight)) *
                   tie_boost;
      }
      for (std::size_t a = 0; a < num_answers; ++a) {
        const auto answerer = static_cast<UserId>(rng.categorical(score));
        score[answerer] = 0.0;  // without replacement

        Post answer;
        answer.creator = answerer;
        // Delay: lognormal around the user's speed scale. Independent of
        // expertise by construction.
        double delay = lognormal(rng, config.median_delay_hours *
                                          truth.user_speed_scale[answerer],
                                 config.delay_sigma);
        const double remaining = horizon - thread.question.timestamp_hours;
        if (delay >= remaining) {
          delay = remaining * rng.uniform(0.05, 0.95);
        }
        answer.timestamp_hours = thread.question.timestamp_hours + delay;
        const double quality = 0.9 * truth.user_expertise[answerer] +
                               0.6 * popularity + rng.normal(0.0, 1.0);
        answer.net_votes =
            std::max(-6, static_cast<int>(std::lround(quality)));

        // Answer text: blend of the answerer's interests and the question.
        std::vector<double> a_topics(K);
        for (std::size_t k = 0; k < K; ++k) {
          a_topics[k] =
              0.5 * truth.user_interest[answerer][k] + 0.5 * q_topics[k];
        }
        const double a_words =
            lognormal(rng, 0.6 * config.median_word_chars, config.word_chars_sigma);
        const double a_code =
            rng.bernoulli(0.5)
                ? 0.0
                : lognormal(rng, 0.8 * config.median_code_chars,
                            config.code_chars_sigma);
        answer.body_html =
            make_body(emit_words(a_topics, phi, a_words, rng), emit_code(a_code, rng));
        thread.answers.push_back(std::move(answer));
      }
      // Update social memory with this thread's participants.
      for (const auto& answer : thread.answers) {
        ++ties[tie_key(asker, answer.creator)];
        for (const auto& other : thread.answers) {
          if (other.creator < answer.creator) {
            ++ties[tie_key(other.creator, answer.creator)];
          }
        }
      }
    }

    truth.question_topics.push_back(std::move(q_topics));
    truth.question_popularity.push_back(popularity);
    threads.push_back(std::move(thread));
  }

  SynthForum result{Dataset(std::move(threads), config.num_users), std::move(truth)};
  return result;
}

}  // namespace forumcast::forum
