// Synthetic Stack Overflow workload generator.
//
// Substitute for the paper's 30-day "Python"-tag Stack Overflow crawl
// (Sec. III-A), which is not redistributable. The generator produces a forum
// whose code paths and descriptive statistics match the paper's dataset:
//
//  * ~40 % of raw questions never get an answer (20,923 → 12,488 kept);
//  * mean answers per answered question ≈ 1.5; answer matrix density ~1e-3
//    at paper scale (the paper reports 0.03 % over 5,234 answerers);
//  * ≈40 % of answerers provide ≥2 answers, more active users answer faster
//    (paper Fig. 4b), while answer votes are driven by user expertise and
//    question popularity and are *independent of delay* (paper Fig. 3);
//  * posts carry word text and <code> blocks with ~300-char medians and
//    higher code-length variance (paper Fig. 4e);
//  * topical structure comes from ground-truth topic-word distributions so
//    the LDA stage has real signal to recover;
//  * social ties accumulate: users who co-occurred in earlier threads are
//    more likely to answer each other again, giving the SLN graphs the
//    disconnected, high-variance shape of paper Fig. 2.
#pragma once

#include <cstdint>
#include <vector>

#include "forum/dataset.hpp"

namespace forumcast::forum {

struct GeneratorConfig {
  std::size_t num_users = 3000;
  std::size_t num_questions = 2500;
  std::size_t num_topics = 8;     ///< ground-truth topics (independent of LDA's K)
  std::size_t vocab_words = 900;  ///< generative word vocabulary size
  double days = 30.0;
  std::uint64_t seed = 2026;

  double unanswered_fraction = 0.40;        ///< questions that get no answer
  double mean_extra_answers = 0.5;          ///< answers per answered question = 1 + Poisson(this)
  double activity_sigma = 1.3;              ///< lognormal spread of answer propensity
  double topic_match_weight = 2.0;          ///< exponent on user-question topic match
  double social_tie_bonus = 1.5;            ///< preference boost per prior co-occurrence
  double median_delay_hours = 1.0;          ///< median response delay of the median user
  double delay_sigma = 1.6;                 ///< lognormal spread of delays (heavy tail)
  double expertise_sigma = 1.5;             ///< spread of user answer-quality skill
  double median_word_chars = 300.0;         ///< paper Fig. 4e
  double median_code_chars = 300.0;
  double word_chars_sigma = 0.45;
  double code_chars_sigma = 1.1;            ///< code length varies much more
  double no_code_fraction = 0.2;
};

/// Latent variables behind a generated dataset; exposed so tests can verify
/// the generator's causal structure (e.g. votes track expertise, not delay).
struct GroundTruth {
  std::vector<std::vector<double>> user_interest;  ///< per user, ground-truth topics
  std::vector<double> user_activity;               ///< answer-propensity weight
  std::vector<double> user_expertise;
  std::vector<double> user_speed_scale;            ///< median delay multiplier
  std::vector<std::vector<double>> question_topics;
  std::vector<double> question_popularity;
};

struct SynthForum {
  Dataset dataset;   ///< raw (pre-filter) dataset; call .preprocessed()
  GroundTruth truth;
};

/// Generates a forum according to `config`. Deterministic given the seed.
SynthForum generate_forum(const GeneratorConfig& config);

}  // namespace forumcast::forum
