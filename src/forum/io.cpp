#include "forum/io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace forumcast::forum {

namespace {
constexpr const char* kHeader =
    "question_id,is_question,user_id,timestamp_hours,net_votes,body_html";

void write_post(std::ostream& out, std::size_t question_id, bool is_question,
                const Post& post) {
  out << question_id << ',' << (is_question ? 1 : 0) << ',' << post.creator
      << ',' << post.timestamp_hours << ',' << post.net_votes << ','
      << util::csv_escape_field(post.body_html) << '\n';
}
}  // namespace

void save_posts_csv(const Dataset& dataset, std::ostream& out) {
  // Round-trippable double formatting for the timestamps.
  out.precision(17);
  out << kHeader << '\n';
  for (const auto& thread : dataset.threads()) {
    write_post(out, thread.id, true, thread.question);
    for (const auto& answer : thread.answers) {
      write_post(out, thread.id, false, answer);
    }
  }
}

void save_posts_csv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  FORUMCAST_CHECK_MSG(out.good(), "cannot open " << path);
  save_posts_csv(dataset, out);
  FORUMCAST_CHECK_MSG(out.good(), "write failed for " << path);
}

Dataset load_posts_csv(std::istream& in) {
  const auto rows = util::parse_csv(in);
  FORUMCAST_CHECK_MSG(!rows.empty(), "empty posts CSV");
  FORUMCAST_CHECK_MSG(rows.front().size() == 6,
                      "posts CSV must have 6 columns, got " << rows.front().size());

  struct PendingThread {
    bool has_question = false;
    Post question;
    std::vector<Post> answers;
  };
  // std::map keeps threads ordered by their external id for determinism.
  std::map<long long, PendingThread> threads;
  std::size_t max_user = 0;

  for (std::size_t r = 1; r < rows.size(); ++r) {  // row 0 = header
    const auto& row = rows[r];
    FORUMCAST_CHECK_MSG(row.size() == 6, "row " << r << " has " << row.size()
                                                << " fields");
    Post post;
    long long question_id = 0;
    int is_question = 0;
    try {
      question_id = std::stoll(row[0]);
      is_question = std::stoi(row[1]);
      post.creator = static_cast<UserId>(std::stoul(row[2]));
      post.timestamp_hours = std::stod(row[3]);
      post.net_votes = std::stoi(row[4]);
    } catch (const std::exception& e) {
      FORUMCAST_CHECK_MSG(false, "row " << r << ": " << e.what());
    }
    FORUMCAST_CHECK_MSG(is_question == 0 || is_question == 1,
                        "row " << r << ": is_question must be 0/1");
    post.body_html = row[5];
    max_user = std::max<std::size_t>(max_user, post.creator);

    auto& thread = threads[question_id];
    if (is_question) {
      FORUMCAST_CHECK_MSG(!thread.has_question,
                          "duplicate question row for thread " << question_id);
      thread.has_question = true;
      thread.question = std::move(post);
    } else {
      thread.answers.push_back(std::move(post));
    }
  }

  std::vector<Thread> result;
  result.reserve(threads.size());
  for (auto& [external_id, pending] : threads) {
    FORUMCAST_CHECK_MSG(pending.has_question,
                        "thread " << external_id << " has answers but no question");
    Thread thread;
    thread.question = std::move(pending.question);
    thread.answers = std::move(pending.answers);
    result.push_back(std::move(thread));
  }
  return Dataset(std::move(result), max_user + 1);
}

Dataset load_posts_csv(const std::string& path) {
  std::ifstream in(path);
  FORUMCAST_CHECK_MSG(in.good(), "cannot open " << path);
  return load_posts_csv(in);
}

}  // namespace forumcast::forum
