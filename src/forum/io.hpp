// Dataset import/export.
//
// The interchange format is one CSV of posts, matching what a thin script
// over the Stack Exchange API (the paper's data source) produces:
//
//   question_id,is_question,user_id,timestamp_hours,net_votes,body_html
//
// is_question ∈ {0,1}; every thread needs exactly one question row; answers
// reference their thread by question_id. Question ids in the file may be
// arbitrary (they are re-indexed densely on load); user ids must be dense
// [0, num_users) — real crawls should remap account ids first.
#pragma once

#include <iosfwd>
#include <string>

#include "forum/dataset.hpp"

namespace forumcast::forum {

/// Writes the dataset as posts CSV (with header).
void save_posts_csv(const Dataset& dataset, std::ostream& out);
void save_posts_csv(const Dataset& dataset, const std::string& path);

/// Loads a posts CSV. `num_users` of the result is max(user_id)+1.
/// Throws util::CheckError on malformed rows, duplicate question rows, or
/// answers whose thread has no question row.
Dataset load_posts_csv(std::istream& in);
Dataset load_posts_csv(const std::string& path);

}  // namespace forumcast::forum
