#include "forum/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace forumcast::forum {

OutcomeOracle::OutcomeOracle(const Dataset& raw_dataset, const GroundTruth& truth,
                             const GeneratorConfig& config)
    : truth_(&truth), config_(&config) {
  FORUMCAST_CHECK(truth.question_popularity.size() == raw_dataset.num_questions());
  raw_times_.reserve(raw_dataset.num_questions());
  for (const auto& thread : raw_dataset.threads()) {
    raw_times_.push_back(thread.question.timestamp_hours);
  }
  raw_order_.resize(raw_times_.size());
  std::iota(raw_order_.begin(), raw_order_.end(), std::size_t{0});
  std::sort(raw_order_.begin(), raw_order_.end(), [&](std::size_t a, std::size_t b) {
    return raw_times_[a] < raw_times_[b];
  });
}

std::size_t OutcomeOracle::raw_question_index(double question_timestamp_hours) const {
  // Binary search over timestamps (generator arrival times are continuous,
  // so collisions have probability zero).
  const auto it = std::lower_bound(
      raw_order_.begin(), raw_order_.end(), question_timestamp_hours,
      [&](std::size_t idx, double t) { return raw_times_[idx] < t; });
  FORUMCAST_CHECK_MSG(it != raw_order_.end() &&
                          raw_times_[*it] == question_timestamp_hours,
                      "no raw question at timestamp " << question_timestamp_hours);
  return *it;
}

double OutcomeOracle::expected_votes(UserId u, std::size_t raw_q) const {
  FORUMCAST_CHECK(u < truth_->user_expertise.size());
  FORUMCAST_CHECK(raw_q < truth_->question_popularity.size());
  return 0.9 * truth_->user_expertise[u] +
         0.6 * truth_->question_popularity[raw_q];
}

double OutcomeOracle::expected_delay(UserId u) const {
  FORUMCAST_CHECK(u < truth_->user_speed_scale.size());
  const double sigma = config_->delay_sigma;
  return config_->median_delay_hours * truth_->user_speed_scale[u] *
         std::exp(0.5 * sigma * sigma);
}

int OutcomeOracle::sample_votes(UserId u, std::size_t raw_q, util::Rng& rng) const {
  const double quality = expected_votes(u, raw_q) + rng.normal(0.0, 1.0);
  return std::max(-6, static_cast<int>(std::lround(quality)));
}

double OutcomeOracle::sample_delay(UserId u, util::Rng& rng) const {
  FORUMCAST_CHECK(u < truth_->user_speed_scale.size());
  return config_->median_delay_hours * truth_->user_speed_scale[u] *
         std::exp(config_->delay_sigma * rng.normal());
}

}  // namespace forumcast::forum
