// Counterfactual outcome oracle over a synthetic forum.
//
// The generator's latent variables determine the distribution of votes and
// delay for *any* (user, question) pair — including pairs never observed in
// the dataset. That is exactly what a simulated A/B test of the paper's
// recommender (Sec. VI future work) needs: group B routes questions to users
// who did not organically answer them, and the oracle supplies the outcome
// they would have produced.
#pragma once

#include <cstdint>
#include <vector>

#include "forum/generator.hpp"
#include "util/rng.hpp"

namespace forumcast::forum {

class OutcomeOracle {
 public:
  /// `truth`/`config` must outlive the oracle. `raw_dataset` is the
  /// *pre-preprocessing* dataset the generator returned (its question indices
  /// align with the ground-truth arrays).
  OutcomeOracle(const Dataset& raw_dataset, const GroundTruth& truth,
                const GeneratorConfig& config);

  /// Maps a question of any derived (e.g. preprocessed) dataset back to the
  /// generator's raw index via its unique timestamp.
  std::size_t raw_question_index(double question_timestamp_hours) const;

  /// E[votes] if `u` answered raw question `raw_q`.
  double expected_votes(UserId u, std::size_t raw_q) const;

  /// E[delay] in hours if `u` answered (lognormal mean).
  double expected_delay(UserId u) const;

  /// Stochastic outcome draws matching the generator's noise model.
  int sample_votes(UserId u, std::size_t raw_q, util::Rng& rng) const;
  double sample_delay(UserId u, util::Rng& rng) const;

 private:
  const GroundTruth* truth_;
  const GeneratorConfig* config_;
  std::vector<double> raw_times_;  // sorted (timestamp, raw index) pairs
  std::vector<std::size_t> raw_order_;
};

}  // namespace forumcast::forum
