// Core forum entities (Sec. II-A notation).
//
// A thread q is one question post p_{q,0} plus its answers p_{q,1}, …; every
// post carries a creator u(p), a timestamp t(p) (hours since dataset start)
// and net votes v(p). Bodies are HTML with <code> blocks, mirroring Stack
// Overflow's storage format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace forumcast::forum {

using UserId = std::uint32_t;
using QuestionId = std::uint32_t;

struct Post {
  UserId creator = 0;
  double timestamp_hours = 0.0;  ///< t(p), hours since dataset start
  int net_votes = 0;             ///< v(p) = up-votes − down-votes
  std::string body_html;         ///< word text + <code> blocks
};

struct Thread {
  QuestionId id = 0;
  Post question;               ///< p_{q,0}
  std::vector<Post> answers;   ///< p_{q,1}, … sorted by timestamp
};

}  // namespace forumcast::forum
