#include "forum/sln.hpp"

#include <algorithm>
#include <vector>

namespace forumcast::forum {

graph::Graph build_qa_graph(const Dataset& dataset,
                            std::span<const QuestionId> questions) {
  graph::Graph graph(dataset.num_users());
  for (QuestionId q : questions) {
    const Thread& thread = dataset.thread(q);
    const UserId asker = thread.question.creator;
    for (const auto& answer : thread.answers) {
      graph.add_edge(asker, answer.creator);
    }
  }
  return graph;
}

graph::Graph build_dense_graph(const Dataset& dataset,
                               std::span<const QuestionId> questions) {
  graph::Graph graph(dataset.num_users());
  std::vector<UserId> participants;
  for (QuestionId q : questions) {
    const Thread& thread = dataset.thread(q);
    participants.clear();
    participants.push_back(thread.question.creator);
    for (const auto& answer : thread.answers) {
      participants.push_back(answer.creator);
    }
    std::sort(participants.begin(), participants.end());
    participants.erase(std::unique(participants.begin(), participants.end()),
                       participants.end());
    for (std::size_t i = 0; i < participants.size(); ++i) {
      for (std::size_t j = i + 1; j < participants.size(); ++j) {
        graph.add_edge(participants[i], participants[j]);
      }
    }
  }
  return graph;
}

}  // namespace forumcast::forum
