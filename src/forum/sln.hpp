// Social Learning Network graph construction (Sec. II-B "Graph models").
//
// G_QA links asker ↔ answerer for every answer; G_D additionally links all
// participants of the same thread to each other. Both are built over a chosen
// question partition Ω so features can be recomputed per history window.
#pragma once

#include <span>

#include "forum/dataset.hpp"
#include "graph/graph.hpp"

namespace forumcast::forum {

/// Question-answer graph G_QA over the given questions. Node space is all
/// dataset users so ids are stable across windows.
graph::Graph build_qa_graph(const Dataset& dataset,
                            std::span<const QuestionId> questions);

/// Denser graph G_D: every pair of users posting in the same thread is linked
/// (asker and all answerers form a clique per thread).
graph::Graph build_dense_graph(const Dataset& dataset,
                               std::span<const QuestionId> questions);

}  // namespace forumcast::forum
