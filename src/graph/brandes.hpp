// Internal Brandes machinery shared by the exact centrality functions
// (centrality.cpp) and the pivot-sampled incremental engine
// (centrality_engine.cpp). One sweep = one BFS shortest-path DAG from a
// source plus the backward dependency accumulation.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace forumcast::graph::detail {

/// Scratch buffers for one Brandes source sweep, supplied by the caller so
/// sweeps can be reused per-thread without reallocation. After
/// brandes_source_sweep(), `delta` holds the source's dependency
/// contribution per node and `dist` holds hop distances (-1 = unreachable).
struct BrandesScratch {
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<long long> dist;
  std::vector<std::vector<NodeId>> predecessors;

  explicit BrandesScratch(std::size_t n)
      : sigma(n), delta(n), dist(n), predecessors(n) {}
};

/// Runs one source sweep, filling scratch.delta / scratch.dist. The caller
/// owns accumulation: exact betweenness adds delta[w] (w != source) across
/// all sources; the sampled engine caches delta per pivot instead.
void brandes_source_sweep(const Graph& graph, NodeId source,
                          BrandesScratch& scratch);

/// Linear-scaled variant for pivot sampling (Geisberger, Sanders, Schultes,
/// "Better Approximation of Betweenness Centrality", ALENEX 2008): pair
/// (s, t) credits an interior node v proportionally to d(s,v)/d(s,t) instead
/// of fully from the source side. Summed over every source this counts each
/// unordered pair exactly once (d(s,v)/d(s,t) + d(t,v)/d(t,s) == 1 on a
/// shortest path), so the exact value needs no halving, and under sampling
/// the dependency spikes next to a sampled pivot are damped — the variance
/// reduction that keeps max-normalized error small at small pivot budgets.
/// Fills scratch.delta with the scaled dependency d(s,v)·A_s(v).
void brandes_source_sweep_scaled(const Graph& graph, NodeId source,
                                 BrandesScratch& scratch);

}  // namespace forumcast::graph::detail
