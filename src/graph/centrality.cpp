#include "graph/centrality.hpp"

#include <algorithm>
#include <queue>
#include <stack>
#include <thread>
#include <vector>

#include "graph/brandes.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace forumcast::graph {

namespace detail {

namespace {

// Forward BFS phase shared by both sweep variants: shortest-path counts,
// hop distances, predecessor DAG, and the reverse finish order.
std::stack<NodeId> brandes_forward_pass(const Graph& graph, NodeId source,
                                        BrandesScratch& scratch) {
  std::fill(scratch.sigma.begin(), scratch.sigma.end(), 0.0);
  std::fill(scratch.delta.begin(), scratch.delta.end(), 0.0);
  std::fill(scratch.dist.begin(), scratch.dist.end(), -1LL);
  for (auto& preds : scratch.predecessors) preds.clear();

  scratch.sigma[source] = 1.0;
  scratch.dist[source] = 0;
  std::stack<NodeId> order;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    order.push(u);
    for (NodeId v : graph.neighbors(u)) {
      if (scratch.dist[v] < 0) {
        scratch.dist[v] = scratch.dist[u] + 1;
        frontier.push(v);
      }
      if (scratch.dist[v] == scratch.dist[u] + 1) {
        scratch.sigma[v] += scratch.sigma[u];
        scratch.predecessors[v].push_back(u);
      }
    }
  }
  return order;
}

}  // namespace

void brandes_source_sweep(const Graph& graph, NodeId source,
                          BrandesScratch& scratch) {
  std::stack<NodeId> order = brandes_forward_pass(graph, source, scratch);
  while (!order.empty()) {
    const NodeId w = order.top();
    order.pop();
    for (NodeId u : scratch.predecessors[w]) {
      scratch.delta[u] +=
          scratch.sigma[u] / scratch.sigma[w] * (1.0 + scratch.delta[w]);
    }
  }
}

void brandes_source_sweep_scaled(const Graph& graph, NodeId source,
                                 BrandesScratch& scratch) {
  std::stack<NodeId> order = brandes_forward_pass(graph, source, scratch);
  // Accumulate A_s(v) = sum over targets t of (sigma_st(v)/sigma_st)/d(s,t)
  // (per-target injection 1/d instead of 1), then scale by d(s,v): the
  // result is sum_t (sigma_st(v)/sigma_st) * d(s,v)/d(s,t). One divide per
  // node, not per DAG edge, keeps the sweep cost at parity with the
  // unscaled variant.
  while (!order.empty()) {
    const NodeId w = order.top();
    order.pop();
    const double inject =
        w == source ? 0.0 : 1.0 / static_cast<double>(scratch.dist[w]);
    for (NodeId u : scratch.predecessors[w]) {
      scratch.delta[u] +=
          scratch.sigma[u] / scratch.sigma[w] * (inject + scratch.delta[w]);
    }
  }
  const std::size_t n = graph.node_count();
  for (NodeId v = 0; v < n; ++v) {
    scratch.delta[v] = (v == source || scratch.dist[v] <= 0)
                           ? 0.0
                           : static_cast<double>(scratch.dist[v]) *
                                 scratch.delta[v];
  }
}

}  // namespace detail

namespace {

// Adds one finished sweep's dependency into the accumulator. Per element
// this is the same single `+=` the historic fused sweep performed (unvisited
// nodes contribute an exact 0.0), so the exact path stays bit-identical.
void accumulate_sweep(const detail::BrandesScratch& scratch, NodeId source,
                      std::vector<double>& betweenness) {
  for (NodeId w = 0; w < betweenness.size(); ++w) {
    if (w != source) betweenness[w] += scratch.delta[w];
  }
}

}  // namespace

std::vector<double> closeness_centrality(const Graph& graph,
                                         std::size_t threads) {
  const std::size_t n = graph.node_count();
  std::vector<double> closeness(n, 0.0);
  if (n < 2) return closeness;
  FORUMCAST_SPAN_NAMED(span, "graph.closeness");
  FORUMCAST_COUNTER_ADD("graph.bfs_sources", n);
  util::parallel_for_chunks(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t u = begin; u < end; ++u) {
          const auto dist = graph.bfs_distances(u);
          double total = 0.0;
          for (NodeId v = 0; v < n; ++v) {
            if (v == u || dist[v] == Graph::kUnreachable) continue;
            total += static_cast<double>(dist[v]);
          }
          if (total > 0.0) {
            closeness[u] = static_cast<double>(n - 1) / total;
          }
        }
      },
      threads);
  if (span.active()) {
    span.arg("nodes", static_cast<double>(n));
    const double seconds = span.elapsed_seconds();
    if (seconds > 0.0) {
      span.arg("sources_per_sec", static_cast<double>(n) / seconds);
    }
  }
  return closeness;
}

std::vector<double> betweenness_centrality(const Graph& graph,
                                           std::size_t threads) {
  const std::size_t n = graph.node_count();
  std::vector<double> betweenness(n, 0.0);
  if (n < 3) return betweenness;
  FORUMCAST_SPAN_NAMED(span, "graph.betweenness");
  FORUMCAST_COUNTER_ADD("graph.bfs_sources", n);
  if (threads == 0) threads = util::default_thread_count();
  threads = std::min(threads, n);

  if (threads <= 1) {
    detail::BrandesScratch scratch(n);
    for (NodeId source = 0; source < n; ++source) {
      detail::brandes_source_sweep(graph, source, scratch);
      accumulate_sweep(scratch, source, betweenness);
    }
  } else {
    // Static partition: thread t owns sources ≡ t (mod threads), with its own
    // accumulator; reduction in fixed thread order keeps results
    // deterministic for a given thread count.
    std::vector<std::vector<double>> partials(threads,
                                              std::vector<double>(n, 0.0));
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        detail::BrandesScratch scratch(n);
        for (NodeId source = static_cast<NodeId>(t); source < n;
             source += threads) {
          detail::brandes_source_sweep(graph, source, scratch);
          accumulate_sweep(scratch, source, partials[t]);
        }
      });
    }
    for (auto& thread : pool) thread.join();
    for (std::size_t t = 0; t < threads; ++t) {
      for (std::size_t v = 0; v < n; ++v) betweenness[v] += partials[t][v];
    }
  }
  // Each unordered pair is counted from both endpoints in an undirected graph.
  for (double& b : betweenness) b /= 2.0;
  if (span.active()) {
    span.arg("nodes", static_cast<double>(n));
    span.arg("threads", static_cast<double>(threads));
    const double seconds = span.elapsed_seconds();
    if (seconds > 0.0) {
      span.arg("sources_per_sec", static_cast<double>(n) / seconds);
    }
  }
  return betweenness;
}

std::vector<NodeId> sample_pivots(std::size_t node_count,
                                  std::size_t num_pivots, std::uint64_t seed,
                                  std::uint64_t epoch) {
  std::vector<NodeId> pivots;
  if (node_count == 0 || num_pivots == 0) return pivots;
  if (num_pivots >= node_count) {
    pivots.resize(node_count);
    for (NodeId v = 0; v < node_count; ++v) pivots[v] = v;
    return pivots;
  }
  // Counter-derived stream: the state starts at a (seed, epoch) mix and each
  // draw advances it by one splitmix64 step. Distinctness via rejection;
  // modulo bias is irrelevant here (pivots need to be deterministic and
  // well-spread, not perfectly uniform).
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (epoch + 1);
  std::vector<std::uint8_t> taken(node_count, 0);
  pivots.reserve(num_pivots);
  while (pivots.size() < num_pivots) {
    const auto v =
        static_cast<NodeId>(util::splitmix64(state) % node_count);
    if (!taken[v]) {
      taken[v] = 1;
      pivots.push_back(v);
    }
  }
  // Ascending order fixes the accumulation order of per-pivot contributions,
  // which is what makes sampled results thread-count invariant.
  std::sort(pivots.begin(), pivots.end());
  return pivots;
}

std::vector<double> normalized_to_max(std::vector<double> values) {
  const auto it = std::max_element(values.begin(), values.end());
  if (it == values.end() || *it <= 0.0) return values;
  const double max_value = *it;
  for (double& v : values) v /= max_value;
  return values;
}

}  // namespace forumcast::graph
