#include "graph/centrality.hpp"

#include <algorithm>
#include <queue>
#include <stack>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace forumcast::graph {

namespace {

// One Brandes source sweep: accumulates dependencies into `betweenness`.
// Scratch buffers are supplied by the caller so sweeps can be reused
// per-thread without reallocation.
struct BrandesScratch {
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<long long> dist;
  std::vector<std::vector<NodeId>> predecessors;

  explicit BrandesScratch(std::size_t n)
      : sigma(n), delta(n), dist(n), predecessors(n) {}
};

void brandes_source_sweep(const Graph& graph, NodeId source,
                          BrandesScratch& scratch,
                          std::vector<double>& betweenness) {
  const std::size_t n = graph.node_count();
  std::fill(scratch.sigma.begin(), scratch.sigma.end(), 0.0);
  std::fill(scratch.delta.begin(), scratch.delta.end(), 0.0);
  std::fill(scratch.dist.begin(), scratch.dist.end(), -1LL);
  for (auto& preds : scratch.predecessors) preds.clear();

  scratch.sigma[source] = 1.0;
  scratch.dist[source] = 0;
  std::stack<NodeId> order;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    order.push(u);
    for (NodeId v : graph.neighbors(u)) {
      if (scratch.dist[v] < 0) {
        scratch.dist[v] = scratch.dist[u] + 1;
        frontier.push(v);
      }
      if (scratch.dist[v] == scratch.dist[u] + 1) {
        scratch.sigma[v] += scratch.sigma[u];
        scratch.predecessors[v].push_back(u);
      }
    }
  }
  while (!order.empty()) {
    const NodeId w = order.top();
    order.pop();
    for (NodeId u : scratch.predecessors[w]) {
      scratch.delta[u] +=
          scratch.sigma[u] / scratch.sigma[w] * (1.0 + scratch.delta[w]);
    }
    if (w != source) betweenness[w] += scratch.delta[w];
  }
  (void)n;
}

}  // namespace

std::vector<double> closeness_centrality(const Graph& graph,
                                         std::size_t threads) {
  const std::size_t n = graph.node_count();
  std::vector<double> closeness(n, 0.0);
  if (n < 2) return closeness;
  FORUMCAST_SPAN_NAMED(span, "graph.closeness");
  FORUMCAST_COUNTER_ADD("graph.bfs_sources", n);
  util::parallel_for_chunks(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t u = begin; u < end; ++u) {
          const auto dist = graph.bfs_distances(u);
          double total = 0.0;
          for (NodeId v = 0; v < n; ++v) {
            if (v == u || dist[v] == Graph::kUnreachable) continue;
            total += static_cast<double>(dist[v]);
          }
          if (total > 0.0) {
            closeness[u] = static_cast<double>(n - 1) / total;
          }
        }
      },
      threads);
  if (span.active()) {
    span.arg("nodes", static_cast<double>(n));
    const double seconds = span.elapsed_seconds();
    if (seconds > 0.0) {
      span.arg("sources_per_sec", static_cast<double>(n) / seconds);
    }
  }
  return closeness;
}

std::vector<double> betweenness_centrality(const Graph& graph,
                                           std::size_t threads) {
  const std::size_t n = graph.node_count();
  std::vector<double> betweenness(n, 0.0);
  if (n < 3) return betweenness;
  FORUMCAST_SPAN_NAMED(span, "graph.betweenness");
  FORUMCAST_COUNTER_ADD("graph.bfs_sources", n);
  if (threads == 0) threads = util::default_thread_count();
  threads = std::min(threads, n);

  if (threads <= 1) {
    BrandesScratch scratch(n);
    for (NodeId source = 0; source < n; ++source) {
      brandes_source_sweep(graph, source, scratch, betweenness);
    }
  } else {
    // Static partition: thread t owns sources ≡ t (mod threads), with its own
    // accumulator; reduction in fixed thread order keeps results
    // deterministic for a given thread count.
    std::vector<std::vector<double>> partials(threads,
                                              std::vector<double>(n, 0.0));
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        BrandesScratch scratch(n);
        for (NodeId source = static_cast<NodeId>(t); source < n;
             source += threads) {
          brandes_source_sweep(graph, source, scratch, partials[t]);
        }
      });
    }
    for (auto& thread : pool) thread.join();
    for (std::size_t t = 0; t < threads; ++t) {
      for (std::size_t v = 0; v < n; ++v) betweenness[v] += partials[t][v];
    }
  }
  // Each unordered pair is counted from both endpoints in an undirected graph.
  for (double& b : betweenness) b /= 2.0;
  if (span.active()) {
    span.arg("nodes", static_cast<double>(n));
    span.arg("threads", static_cast<double>(threads));
    const double seconds = span.elapsed_seconds();
    if (seconds > 0.0) {
      span.arg("sources_per_sec", static_cast<double>(n) / seconds);
    }
  }
  return betweenness;
}

std::vector<double> normalized_to_max(std::vector<double> values) {
  const auto it = std::max_element(values.begin(), values.end());
  if (it == values.end() || *it <= 0.0) return values;
  const double max_value = *it;
  for (double& v : values) v /= max_value;
  return values;
}

}  // namespace forumcast::graph
