// Centrality measures for the SLN social features (Sec. II-B xv–xix).
//
// Closeness follows the paper's convention for disconnected graphs:
// l_u = (|U| − 1) / Σ_{v reachable} z_{u,v}, with unreachable pairs removed
// from the sum; isolated nodes get 0. Betweenness is Brandes' exact
// algorithm on the unweighted graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace forumcast::graph {

/// How centralities are computed and refreshed.
enum class CentralityMode : std::uint8_t {
  kExact = 0,    ///< full Brandes / all-source BFS; bit-stable legacy path
  kSampled = 1,  ///< pivot-sampled estimates + incremental dirty-region refresh
};

/// The exact↔sampled error/speed knob. Defaults to exact so every existing
/// digest (predictions, stream replay, bundles) is untouched; sampled mode
/// trades a bounded estimation error for O(pivots·E) refreshes instead of
/// O(V·E), plus incremental updates that re-sweep only affected pivots.
struct CentralityConfig {
  CentralityMode mode = CentralityMode::kExact;
  std::size_t num_pivots = 128;  ///< clamped to node count; k ≥ n ⇒ exact
  std::uint64_t seed = 0x5ce7a117u;  ///< pivot-stream seed
};

/// Draws `num_pivots` distinct node ids (ascending) from a counter-derived
/// splitmix64 stream keyed on (seed, epoch). Pure function of its arguments:
/// the same (node_count, num_pivots, seed, epoch) always yields the same
/// pivot set, independent of thread count or platform. `num_pivots` ≥
/// `node_count` returns every node.
std::vector<NodeId> sample_pivots(std::size_t node_count,
                                  std::size_t num_pivots, std::uint64_t seed,
                                  std::uint64_t epoch);

/// Closeness centrality for every node. With threads > 1 the per-source BFS
/// sweeps run in parallel; results are identical to the serial computation.
std::vector<double> closeness_centrality(const Graph& graph,
                                         std::size_t threads = 1);

/// Betweenness centrality for every node (undirected; each pair counted
/// once). With threads > 1, sources are statically partitioned across
/// threads with per-thread accumulators reduced in fixed order, so the
/// result is deterministic for a given thread count (floating-point sums
/// may differ from the serial order below 1e-12 relative).
std::vector<double> betweenness_centrality(const Graph& graph,
                                           std::size_t threads = 1);

/// Scales values so the maximum is 1 (no-op on all-zero input).
std::vector<double> normalized_to_max(std::vector<double> values);

}  // namespace forumcast::graph
