// Centrality measures for the SLN social features (Sec. II-B xv–xix).
//
// Closeness follows the paper's convention for disconnected graphs:
// l_u = (|U| − 1) / Σ_{v reachable} z_{u,v}, with unreachable pairs removed
// from the sum; isolated nodes get 0. Betweenness is Brandes' exact
// algorithm on the unweighted graph.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace forumcast::graph {

/// Closeness centrality for every node. With threads > 1 the per-source BFS
/// sweeps run in parallel; results are identical to the serial computation.
std::vector<double> closeness_centrality(const Graph& graph,
                                         std::size_t threads = 1);

/// Betweenness centrality for every node (undirected; each pair counted
/// once). With threads > 1, sources are statically partitioned across
/// threads with per-thread accumulators reduced in fixed order, so the
/// result is deterministic for a given thread count (floating-point sums
/// may differ from the serial order below 1e-12 relative).
std::vector<double> betweenness_centrality(const Graph& graph,
                                           std::size_t threads = 1);

/// Scales values so the maximum is 1 (no-op on all-zero input).
std::vector<double> normalized_to_max(std::vector<double> values);

}  // namespace forumcast::graph
