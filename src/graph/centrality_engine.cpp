#include "graph/centrality_engine.hpp"

#include <algorithm>

#include "graph/brandes.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace forumcast::graph {

CentralityEngine::CentralityEngine(CentralityConfig config)
    : config_(config) {}

void CentralityEngine::invalidate() {
  built_ = false;
  node_count_ = 0;
  pivots_.clear();
  pivot_dist_.clear();
  pivot_delta_.clear();
  last_ = {};
}

void CentralityEngine::sweep_slots(const Graph& graph,
                                   std::span<const std::size_t> slots,
                                   std::size_t threads) {
  const std::size_t n = graph.node_count();
  util::parallel_for_chunks(
      slots.size(),
      [&](std::size_t begin, std::size_t end) {
        detail::BrandesScratch scratch(n);
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t slot = slots[i];
          detail::brandes_source_sweep_scaled(graph, pivots_[slot], scratch);
          pivot_delta_[slot].assign(scratch.delta.begin(),
                                    scratch.delta.end());
          auto& dist = pivot_dist_[slot];
          dist.resize(n);
          for (std::size_t v = 0; v < n; ++v) {
            dist[v] = static_cast<std::int32_t>(scratch.dist[v]);
          }
        }
      },
      threads);
}

void CentralityEngine::rebuild(const Graph& graph, std::size_t threads) {
  FORUMCAST_SPAN_NAMED(span, "graph.centrality_rebuild");
  node_count_ = graph.node_count();
  pivots_ =
      sample_pivots(node_count_, config_.num_pivots, config_.seed, epoch_);
  ++epoch_;  // the next full rebuild draws a fresh pivot set
  pivot_dist_.assign(pivots_.size(), {});
  pivot_delta_.assign(pivots_.size(), {});
  std::vector<std::size_t> slots(pivots_.size());
  for (std::size_t i = 0; i < slots.size(); ++i) slots[i] = i;
  sweep_slots(graph, slots, threads);
  built_ = true;
  last_ = {};
  last_.sweeps = pivots_.size();
  last_.affected_pivots = pivots_.size();
  last_.full_rebuild = true;
  FORUMCAST_COUNTER_ADD("centrality.full_refreshes", 1);
  FORUMCAST_COUNTER_ADD("centrality.sampled_pivots", pivots_.size());
  if (span.active()) {
    span.arg("nodes", static_cast<double>(node_count_));
    span.arg("pivots", static_cast<double>(pivots_.size()));
  }
}

void CentralityEngine::refresh(
    const Graph& graph, std::span<const std::pair<NodeId, NodeId>> new_edges,
    std::size_t threads) {
  if (!built_ || graph.node_count() != node_count_) {
    rebuild(graph, threads);
    return;
  }
  FORUMCAST_SPAN_NAMED(span, "graph.centrality_refresh");

  std::vector<NodeId> dirty;
  dirty.reserve(new_edges.size() * 2);
  for (const auto& [u, v] : new_edges) {
    FORUMCAST_CHECK(u < node_count_ && v < node_count_);
    dirty.push_back(u);
    dirty.push_back(v);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  // A pivot is affected iff some new edge joins nodes at different cached
  // distances from it; edges between equidistant nodes (both-unreachable
  // included) change neither distances nor shortest-path counts.
  std::vector<std::size_t> affected;
  for (std::size_t slot = 0; slot < pivots_.size(); ++slot) {
    const auto& dist = pivot_dist_[slot];
    for (const auto& [u, v] : new_edges) {
      if (dist[u] != dist[v]) {
        affected.push_back(slot);
        break;
      }
    }
  }
  sweep_slots(graph, affected, threads);

  last_ = {};
  last_.sweeps = affected.size();
  last_.affected_pivots = affected.size();
  last_.dirty_vertices = dirty.size();
  FORUMCAST_COUNTER_ADD("centrality.sampled_pivots", affected.size());
  FORUMCAST_COUNTER_ADD("centrality.dirty_vertices", dirty.size());
  if (span.active()) {
    span.arg("pivots", static_cast<double>(pivots_.size()));
    span.arg("affected", static_cast<double>(affected.size()));
    span.arg("dirty_vertices", static_cast<double>(dirty.size()));
  }
}

std::vector<double> CentralityEngine::closeness() const {
  FORUMCAST_CHECK_MSG(built_, "CentralityEngine::closeness before rebuild");
  std::vector<double> closeness(node_count_, 0.0);
  if (node_count_ < 2 || pivots_.empty()) return closeness;
  // Distances are integers, so the fold order cannot perturb the sums; only
  // the final division touches floating point. scale == 1 exactly when the
  // pivot set is all nodes, collapsing to the exact definition bit-for-bit.
  std::vector<long long> sums(node_count_, 0);
  for (std::size_t slot = 0; slot < pivots_.size(); ++slot) {
    const auto& dist = pivot_dist_[slot];
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (dist[v] > 0) sums[v] += dist[v];
    }
  }
  const double scale = static_cast<double>(node_count_) /
                       static_cast<double>(pivots_.size());
  for (std::size_t v = 0; v < node_count_; ++v) {
    if (sums[v] > 0) {
      closeness[v] = static_cast<double>(node_count_ - 1) /
                     (scale * static_cast<double>(sums[v]));
    }
  }
  return closeness;
}

std::vector<double> CentralityEngine::betweenness() const {
  FORUMCAST_CHECK_MSG(built_, "CentralityEngine::betweenness before rebuild");
  std::vector<double> betweenness(node_count_, 0.0);
  if (node_count_ < 3 || pivots_.empty()) return betweenness;
  // Ascending-pivot fold keeps the accumulation order fixed regardless of
  // how many threads ran the sweeps, so sampled results are thread-count
  // invariant and an incremental refresh folds to the same bits as a full
  // rebuild over the same pivot set.
  for (std::size_t slot = 0; slot < pivots_.size(); ++slot) {
    const NodeId p = pivots_[slot];
    const auto& delta = pivot_delta_[slot];
    for (NodeId v = 0; v < node_count_; ++v) {
      if (v != p) betweenness[v] += delta[v];
    }
  }
  // The linear-scaled dependency already counts each unordered pair once
  // across all sources (no halving); n/k rescales the sampled subset. With
  // the all-node pivot set this equals exact betweenness up to floating-point
  // summation order.
  const double scale = static_cast<double>(node_count_) /
                       static_cast<double>(pivots_.size());
  for (double& b : betweenness) b *= scale;
  return betweenness;
}

std::vector<double> sampled_closeness_centrality(const Graph& graph,
                                                 const CentralityConfig& config,
                                                 std::size_t threads) {
  CentralityEngine engine(config);
  engine.rebuild(graph, threads);
  return engine.closeness();
}

std::vector<double> sampled_betweenness_centrality(const Graph& graph,
                                                   const CentralityConfig& config,
                                                   std::size_t threads) {
  CentralityEngine engine(config);
  engine.rebuild(graph, threads);
  return engine.betweenness();
}

}  // namespace forumcast::graph
