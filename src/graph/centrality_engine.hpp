// Pivot-sampled, incrementally refreshable centrality.
//
// The engine keeps one Brandes sweep's results (dependency vector +
// hop-distance vector) cached per pivot. Closeness/betweenness estimates are
// always derived by folding the cached per-pivot contributions in ascending
// pivot order, so:
//
//  - results are bit-identical for any thread count (sweeps are
//    embarrassingly parallel into disjoint slots; the fold is serial and
//    ordered), and
//  - an incremental refresh() is bit-identical to a full rebuild() over the
//    same graph with the same pivot set — unaffected pivots keep cached
//    contributions that a fresh sweep would reproduce exactly.
//
// Estimators (k pivots over n nodes, uniform without replacement):
//   betweenness(v) ≈ (n/k) · Σ_{p∈P} δ_p(v) / 2
//   closeness(v)   ≈ (n−1) / ((n/k) · Σ_{p∈P reachable} d(p,v))
// With k ≥ n the pivot set is every node and both collapse to the exact
// definitions (bit-equal to the serial exact functions).
//
// Incremental refresh: a new edge {u,v} changes shortest paths from pivot p
// iff the cached distances differ, d_p(u) ≠ d_p(v) (an edge joining
// equidistant nodes — including two unreachable ones — creates no shorter
// path and no new shortest path). Only those affected pivots are re-swept;
// the rest carry forward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/centrality.hpp"
#include "graph/graph.hpp"

namespace forumcast::graph {

class CentralityEngine {
 public:
  explicit CentralityEngine(CentralityConfig config = {});

  const CentralityConfig& config() const { return config_; }
  bool built() const { return built_; }
  std::size_t num_pivots() const { return pivots_.size(); }
  std::span<const NodeId> pivots() const { return pivots_; }
  /// Completed full rebuilds; keys the next pivot draw.
  std::uint64_t epoch() const { return epoch_; }

  /// Drops all cached state; the next refresh() falls back to rebuild().
  void invalidate();

  /// Full (re)build: draws a fresh pivot set from (seed, epoch), sweeps every
  /// pivot, and advances the epoch. threads = 0 means the util default.
  void rebuild(const Graph& graph, std::size_t threads = 0);

  /// Incremental refresh after `new_edges` were inserted into `graph`
  /// (endpoints in any order; edges must already be present). Re-sweeps only
  /// pivots whose shortest-path trees the new edges touch. Falls back to
  /// rebuild() when nothing is cached yet or the node count changed.
  void refresh(const Graph& graph,
               std::span<const std::pair<NodeId, NodeId>> new_edges,
               std::size_t threads = 0);

  /// Estimates folded from the pivot caches (see header comment). Valid
  /// after rebuild()/refresh().
  std::vector<double> closeness() const;
  std::vector<double> betweenness() const;

  /// What the most recent rebuild()/refresh() actually did — feeds the
  /// centrality.* observability counters.
  struct RefreshStats {
    std::size_t sweeps = 0;          ///< pivot sweeps executed
    std::size_t affected_pivots = 0; ///< pivots invalidated by new edges
    std::size_t dirty_vertices = 0;  ///< distinct endpoints among new edges
    bool full_rebuild = false;
  };
  const RefreshStats& last_refresh() const { return last_; }

 private:
  void sweep_slots(const Graph& graph, std::span<const std::size_t> slots,
                   std::size_t threads);

  CentralityConfig config_;
  bool built_ = false;
  std::uint64_t epoch_ = 0;
  std::size_t node_count_ = 0;
  std::vector<NodeId> pivots_;  // ascending
  // Slot-aligned caches: dist in hops (-1 unreachable, int32 to halve the
  // footprint), delta as Brandes dependency doubles.
  std::vector<std::vector<std::int32_t>> pivot_dist_;
  std::vector<std::vector<double>> pivot_delta_;
  RefreshStats last_;
};

/// One-shot conveniences over a temporary engine (tests / benches). Both
/// centralities come from the same sweeps, so calling both costs double —
/// hold a CentralityEngine when you need the pair.
std::vector<double> sampled_closeness_centrality(const Graph& graph,
                                                 const CentralityConfig& config,
                                                 std::size_t threads = 0);
std::vector<double> sampled_betweenness_centrality(
    const Graph& graph, const CentralityConfig& config, std::size_t threads = 0);

}  // namespace forumcast::graph
