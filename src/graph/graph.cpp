#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace forumcast::graph {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

bool Graph::add_edge(NodeId u, NodeId v) {
  FORUMCAST_CHECK(u < node_count() && v < node_count());
  if (u == v) return false;
  auto& adj_u = adjacency_[u];
  const auto it = std::lower_bound(adj_u.begin(), adj_u.end(), v);
  if (it != adj_u.end() && *it == v) return false;
  adj_u.insert(it, v);
  auto& adj_v = adjacency_[v];
  adj_v.insert(std::lower_bound(adj_v.begin(), adj_v.end(), u), u);
  ++edge_count_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  FORUMCAST_CHECK(u < node_count() && v < node_count());
  const auto& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  FORUMCAST_CHECK(u < node_count());
  return adjacency_[u];
}

std::size_t Graph::degree(NodeId u) const {
  FORUMCAST_CHECK(u < node_count());
  return adjacency_[u].size();
}

double Graph::average_degree() const {
  if (node_count() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) / static_cast<double>(node_count());
}

std::vector<std::size_t> Graph::bfs_distances(NodeId source) const {
  FORUMCAST_CHECK(source < node_count());
  std::vector<std::size_t> dist(node_count(), kUnreachable);
  dist[source] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::size_t> Graph::connected_components(std::size_t& component_count) const {
  std::vector<std::size_t> component(node_count(), kUnreachable);
  component_count = 0;
  for (NodeId start = 0; start < node_count(); ++start) {
    if (component[start] != kUnreachable) continue;
    const std::size_t id = component_count++;
    std::queue<NodeId> frontier;
    component[start] = id;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : adjacency_[u]) {
        if (component[v] == kUnreachable) {
          component[v] = id;
          frontier.push(v);
        }
      }
    }
  }
  return component;
}

std::size_t Graph::largest_component_size() const {
  std::size_t count = 0;
  const auto component = connected_components(count);
  if (count == 0) return 0;
  std::vector<std::size_t> sizes(count, 0);
  for (std::size_t id : component) ++sizes[id];
  return *std::max_element(sizes.begin(), sizes.end());
}

}  // namespace forumcast::graph
