// Undirected simple graph over dense node ids [0, node_count).
//
// Backs the two Social Learning Network topologies of Sec. II-B: the
// question-answer graph G_QA and the denser graph G_D. Both are symmetric and
// unweighted, so we store sorted adjacency lists and deduplicate edges.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace forumcast::graph {

using NodeId = std::size_t;

class Graph {
 public:
  explicit Graph(std::size_t node_count = 0);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds the undirected edge {u, v}; self-loops and duplicates are ignored.
  /// Returns true if a new edge was inserted.
  bool add_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  /// Sorted neighbor list of u.
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t degree(NodeId u) const;

  double average_degree() const;

  /// BFS hop distances from `source`; unreachable nodes get SIZE_MAX.
  std::vector<std::size_t> bfs_distances(NodeId source) const;

  /// Connected components: returns component id per node (0-based, by
  /// discovery order) and the number of components.
  std::vector<std::size_t> connected_components(std::size_t& component_count) const;

  /// Size of the largest connected component.
  std::size_t largest_component_size() const;

  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace forumcast::graph
