#include "graph/link_features.hpp"

#include <algorithm>
#include <cmath>

namespace forumcast::graph {

namespace {
// Applies `fn` to each common neighbor of u and v (adjacency lists are sorted).
template <typename Fn>
void for_each_common_neighbor(const Graph& graph, NodeId u, NodeId v, Fn&& fn) {
  const auto a = graph.neighbors(u);
  const auto b = graph.neighbors(v);
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}
}  // namespace

double resource_allocation_index(const Graph& graph, NodeId u, NodeId v) {
  double index = 0.0;
  for_each_common_neighbor(graph, u, v, [&](NodeId n) {
    const auto deg = graph.degree(n);
    if (deg > 0) index += 1.0 / static_cast<double>(deg);
  });
  return index;
}

std::size_t common_neighbor_count(const Graph& graph, NodeId u, NodeId v) {
  std::size_t count = 0;
  for_each_common_neighbor(graph, u, v, [&](NodeId) { ++count; });
  return count;
}

double jaccard_coefficient(const Graph& graph, NodeId u, NodeId v) {
  const std::size_t common = common_neighbor_count(graph, u, v);
  const std::size_t total = graph.degree(u) + graph.degree(v) - common;
  if (total == 0) return 0.0;
  return static_cast<double>(common) / static_cast<double>(total);
}

double adamic_adar_index(const Graph& graph, NodeId u, NodeId v) {
  double index = 0.0;
  for_each_common_neighbor(graph, u, v, [&](NodeId n) {
    const auto deg = graph.degree(n);
    if (deg > 1) index += 1.0 / std::log(static_cast<double>(deg));
  });
  return index;
}

double preferential_attachment(const Graph& graph, NodeId u, NodeId v) {
  return static_cast<double>(graph.degree(u)) *
         static_cast<double>(graph.degree(v));
}

}  // namespace forumcast::graph
