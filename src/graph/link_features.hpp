// Pairwise topological link features (Sec. II-B xvii/xx).
#pragma once

#include "graph/graph.hpp"

namespace forumcast::graph {

/// Resource allocation index Re_{u,v} = Σ_{n ∈ Γ(u) ∩ Γ(v)} 1/|Γ(n)|.
/// Zero when u and v share no neighbors (including the isolated case).
double resource_allocation_index(const Graph& graph, NodeId u, NodeId v);

/// Number of common neighbors |Γ(u) ∩ Γ(v)| (used in tests and analytics).
std::size_t common_neighbor_count(const Graph& graph, NodeId u, NodeId v);

/// Jaccard coefficient |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)| (0 when both isolated).
double jaccard_coefficient(const Graph& graph, NodeId u, NodeId v);

/// Adamic–Adar index Σ_{n ∈ Γ(u) ∩ Γ(v)} 1/log|Γ(n)| (degree-1 common
/// neighbors are skipped — their log degree is 0).
double adamic_adar_index(const Graph& graph, NodeId u, NodeId v);

/// Preferential attachment score |Γ(u)| · |Γ(v)|.
double preferential_attachment(const Graph& graph, NodeId u, NodeId v);

}  // namespace forumcast::graph
