#include "graph/serialize.hpp"

#include "util/check.hpp"

namespace forumcast::graph {

void encode_graph(const Graph& graph, artifact::Encoder& enc) {
  enc.u64(graph.node_count());
  enc.u64(graph.edge_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const NodeId v : graph.neighbors(u)) {
      if (u < v) {
        enc.u64(u);
        enc.u64(v);
      }
    }
  }
}

Graph decode_graph(artifact::Decoder& dec) {
  const auto node_count = dec.u64("graph node count");
  const auto edge_count = dec.u64("graph edge count");
  Graph graph(static_cast<std::size_t>(node_count));
  for (std::uint64_t e = 0; e < edge_count; ++e) {
    const auto u = dec.u64("graph edge endpoint u");
    const auto v = dec.u64("graph edge endpoint v");
    FORUMCAST_CHECK_MSG(u < v && v < node_count,
                        "graph edge {" << u << ", " << v
                                       << "} is not canonical (need u < v < "
                                       << node_count << ")");
    FORUMCAST_CHECK_MSG(
        graph.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)),
        "graph edge {" << u << ", " << v << "} appears twice");
  }
  return graph;
}

}  // namespace forumcast::graph
