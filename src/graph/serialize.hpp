// Artifact codec for graph::Graph.
//
// Serialized as node count + the canonical edge list (u < v, ascending).
// Decode replays add_edge, which maintains sorted deduplicated adjacency —
// so a decoded graph is structurally identical to the encoded one (same
// neighbor orderings, same edge count), and centralities computed over it
// are bit-identical.
#pragma once

#include "artifact/artifact.hpp"
#include "graph/graph.hpp"

namespace forumcast::graph {

void encode_graph(const Graph& graph, artifact::Encoder& enc);
Graph decode_graph(artifact::Decoder& dec);

}  // namespace forumcast::graph
