#include "ml/activations.hpp"

#include <cmath>

namespace forumcast::ml {

double sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double softplus(double x) {
  // log(1 + e^x) computed without overflow for large |x|.
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double activate(Activation act, double pre) {
  switch (act) {
    case Activation::Identity: return pre;
    case Activation::ReLU: return pre > 0.0 ? pre : 0.0;
    case Activation::Tanh: return std::tanh(pre);
    case Activation::Sigmoid: return sigmoid(pre);
    case Activation::Softplus: return softplus(pre);
  }
  return pre;
}

double activate_derivative(Activation act, double pre) {
  switch (act) {
    case Activation::Identity: return 1.0;
    case Activation::ReLU: return pre > 0.0 ? 1.0 : 0.0;
    case Activation::Tanh: {
      const double t = std::tanh(pre);
      return 1.0 - t * t;
    }
    case Activation::Sigmoid: {
      const double s = sigmoid(pre);
      return s * (1.0 - s);
    }
    case Activation::Softplus: return sigmoid(pre);
  }
  return 1.0;
}

double activate_derivative_cached(Activation act, double pre, double post) {
  switch (act) {
    case Activation::Identity: return 1.0;
    case Activation::ReLU: return pre > 0.0 ? 1.0 : 0.0;
    case Activation::Tanh: return 1.0 - post * post;
    case Activation::Sigmoid: return post * (1.0 - post);
    case Activation::Softplus: return sigmoid(pre);
  }
  return 1.0;
}

std::string activation_name(Activation act) {
  switch (act) {
    case Activation::Identity: return "identity";
    case Activation::ReLU: return "relu";
    case Activation::Tanh: return "tanh";
    case Activation::Sigmoid: return "sigmoid";
    case Activation::Softplus: return "softplus";
  }
  return "?";
}

}  // namespace forumcast::ml
