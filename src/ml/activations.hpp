// Nonlinearities for the fully-connected networks of Sec. II-A.
#pragma once

#include <string>

namespace forumcast::ml {

enum class Activation { Identity, ReLU, Tanh, Sigmoid, Softplus };

/// Applies the activation to a pre-activation value.
double activate(Activation act, double pre);

/// Derivative d(activate)/d(pre) evaluated at pre-activation `pre`.
double activate_derivative(Activation act, double pre);

/// activate_derivative when the activation `post = activate(act, pre)` is
/// already at hand (training tapes cache it). Bit-identical — Tanh and
/// Sigmoid derivatives are algebraic in the activation value, and `post` is
/// the very double the recompute would produce — but skips the transcendental
/// call, which dominates backward passes through tanh hidden layers.
double activate_derivative_cached(Activation act, double pre, double post);

/// Human-readable name ("relu", "tanh", ...).
std::string activation_name(Activation act);

/// Numerically safe sigmoid.
double sigmoid(double x);

/// Numerically safe softplus log(1+e^x).
double softplus(double x);

}  // namespace forumcast::ml
