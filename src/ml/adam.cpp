#include "ml/adam.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace forumcast::ml {

Adam::Adam(std::size_t dimension, AdamConfig config)
    : config_(config), first_moment_(dimension, 0.0), second_moment_(dimension, 0.0) {
  FORUMCAST_CHECK(dimension > 0);
  FORUMCAST_CHECK(config_.learning_rate > 0.0);
  FORUMCAST_CHECK(config_.beta1 >= 0.0 && config_.beta1 < 1.0);
  FORUMCAST_CHECK(config_.beta2 >= 0.0 && config_.beta2 < 1.0);
}

void Adam::step(std::span<double> params, std::span<const double> grads) {
  FORUMCAST_CHECK(params.size() == first_moment_.size());
  FORUMCAST_CHECK(grads.size() == first_moment_.size());
  ++steps_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(steps_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(steps_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grads[i];
    first_moment_[i] = config_.beta1 * first_moment_[i] + (1.0 - config_.beta1) * g;
    second_moment_[i] = config_.beta2 * second_moment_[i] + (1.0 - config_.beta2) * g * g;
    const double m_hat = first_moment_[i] / bias1;
    const double v_hat = second_moment_[i] / bias2;
    params[i] -= config_.learning_rate *
                 (m_hat / (std::sqrt(v_hat) + config_.epsilon) +
                  config_.weight_decay * params[i]);
  }
}

void Adam::reset() {
  std::fill(first_moment_.begin(), first_moment_.end(), 0.0);
  std::fill(second_moment_.begin(), second_moment_.end(), 0.0);
  steps_ = 0;
}

Adam Adam::from_state(AdamConfig config, std::vector<double> first_moment,
                      std::vector<double> second_moment, std::size_t steps) {
  FORUMCAST_CHECK_MSG(first_moment.size() == second_moment.size(),
                      "Adam::from_state: moment dimension mismatch ("
                          << first_moment.size() << " vs "
                          << second_moment.size() << ")");
  Adam optimizer(first_moment.size(), config);
  optimizer.first_moment_ = std::move(first_moment);
  optimizer.second_moment_ = std::move(second_moment);
  optimizer.steps_ = steps;
  return optimizer;
}

}  // namespace forumcast::ml
