// Adam optimizer (Kingma & Ba), matching the paper's training setup.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace forumcast::ml {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  ///< decoupled L2 (AdamW-style), applied to params
};

class Adam {
 public:
  Adam(std::size_t dimension, AdamConfig config = {});

  /// One update: params -= lr * m̂ / (sqrt(v̂) + eps), with bias correction.
  /// `params` and `grads` must both have the optimizer's dimension.
  void step(std::span<double> params, std::span<const double> grads);

  void reset();

  std::size_t dimension() const { return first_moment_.size(); }
  const AdamConfig& config() const { return config_; }
  std::size_t steps_taken() const { return steps_; }
  std::span<const double> first_moment() const { return first_moment_; }
  std::span<const double> second_moment() const { return second_moment_; }

  /// Rebuilds mid-training optimizer state from a serialized checkpoint so a
  /// resumed fit takes the exact step the uninterrupted fit would have.
  static Adam from_state(AdamConfig config, std::vector<double> first_moment,
                         std::vector<double> second_moment, std::size_t steps);

 private:
  AdamConfig config_;
  std::vector<double> first_moment_;
  std::vector<double> second_moment_;
  std::size_t steps_ = 0;
};

}  // namespace forumcast::ml
