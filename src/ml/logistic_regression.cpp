#include "ml/logistic_regression.hpp"

#include <cmath>
#include <numeric>

#include "ml/activations.hpp"
#include "ml/adam.hpp"
#include "ml/matrix.hpp"
#include "ml/workspace.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::ml {

LogisticRegression::LogisticRegression(LogisticRegressionConfig config)
    : config_(config) {}

LogisticRegression LogisticRegression::from_parameters(
    std::vector<double> weights, double bias, LogisticRegressionConfig config) {
  FORUMCAST_CHECK(!weights.empty());
  LogisticRegression model(config);
  model.weights_ = std::move(weights);
  model.bias_ = bias;
  return model;
}

void LogisticRegression::fit(std::span<const std::vector<double>> rows,
                             std::span<const int> labels) {
  FORUMCAST_CHECK(!rows.empty());
  FORUMCAST_CHECK(rows.size() == labels.size());
  const std::size_t dim = rows.front().size();
  for (const auto& row : rows) FORUMCAST_CHECK(row.size() == dim);
  for (int label : labels) FORUMCAST_CHECK(label == 0 || label == 1);

  weights_.assign(dim, 0.0);
  bias_ = 0.0;

  // Parameters packed as [weights..., bias] for one Adam instance.
  std::vector<double> params(dim + 1, 0.0);
  std::vector<double> grads(dim + 1, 0.0);
  Adam adam(dim + 1, {.learning_rate = config_.learning_rate,
                      .weight_decay = 0.0});

  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Rng rng(config_.seed);

  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
  const std::size_t threads = config_.threads;
  // Per-batch residuals and row pointers live in the workspace arena for the
  // whole fit; `filled` tracks how much of the capacity a batch used.
  Workspace::Frame frame;
  double* errs = frame.workspace().alloc<double>(batch);
  const double** xrows = frame.workspace().alloc<const double*>(batch);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    FORUMCAST_SPAN("ml.logreg.epoch");
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      std::fill(grads.begin(), grads.end(), 0.0);
      if (threads == 1) {
        for (std::size_t k = start; k < end; ++k) {
          const auto idx = order[k];
          const auto& x = rows[idx];
          const double margin =
              dot(std::span<const double>(params).first(dim), x) + params[dim];
          const double p = sigmoid(margin);
          const double err = p - static_cast<double>(labels[idx]);
          // Brier score: two flops per sample, unlike log-loss, and monotone
          // enough to watch training converge.
          epoch_loss += err * err;
          for (std::size_t c = 0; c < dim; ++c) grads[c] += err * x[c];
          grads[dim] += err;
        }
      } else {
        // Margins and residuals depend only on the batch-start parameters,
        // so compute them serially in sample order, then shard the gradient
        // columns (bit-equal to the serial loop above at any thread count).
        std::size_t filled = 0;
        for (std::size_t k = start; k < end; ++k) {
          const auto idx = order[k];
          const auto& x = rows[idx];
          const double margin =
              dot(std::span<const double>(params).first(dim), x) + params[dim];
          const double p = sigmoid(margin);
          const double err = p - static_cast<double>(labels[idx]);
          epoch_loss += err * err;
          errs[filled] = err;
          xrows[filled] = x.data();
          ++filled;
        }
        accumulate_weighted_rows(
            std::span<const double* const>(xrows, filled),
            std::span<const double>(errs, filled),
            std::span<double>(grads).first(dim), threads);
        for (std::size_t i = 0; i < filled; ++i) grads[dim] += errs[i];
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      for (std::size_t c = 0; c < dim; ++c) {
        grads[c] = grads[c] * inv + config_.l2 * params[c];
      }
      grads[dim] *= inv;  // no regularization on the bias
      adam.step(params, grads);
    }
    FORUMCAST_GAUGE_SET("ml.logreg.train_loss",
                        epoch_loss / static_cast<double>(rows.size()));
  }

  weights_.assign(params.begin(), params.begin() + static_cast<std::ptrdiff_t>(dim));
  bias_ = params[dim];
}

double LogisticRegression::predict_probability(std::span<const double> row) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(row.size() == weights_.size());
  return sigmoid(dot(weights_, row) + bias_);
}

double LogisticRegression::log_loss(std::span<const std::vector<double>> rows,
                                    std::span<const int> labels) const {
  FORUMCAST_CHECK(rows.size() == labels.size());
  FORUMCAST_CHECK(!rows.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double p = predict_probability(rows[i]);
    const double clipped = std::min(1.0 - 1e-12, std::max(1e-12, p));
    total += labels[i] == 1 ? -std::log(clipped) : -std::log(1.0 - clipped);
  }
  return total / static_cast<double>(rows.size());
}

}  // namespace forumcast::ml
