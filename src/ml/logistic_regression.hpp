// L2-regularized logistic regression.
//
// The paper's a_{u,q} predictor (Sec. II-A.1): a deliberately linear model on
// x_{u,q} to avoid overfitting the extremely sparse answering matrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace forumcast::ml {

struct LogisticRegressionConfig {
  double learning_rate = 0.05;
  /// The balanced positive/negative training set is near-separable on active
  /// users, so meaningful ridge strength is needed for out-of-sample ranking.
  double l2 = 0.1;
  std::size_t epochs = 200;
  std::size_t batch_size = 64;
  std::uint64_t seed = 1;
  /// Gradient-accumulation threads; 1 = the sample-major serial loop, 0 =
  /// util::default_thread_count(). The parallel path shards columns with
  /// per-column chains in sample order (ml::accumulate_weighted_rows), so it
  /// is bit-equal to the serial loop at every thread count.
  std::size_t threads = 1;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {});

  /// Trains on row-major samples with {0,1} labels via minibatch Adam.
  void fit(std::span<const std::vector<double>> rows, std::span<const int> labels);

  /// P(label = 1 | row). Requires fit().
  double predict_probability(std::span<const double> row) const;

  /// Mean negative log-likelihood on a dataset (diagnostics / tests).
  double log_loss(std::span<const std::vector<double>> rows,
                  std::span<const int> labels) const;

  /// Reconstructs a fitted model from stored parameters (deserialization).
  static LogisticRegression from_parameters(std::vector<double> weights,
                                            double bias,
                                            LogisticRegressionConfig config = {});

  bool fitted() const { return !weights_.empty(); }
  std::span<const double> weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegressionConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace forumcast::ml
