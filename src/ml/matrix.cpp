#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>
#ifdef __FMA__
#include <immintrin.h>
#endif

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace forumcast::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), storage_(rows * cols, fill) {}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  storage_.resize(rows * cols);
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  FORUMCAST_CHECK(r < rows_ && c < cols_);
  return storage_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  FORUMCAST_CHECK(r < rows_ && c < cols_);
  return storage_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  FORUMCAST_CHECK(r < rows_);
  return std::span<double>(storage_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  FORUMCAST_CHECK(r < rows_);
  return std::span<const double>(storage_).subspan(r * cols_, cols_);
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  FORUMCAST_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = storage_.data() + r * cols_;
    double accum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) accum += row_ptr[c] * x[c];
    y[r] = accum;
  }
  return y;
}

std::vector<double> Matrix::multiply_transposed(std::span<const double> x) const {
  FORUMCAST_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = storage_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

Matrix Matrix::matmul(const Matrix& other) const {
  FORUMCAST_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* b_row = other.storage_.data() + k * other.cols_;
      double* out_row = out.storage_.data() + r * other.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) out_row[c] += a * b_row[c];
    }
  }
  return out;
}

Matrix Matrix::matmul_nt(const Matrix& other, std::span<const double> bias) const {
  FORUMCAST_CHECK(cols_ == other.cols_);
  if (!bias.empty()) FORUMCAST_CHECK(bias.size() == other.rows_);
  Matrix out(rows_, other.rows_);
  gemm_nt(rows_, other.rows_, cols_, storage_.data(), cols_,
          other.storage_.data(), other.cols_, bias.empty() ? nullptr : bias.data(),
          out.storage_.data(), out.cols_);
  return out;
}

#if defined(__GNUC__) || defined(__clang__)
#define FORUMCAST_GEMM_SIMD 1
namespace {
using v4df = double __attribute__((vector_size(32)));

// Four lanes of ml::fmadd — same pinned-contraction contract: one rounding
// per step on FMA hardware, mul-then-add otherwise, each lane independent.
inline v4df vfmadd(double a, v4df b, v4df acc) {
#ifdef __FMA__
  const v4df av = {a, a, a, a};
  return static_cast<v4df>(
      _mm256_fmadd_pd(static_cast<__m256d>(av), static_cast<__m256d>(b),
                      static_cast<__m256d>(acc)));
#else
  return acc + a * b;
#endif
}
}  // namespace
#endif

void gemm_nt(std::size_t n, std::size_t m, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb,
             const double* bias, double* c, std::size_t ldc) {
#ifdef FORUMCAST_GEMM_SIMD
  // B's rows are strided, which blocks SIMD; repack each group of four rows
  // into a k-major panel ([kk][lane] contiguous) once per call, then sweep
  // the panels with 4-lane vector arithmetic. Lane l of a panel accumulates
  // bias[j+l] + Σ_kk a[i][kk]·b[j+l][kk] with kk ascending — the exact
  // floating-point sequence of the scalar loop below (broadcast-multiply-add
  // per lane), so gemm results stay bit-identical to Mlp::forward.
  // O(m·k) pack cost amortizes over the n row sweeps.
  thread_local std::vector<double> packed;
  const std::size_t panels = n > 1 ? m / 4 : 0;
  packed.resize(panels * k * 4);
  for (std::size_t p = 0; p < panels; ++p) {
    const double* b0 = b + (p * 4) * ldb;
    const double* b1 = b0 + ldb;
    const double* b2 = b1 + ldb;
    const double* b3 = b2 + ldb;
    double* dst = packed.data() + p * k * 4;
    for (std::size_t kk = 0; kk < k; ++kk) {
      dst[kk * 4 + 0] = b0[kk];
      dst[kk * 4 + 1] = b1[kk];
      dst[kk * 4 + 2] = b2[kk];
      dst[kk * 4 + 3] = b3[kk];
    }
  }
  // 4×4 micro-kernel: four A rows sweep a panel together, giving four
  // independent accumulator chains (the per-column k-order chain is serial by
  // the bit-exactness contract, so ILP has to come from rows) and reusing
  // each packed panel load four times.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a + i * lda;
    const double* a1 = a0 + lda;
    const double* a2 = a1 + lda;
    const double* a3 = a2 + lda;
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t j = p * 4;
      const double* pb = packed.data() + p * k * 4;
      const v4df seed = bias
                            ? v4df{bias[j], bias[j + 1], bias[j + 2], bias[j + 3]}
                            : v4df{0.0, 0.0, 0.0, 0.0};
      v4df acc0 = seed, acc1 = seed, acc2 = seed, acc3 = seed;
      for (std::size_t kk = 0; kk < k; ++kk) {
        v4df bv;
        __builtin_memcpy(&bv, pb + kk * 4, sizeof(bv));
        acc0 = vfmadd(a0[kk], bv, acc0);
        acc1 = vfmadd(a1[kk], bv, acc1);
        acc2 = vfmadd(a2[kk], bv, acc2);
        acc3 = vfmadd(a3[kk], bv, acc3);
      }
      __builtin_memcpy(c + (i + 0) * ldc + j, &acc0, sizeof(acc0));
      __builtin_memcpy(c + (i + 1) * ldc + j, &acc1, sizeof(acc1));
      __builtin_memcpy(c + (i + 2) * ldc + j, &acc2, sizeof(acc2));
      __builtin_memcpy(c + (i + 3) * ldc + j, &acc3, sizeof(acc3));
    }
    for (std::size_t j = panels * 4; j < m; ++j) {
      const double* bj = b + j * ldb;
      double s0 = bias ? bias[j] : 0.0;
      double s1 = s0, s2 = s0, s3 = s0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double bv = bj[kk];
        s0 = fmadd(a0[kk], bv, s0);
        s1 = fmadd(a1[kk], bv, s1);
        s2 = fmadd(a2[kk], bv, s2);
        s3 = fmadd(a3[kk], bv, s3);
      }
      c[(i + 0) * ldc + j] = s0;
      c[(i + 1) * ldc + j] = s1;
      c[(i + 2) * ldc + j] = s2;
      c[(i + 3) * ldc + j] = s3;
    }
  }
  for (; i < n; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t j = p * 4;
      const double* pb = packed.data() + p * k * 4;
      v4df acc = bias ? v4df{bias[j], bias[j + 1], bias[j + 2], bias[j + 3]}
                      : v4df{0.0, 0.0, 0.0, 0.0};
      for (std::size_t kk = 0; kk < k; ++kk) {
        v4df bv;
        __builtin_memcpy(&bv, pb + kk * 4, sizeof(bv));
        acc = vfmadd(ai[kk], bv, acc);
      }
      __builtin_memcpy(ci + j, &acc, sizeof(acc));
    }
    for (std::size_t j = panels * 4; j < m; ++j) {
      const double* bj = b + j * ldb;
      double accum = bias ? bias[j] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        accum = fmadd(ai[kk], bj[kk], accum);
      }
      ci[j] = accum;
    }
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = b + j * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      double s0 = bias ? bias[j] : 0.0;
      double s1 = bias ? bias[j + 1] : 0.0;
      double s2 = bias ? bias[j + 2] : 0.0;
      double s3 = bias ? bias[j + 3] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double av = ai[kk];
        s0 = fmadd(av, b0[kk], s0);
        s1 = fmadd(av, b1[kk], s1);
        s2 = fmadd(av, b2[kk], s2);
        s3 = fmadd(av, b3[kk], s3);
      }
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
    }
    for (; j < m; ++j) {
      const double* bj = b + j * ldb;
      double accum = bias ? bias[j] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        accum = fmadd(ai[kk], bj[kk], accum);
      }
      ci[j] = accum;
    }
  }
#endif
}

void gemm_nn(std::size_t n, std::size_t m, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    std::fill(ci, ci + m, 0.0);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double av = ai[kk];
      if (av == 0.0) continue;
      const double* bk = b + kk * ldb;
      std::size_t j = 0;
#ifdef FORUMCAST_GEMM_SIMD
      for (; j + 4 <= m; j += 4) {
        v4df cv, bv;
        __builtin_memcpy(&cv, ci + j, sizeof(cv));
        __builtin_memcpy(&bv, bk + j, sizeof(bv));
        cv = vfmadd(av, bv, cv);
        __builtin_memcpy(ci + j, &cv, sizeof(cv));
      }
#endif
      for (; j < m; ++j) {
        ci[j] = fmadd(av, bk[j], ci[j]);
      }
    }
  }
}

void gemm_tn_accumulate(std::size_t k, std::size_t n, std::size_t m,
                        const double* a, std::size_t lda, const double* b,
                        std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t r = 0; r < k; ++r) {
    const double* ar = a + r * lda;
    const double* br = b + r * ldb;
    for (std::size_t u = 0; u < n; ++u) {
      const double av = ar[u];
      if (av == 0.0) continue;
      double* cu = c + u * ldc;
      std::size_t j = 0;
#ifdef FORUMCAST_GEMM_SIMD
      for (; j + 4 <= m; j += 4) {
        v4df cv, bv;
        __builtin_memcpy(&cv, cu + j, sizeof(cv));
        __builtin_memcpy(&bv, br + j, sizeof(bv));
        cv = vfmadd(av, bv, cv);
        __builtin_memcpy(cu + j, &cv, sizeof(cv));
      }
#endif
      for (; j < m; ++j) {
        cu[j] = fmadd(av, br[j], cu[j]);
      }
    }
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void Matrix::fill(double value) { std::fill(storage_.begin(), storage_.end(), value); }

void Matrix::add_scaled(const Matrix& other, double scale) {
  FORUMCAST_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < storage_.size(); ++i) {
    storage_[i] += scale * other.storage_[i];
  }
}

double Matrix::frobenius_norm() const {
  double accum = 0.0;
  for (double v : storage_) accum += v * v;
  return std::sqrt(accum);
}

void accumulate_weighted_rows(std::span<const double* const> rows,
                              std::span<const double> errs,
                              std::span<double> grads, std::size_t threads) {
  FORUMCAST_CHECK(rows.size() == errs.size());
  const std::size_t count = rows.size();
  // Grain of 64 columns: below that a chunk is a few thousand flops, far
  // cheaper than a thread spawn, so feature-vector-sized models (a few tens
  // of columns) always run inline regardless of the requested thread count.
  util::parallel_for_chunks(
      grads.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = 0; k < count; ++k) {
          const double e = errs[k];
          const double* x = rows[k];
          for (std::size_t c = begin; c < end; ++c) grads[c] += e * x[c];
        }
      },
      threads, /*grain=*/64);
}

double dot(std::span<const double> a, std::span<const double> b) {
  FORUMCAST_CHECK(a.size() == b.size());
  double accum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) accum += a[i] * b[i];
  return accum;
}

void axpy(std::span<double> a, std::span<const double> b, double scale) {
  FORUMCAST_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void gemm_nt(Tensor<const double> a, Tensor<const double> b,
             std::span<const double> bias, Tensor<double> c) {
  FORUMCAST_CHECK(a.cols() == b.cols());
  FORUMCAST_CHECK(c.rows() == a.rows() && c.cols() == b.rows());
  FORUMCAST_CHECK(bias.empty() || bias.size() == b.rows());
  gemm_nt(a.rows(), b.rows(), a.cols(), a.data(), a.stride(), b.data(),
          b.stride(), bias.empty() ? nullptr : bias.data(), c.data(),
          c.stride());
}

void gemm_tn_accumulate(Tensor<const double> a, Tensor<const double> b,
                        Tensor<double> c) {
  FORUMCAST_CHECK(a.rows() == b.rows());
  FORUMCAST_CHECK(c.rows() == a.cols() && c.cols() == b.cols());
  gemm_tn_accumulate(a.rows(), a.cols(), b.cols(), a.data(), a.stride(),
                     b.data(), b.stride(), c.data(), c.stride());
}

}  // namespace forumcast::ml
