#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace forumcast::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), storage_(rows * cols, fill) {}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  FORUMCAST_CHECK(r < rows_ && c < cols_);
  return storage_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  FORUMCAST_CHECK(r < rows_ && c < cols_);
  return storage_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  FORUMCAST_CHECK(r < rows_);
  return std::span<double>(storage_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  FORUMCAST_CHECK(r < rows_);
  return std::span<const double>(storage_).subspan(r * cols_, cols_);
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  FORUMCAST_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = storage_.data() + r * cols_;
    double accum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) accum += row_ptr[c] * x[c];
    y[r] = accum;
  }
  return y;
}

std::vector<double> Matrix::multiply_transposed(std::span<const double> x) const {
  FORUMCAST_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = storage_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

Matrix Matrix::matmul(const Matrix& other) const {
  FORUMCAST_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* b_row = other.storage_.data() + k * other.cols_;
      double* out_row = out.storage_.data() + r * other.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) out_row[c] += a * b_row[c];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void Matrix::fill(double value) { std::fill(storage_.begin(), storage_.end(), value); }

void Matrix::add_scaled(const Matrix& other, double scale) {
  FORUMCAST_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < storage_.size(); ++i) {
    storage_[i] += scale * other.storage_[i];
  }
}

double Matrix::frobenius_norm() const {
  double accum = 0.0;
  for (double v : storage_) accum += v * v;
  return std::sqrt(accum);
}

double dot(std::span<const double> a, std::span<const double> b) {
  FORUMCAST_CHECK(a.size() == b.size());
  double accum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) accum += a[i] * b[i];
  return accum;
}

void axpy(std::span<double> a, std::span<const double> b, double scale) {
  FORUMCAST_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace forumcast::ml
