// Dense row-major matrix of doubles.
//
// Deliberately small: the models in this library are feature-vector scale
// (tens of dimensions), so we need clarity and correctness, not BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace forumcast::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Mutable view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<double> data() { return storage_; }
  std::span<const double> data() const { return storage_; }

  /// y = A x. Requires x.size() == cols(); returns vector of size rows().
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A^T x. Requires x.size() == rows(); returns vector of size cols().
  std::vector<double> multiply_transposed(std::span<const double> x) const;

  /// C = A * B. Requires cols() == other.rows().
  Matrix matmul(const Matrix& other) const;

  Matrix transposed() const;

  void fill(double value);

  /// this += scale * other (same shape required).
  void add_scaled(const Matrix& other, double scale);

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> storage_;
};

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// a += scale * b (in place); sizes must match.
void axpy(std::span<double> a, std::span<const double> b, double scale);

/// Euclidean norm.
double norm2(std::span<const double> a);

}  // namespace forumcast::ml
