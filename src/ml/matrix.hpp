// Dense row-major matrix of doubles.
//
// Deliberately small: the models in this library are feature-vector scale
// (tens of dimensions), so we need clarity and correctness, not BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace forumcast::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Mutable view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<double> data() { return storage_; }
  std::span<const double> data() const { return storage_; }

  /// y = A x. Requires x.size() == cols(); returns vector of size rows().
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A^T x. Requires x.size() == rows(); returns vector of size cols().
  std::vector<double> multiply_transposed(std::span<const double> x) const;

  /// C = A * B. Requires cols() == other.rows().
  Matrix matmul(const Matrix& other) const;

  /// C = A * B^T (+ optional per-column bias). Requires cols() == other.cols().
  /// This is the batched-inference product: A holds N samples row-major and B
  /// holds M weight rows, so both operands stream contiguously. Backed by the
  /// blocked gemm_nt kernel below; accumulation order per output element
  /// matches the scalar dot-product loop, so results are bit-identical to
  /// per-row multiply().
  Matrix matmul_nt(const Matrix& other,
                   std::span<const double> bias = {}) const;

  Matrix transposed() const;

  /// Reshapes to rows × cols, reusing the existing allocation when its
  /// capacity allows. Element values are unspecified afterwards — this is for
  /// scratch buffers whose every element is overwritten before being read
  /// (e.g. gemm_nt outputs, which are seeded with the bias).
  void resize(std::size_t rows, std::size_t cols);

  void fill(double value);

  /// this += scale * other (same shape required).
  void add_scaled(const Matrix& other, double scale);

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> storage_;
};

/// One accumulation step acc + a·b with the floating-point contraction pinned
/// at the source: a single rounding (true FMA) when the target has FMA
/// hardware, mul-then-add otherwise. The scalar Mlp::forward loop and every
/// gemm_nt variant below accumulate through this helper (or its SIMD
/// equivalent), so batch and scalar paths make the same rounding decisions
/// and stay bit-identical even when the compiler would otherwise contract
/// one path but not the other.
inline double fmadd(double a, double b, double acc) {
#ifdef __FMA__
  return __builtin_fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// Blocked GEMM kernel: C(n×m) = A(n×k) · B(m×k)^T, C[i][j] += bias[j] first
/// when `bias` is non-null. Row strides are lda/ldb/ldc. B's rows play the
/// role of weight vectors, so for each output the k-loop accumulates in
/// ascending order — bit-identical to a scalar dot product. The kernel is
/// register-blocked four columns wide: one pass over an A row feeds four
/// independent accumulators, which hides FP latency and quarters the A-row
/// load traffic without reordering any per-element sum.
void gemm_nt(std::size_t n, std::size_t m, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb,
             const double* bias, double* c, std::size_t ldc);

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// a += scale * b (in place); sizes must match.
void axpy(std::span<double> a, std::span<const double> b, double scale);

/// Euclidean norm.
double norm2(std::span<const double> a);

}  // namespace forumcast::ml
