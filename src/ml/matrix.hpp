// Dense row-major matrix of doubles.
//
// Deliberately small: the models in this library are feature-vector scale
// (tens of dimensions), so we need clarity and correctness, not BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/tensor.hpp"

namespace forumcast::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Mutable view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  std::span<double> data() { return storage_; }
  std::span<const double> data() const { return storage_; }

  /// Non-owning Tensor view over the matrix storage (dense, stride == cols).
  /// Bridges Matrix-holding call sites into the tensor/workspace kernels;
  /// valid until the matrix is resized or destroyed.
  Tensor<double> view() { return Tensor<double>(storage_.data(), rows_, cols_); }
  Tensor<const double> view() const {
    return Tensor<const double>(storage_.data(), rows_, cols_);
  }

  /// y = A x. Requires x.size() == cols(); returns vector of size rows().
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A^T x. Requires x.size() == rows(); returns vector of size cols().
  std::vector<double> multiply_transposed(std::span<const double> x) const;

  /// C = A * B. Requires cols() == other.rows().
  Matrix matmul(const Matrix& other) const;

  /// C = A * B^T (+ optional per-column bias). Requires cols() == other.cols().
  /// This is the batched-inference product: A holds N samples row-major and B
  /// holds M weight rows, so both operands stream contiguously. Backed by the
  /// blocked gemm_nt kernel below; accumulation order per output element
  /// matches the scalar dot-product loop, so results are bit-identical to
  /// per-row multiply().
  Matrix matmul_nt(const Matrix& other,
                   std::span<const double> bias = {}) const;

  Matrix transposed() const;

  /// Reshapes to rows × cols, reusing the existing allocation when its
  /// capacity allows. Element values are unspecified afterwards — this is for
  /// scratch buffers whose every element is overwritten before being read
  /// (e.g. gemm_nt outputs, which are seeded with the bias).
  void resize(std::size_t rows, std::size_t cols);

  void fill(double value);

  /// this += scale * other (same shape required).
  void add_scaled(const Matrix& other, double scale);

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> storage_;
};

/// One accumulation step acc + a·b with the floating-point contraction pinned
/// at the source: a single rounding (true FMA) when the target has FMA
/// hardware, mul-then-add otherwise. The scalar Mlp::forward loop and every
/// gemm_nt variant below accumulate through this helper (or its SIMD
/// equivalent), so batch and scalar paths make the same rounding decisions
/// and stay bit-identical even when the compiler would otherwise contract
/// one path but not the other.
inline double fmadd(double a, double b, double acc) {
#ifdef __FMA__
  return __builtin_fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// Blocked GEMM kernel: C(n×m) = A(n×k) · B(m×k)^T, C[i][j] += bias[j] first
/// when `bias` is non-null. Row strides are lda/ldb/ldc. B's rows play the
/// role of weight vectors, so for each output the k-loop accumulates in
/// ascending order — bit-identical to a scalar dot product. The kernel is
/// register-blocked four columns wide: one pass over an A row feeds four
/// independent accumulators, which hides FP latency and quarters the A-row
/// load traffic without reordering any per-element sum.
void gemm_nt(std::size_t n, std::size_t m, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb,
             const double* bias, double* c, std::size_t ldc);

/// Row-update GEMM: C(n×m) = A(n×k) · B(k×m), overwriting C. Each C row is
/// zeroed and then accumulated one B row at a time, so every output element's
/// k-loop runs in ascending order through ml::fmadd (vectorized four columns
/// wide with independent per-lane chains) — bit-identical to the pinned
/// scalar loop `for k: c[j] = fmadd(a[k], b[k][j], c[j])`. This is the
/// training-time gradient propagation product (dL/dinput = dL/dpre · W),
/// where B's rows — not its columns — are contiguous, which rules out the
/// gemm_nt layout. Zero elements of A skip their whole B-row update (common
/// under ReLU); with accumulators rooted at +0.0 the skip cannot change any
/// result bit, because adding a ±0.0 product to such a chain is an identity.
void gemm_nn(std::size_t n, std::size_t m, std::size_t k, const double* a,
             std::size_t lda, const double* b, std::size_t ldb, double* c,
             std::size_t ldc);

/// Accumulating transposed GEMM: C(n×m) += A(k×n)^T · B(k×m), i.e.
/// C[u][j] += Σ_r A[r][u]·B[r][j] with r ascending. This is the minibatch
/// weight-gradient product (WG += dL/dpre^T · activations): the k dimension
/// is the batch, and the serial trainer accumulates exactly these rank-1
/// updates one sample at a time, so running the r-loop outermost — streaming
/// both operands row-major, no transposes or scratch — reproduces the serial
/// per-element fmadd chains bit-for-bit even when C starts nonzero
/// (gradients accumulate across minibatches). Rows of A whose element is
/// zero skip their update, mirroring the serial loop's `g == 0` skip
/// (bit-neutral: adding a ±0.0 product to a chain rooted at +0.0 or any
/// accumulated value is an identity for these inputs).
void gemm_tn_accumulate(std::size_t k, std::size_t n, std::size_t m,
                        const double* a, std::size_t lda, const double* b,
                        std::size_t ldb, double* c, std::size_t ldc);

/// Tensor-view front ends for the kernels above: shapes and strides come
/// from the views, arithmetic is byte-for-byte the raw-pointer kernel.
/// gemm_nt: c(n×m) = a(n×k) · b(m×k)^T (+ bias when non-empty).
void gemm_nt(Tensor<const double> a, Tensor<const double> b,
             std::span<const double> bias, Tensor<double> c);

/// gemm_tn_accumulate: c(n×m) += a(k×n)^T · b(k×m).
void gemm_tn_accumulate(Tensor<const double> a, Tensor<const double> b,
                        Tensor<double> c);

/// Deterministic parallel gradient accumulation for the linear models:
/// grads[c] += Σ_k errs[k] · rows[k][c] for every column c. Each column's
/// chain accumulates in sample order (k ascending) with exactly the
/// per-element operations of the sample-major serial loop
/// `for k: for c: grads[c] += errs[k]·rows[k][c]` — the chains are
/// independent per column, so sharding columns across threads cannot reorder
/// any of them and the result is bit-equal to the serial loop at EVERY
/// thread count (a stronger guarantee than the per-thread-partials shape,
/// which is only deterministic for a fixed count). Columns shard through
/// util::parallel_for_chunks with a grain that keeps feature-vector-sized
/// models inline on the calling thread.
void accumulate_weighted_rows(std::span<const double* const> rows,
                              std::span<const double> errs,
                              std::span<double> grads, std::size_t threads);

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// a += scale * b (in place); sizes must match.
void axpy(std::span<double> a, std::span<const double> b, double scale);

/// Euclidean norm.
double norm2(std::span<const double> a);

}  // namespace forumcast::ml
