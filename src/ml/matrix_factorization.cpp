#include "ml/matrix_factorization.hpp"

#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::ml {

MatrixFactorization::MatrixFactorization(MatrixFactorizationConfig config)
    : config_(config) {
  FORUMCAST_CHECK(config_.latent_dim > 0);
}

void MatrixFactorization::fit(std::span<const Rating> ratings,
                              std::size_t num_users, std::size_t num_items) {
  FORUMCAST_CHECK(!ratings.empty());
  FORUMCAST_CHECK(num_users > 0 && num_items > 0);
  for (const auto& r : ratings) {
    FORUMCAST_CHECK(r.user < num_users);
    FORUMCAST_CHECK(r.item < num_items);
  }

  const std::size_t d = config_.latent_dim;
  util::Rng rng(config_.seed);
  auto init = [&](std::vector<double>& v, std::size_t n) {
    v.resize(n);
    for (double& x : v) x = rng.normal(0.0, 0.05);
  };
  init(user_factors_, num_users * d);
  init(item_factors_, num_items * d);
  user_bias_.assign(num_users, 0.0);
  item_bias_.assign(num_items, 0.0);

  global_mean_ = 0.0;
  for (const auto& r : ratings) global_mean_ += r.value;
  global_mean_ /= static_cast<double>(ratings.size());

  std::vector<std::size_t> order(ratings.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  const double lr = config_.learning_rate;
  const double reg = config_.l2;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const Rating& r = ratings[idx];
      double* pu = user_factors_.data() + r.user * d;
      double* qi = item_factors_.data() + r.item * d;
      double pred = global_mean_ + user_bias_[r.user] + item_bias_[r.item];
      for (std::size_t k = 0; k < d; ++k) pred += pu[k] * qi[k];
      const double err = r.value - pred;
      user_bias_[r.user] += lr * (err - reg * user_bias_[r.user]);
      item_bias_[r.item] += lr * (err - reg * item_bias_[r.item]);
      for (std::size_t k = 0; k < d; ++k) {
        const double pu_k = pu[k];
        pu[k] += lr * (err * qi[k] - reg * pu_k);
        qi[k] += lr * (err * pu_k - reg * qi[k]);
      }
    }
  }
  fitted_ = true;
}

double MatrixFactorization::predict(std::size_t user, std::size_t item) const {
  FORUMCAST_CHECK(fitted());
  const std::size_t d = config_.latent_dim;
  double pred = global_mean_;
  const bool known_user = user < user_bias_.size();
  const bool known_item = item < item_bias_.size();
  if (known_user) pred += user_bias_[user];
  if (known_item) pred += item_bias_[item];
  if (known_user && known_item) {
    const double* pu = user_factors_.data() + user * d;
    const double* qi = item_factors_.data() + item * d;
    for (std::size_t k = 0; k < d; ++k) pred += pu[k] * qi[k];
  }
  return pred;
}

MatrixFactorization MatrixFactorization::from_state(
    MatrixFactorizationConfig config, double global_mean,
    std::vector<double> user_bias, std::vector<double> item_bias,
    std::vector<double> user_factors, std::vector<double> item_factors) {
  const std::size_t d = config.latent_dim;
  FORUMCAST_CHECK_MSG(d >= 1, "MatrixFactorization::from_state: latent_dim 0");
  FORUMCAST_CHECK_MSG(user_factors.size() == user_bias.size() * d,
                      "MatrixFactorization::from_state: user_factors size "
                          << user_factors.size() << " != " << user_bias.size()
                          << " users x " << d);
  FORUMCAST_CHECK_MSG(item_factors.size() == item_bias.size() * d,
                      "MatrixFactorization::from_state: item_factors size "
                          << item_factors.size() << " != " << item_bias.size()
                          << " items x " << d);
  MatrixFactorization model(config);
  model.fitted_ = true;
  model.global_mean_ = global_mean;
  model.user_bias_ = std::move(user_bias);
  model.item_bias_ = std::move(item_bias);
  model.user_factors_ = std::move(user_factors);
  model.item_factors_ = std::move(item_factors);
  return model;
}

}  // namespace forumcast::ml
