// Biased matrix factorization (Koren-style), the paper's net-vote baseline.
//
// v̂_{u,q} = μ + b_u + b_q + p_uᵀ s_q, trained by SGD on observed
// (user, item, value) triples with L2 regularization. Latent dimension
// defaults to 5 as in Sec. IV-A.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace forumcast::ml {

struct MatrixFactorizationConfig {
  std::size_t latent_dim = 5;
  double learning_rate = 0.01;
  double l2 = 0.05;
  std::size_t epochs = 60;
  std::uint64_t seed = 7;
};

struct Rating {
  std::size_t user = 0;
  std::size_t item = 0;
  double value = 0.0;
};

class MatrixFactorization {
 public:
  explicit MatrixFactorization(MatrixFactorizationConfig config = {});

  /// Trains on observed triples; `num_users`/`num_items` bound the id space.
  void fit(std::span<const Rating> ratings, std::size_t num_users,
           std::size_t num_items);

  /// Prediction for any (user, item); unseen ids fall back to the biases
  /// they have (global mean when both are unseen).
  double predict(std::size_t user, std::size_t item) const;

  bool fitted() const { return fitted_; }
  double global_mean() const { return global_mean_; }
  std::size_t latent_dim() const { return config_.latent_dim; }
  std::span<const double> user_bias() const { return user_bias_; }
  std::span<const double> item_bias() const { return item_bias_; }
  std::span<const double> user_factors() const { return user_factors_; }
  std::span<const double> item_factors() const { return item_factors_; }

  /// Rebuilds a fitted model from serialized state (factor matrices
  /// row-major at `config.latent_dim` columns); bit-identical predictions.
  static MatrixFactorization from_state(MatrixFactorizationConfig config,
                                        double global_mean,
                                        std::vector<double> user_bias,
                                        std::vector<double> item_bias,
                                        std::vector<double> user_factors,
                                        std::vector<double> item_factors);

 private:
  MatrixFactorizationConfig config_;
  bool fitted_ = false;
  double global_mean_ = 0.0;
  std::vector<double> user_bias_;
  std::vector<double> item_bias_;
  std::vector<double> user_factors_;  // row-major num_users x latent_dim
  std::vector<double> item_factors_;  // row-major num_items x latent_dim
};

}  // namespace forumcast::ml
