#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::ml {

Mlp::Mlp(std::size_t input_dim, std::vector<LayerSpec> layers, std::uint64_t seed)
    : input_dim_(input_dim), layers_(std::move(layers)) {
  FORUMCAST_CHECK(input_dim_ > 0);
  FORUMCAST_CHECK(!layers_.empty());
  for (const auto& layer : layers_) FORUMCAST_CHECK(layer.units > 0);

  std::size_t offset = 0;
  weight_offset_.resize(layers_.size());
  bias_offset_.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    weight_offset_[l] = offset;
    offset += layers_[l].units * fan_in(l);
    bias_offset_[l] = offset;
    offset += layers_[l].units;
  }
  params_.assign(offset, 0.0);
  grads_.assign(offset, 0.0);

  util::Rng rng(seed);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const double limit = std::sqrt(6.0 / static_cast<double>(fan_in(l) + layers_[l].units));
    for (std::size_t i = 0; i < layers_[l].units * fan_in(l); ++i) {
      params_[weight_offset_[l] + i] = rng.uniform(-limit, limit);
    }
    // Biases start at zero.
  }
}

std::size_t Mlp::fan_in(std::size_t layer) const {
  return layer == 0 ? input_dim_ : layers_[layer - 1].units;
}

std::size_t Mlp::max_units() const {
  std::size_t m = 0;
  for (const auto& layer : layers_) m = std::max(m, layer.units);
  return m;
}

Tensor<const double> Mlp::weights(std::size_t layer) const {
  FORUMCAST_CHECK(layer < layers_.size());
  return Tensor<const double>(params_.data() + weight_offset_[layer],
                              layers_[layer].units, fan_in(layer));
}

std::span<const double> Mlp::bias(std::size_t layer) const {
  FORUMCAST_CHECK(layer < layers_.size());
  return {params_.data() + bias_offset_[layer], layers_[layer].units};
}

// ---------------------------------------------------------------------------
// Tape: flat per-layer activation views.

std::span<const double> Mlp::Tape::pre(std::size_t layer) const {
  FORUMCAST_CHECK(layer < units_.size());
  return {storage_.data() + offset_[layer], units_[layer]};
}

std::span<const double> Mlp::Tape::post(std::size_t layer) const {
  FORUMCAST_CHECK(layer < units_.size());
  return {storage_.data() + offset_[layer] + units_[layer], units_[layer]};
}

std::span<double> Mlp::Tape::pre_mut(std::size_t layer) {
  return {storage_.data() + offset_[layer], units_[layer]};
}

std::span<double> Mlp::Tape::post_mut(std::size_t layer) {
  return {storage_.data() + offset_[layer] + units_[layer], units_[layer]};
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
  FORUMCAST_CHECK_MSG(x.size() == input_dim_,
                      "input dim " << x.size() << " != " << input_dim_);
  // Ping-pong between two arena buffers: pre-activations land in one, the
  // activation applies in place, and the result feeds the next layer. Same
  // fmadd chains as the tape-filling forward — bit-identical output.
  Workspace::Frame frame;
  const std::size_t width = max_units();
  double* bufs[2] = {frame.workspace().alloc<double>(width),
                     frame.workspace().alloc<double>(width)};
  const double* current = x.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    double* pre = bufs[l % 2];
    const double* weights = params_.data() + weight_offset_[l];
    const double* bias = params_.data() + bias_offset_[l];
    for (std::size_t u = 0; u < units; ++u) {
      const double* w_row = weights + u * in_dim;
      double accum = bias[u];
      // fmadd pins the contraction so this loop and gemm_nt round alike.
      for (std::size_t i = 0; i < in_dim; ++i) {
        accum = fmadd(w_row[i], current[i], accum);
      }
      pre[u] = accum;
    }
    const Activation activation = layers_[l].activation;
    for (std::size_t u = 0; u < units; ++u) pre[u] = activate(activation, pre[u]);
    current = pre;
  }
  return std::vector<double>(current, current + output_dim());
}

std::vector<double> Mlp::forward(std::span<const double> x, Tape& tape) const {
  FORUMCAST_CHECK_MSG(x.size() == input_dim_,
                      "input dim " << x.size() << " != " << input_dim_);
  tape.input_.assign(x.begin(), x.end());
  if (tape.units_.size() != layers_.size()) {
    tape.units_.resize(layers_.size());
    tape.offset_.resize(layers_.size());
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    tape.offset_[l] = total;
    tape.units_[l] = layers_[l].units;
    total += 2 * layers_[l].units;
  }
  tape.storage_.resize(total);

  const double* current = tape.input_.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    std::span<double> pre = tape.pre_mut(l);
    const double* weights = params_.data() + weight_offset_[l];
    const double* bias = params_.data() + bias_offset_[l];
    for (std::size_t u = 0; u < units; ++u) {
      const double* w_row = weights + u * in_dim;
      double accum = bias[u];
      // fmadd pins the contraction so this loop and gemm_nt round alike.
      for (std::size_t i = 0; i < in_dim; ++i) {
        accum = fmadd(w_row[i], current[i], accum);
      }
      pre[u] = accum;
    }
    std::span<double> post = tape.post_mut(l);
    for (std::size_t u = 0; u < units; ++u) {
      post[u] = activate(layers_[l].activation, pre[u]);
    }
    current = post.data();
  }
  return std::vector<double>(current, current + output_dim());
}

Matrix Mlp::forward_batch(const Matrix& x) const {
  Matrix out;
  forward_batch_into(x, out);
  return out;
}

void Mlp::forward_batch_into(const Matrix& x, Matrix& out) const {
  out.resize(x.rows(), output_dim());
  forward_batch_into(x.view(), out.view());
}

void Mlp::forward_batch_into(Tensor<const double> x, Tensor<double> out) const {
  FORUMCAST_CHECK_MSG(x.cols() == input_dim_,
                      "input dim " << x.cols() << " != " << input_dim_);
  FORUMCAST_CHECK(out.rows() == x.rows() && out.cols() == output_dim());
  // Hidden layers ping-pong between two arena tensors. gemm_nt writes every
  // output element (seeded with the layer bias) before anything reads it, so
  // the unspecified contents of fresh arena storage are harmless.
  Workspace::Frame frame;
  const std::size_t width = max_units();
  Tensor<double> scratch[2] = {
      frame.workspace().tensor<double>(x.rows(), width),
      frame.workspace().tensor<double>(x.rows(), width)};
  Tensor<const double> source = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    Tensor<double> next =
        l + 1 == layers_.size()
            ? out
            : Tensor<double>(scratch[l % 2].data(), x.rows(), units);
    gemm_nt(source.rows(), units, in_dim, source.data(), source.stride(),
            params_.data() + weight_offset_[l], in_dim,
            params_.data() + bias_offset_[l], next.data(), next.stride());
    const Activation activation = layers_[l].activation;
    for (std::size_t r = 0; r < next.rows(); ++r) {
      double* values = next.row(r).data();
      for (std::size_t c = 0; c < units; ++c) {
        values[c] = activate(activation, values[c]);
      }
    }
    source = next;
  }
}

std::vector<double> Mlp::backward(const Tape& tape, std::span<const double> grad_output) {
  FORUMCAST_CHECK(tape.units_.size() == layers_.size());
  FORUMCAST_CHECK(grad_output.size() == output_dim());

  // Three arena buffers: dL/dpost (ping-pong A/B as it propagates down) and
  // dL/dpre for the current layer. Accumulator roots and operation order are
  // exactly those of the per-layer-vector version this replaces.
  Workspace::Frame frame;
  const std::size_t width = std::max(max_units(), input_dim_);
  double* grad_post = frame.workspace().alloc<double>(width);
  double* grad_below = frame.workspace().alloc<double>(width);
  double* grad_pre = frame.workspace().alloc<double>(max_units());
  std::copy(grad_output.begin(), grad_output.end(), grad_post);

  for (std::size_t l = layers_.size(); l-- > 0;) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    std::span<const double> pre = tape.pre(l);
    std::span<const double> below = l == 0 ? tape.input() : tape.post(l - 1);

    // dL/dpre = dL/dpost ⊙ σ'(pre)
    for (std::size_t u = 0; u < units; ++u) {
      grad_pre[u] = grad_post[u] * activate_derivative(layers_[l].activation, pre[u]);
    }

    double* weight_grad = grads_.data() + weight_offset_[l];
    double* bias_grad = grads_.data() + bias_offset_[l];
    const double* weights = params_.data() + weight_offset_[l];

    std::fill(grad_below, grad_below + in_dim, 0.0);
    for (std::size_t u = 0; u < units; ++u) {
      const double g = grad_pre[u];
      if (g == 0.0) continue;
      double* wg_row = weight_grad + u * in_dim;
      const double* w_row = weights + u * in_dim;
      // fmadd pins the contraction so these chains and the gemm-backed
      // backward_batch round alike.
      for (std::size_t i = 0; i < in_dim; ++i) {
        wg_row[i] = fmadd(g, below[i], wg_row[i]);
        grad_below[i] = fmadd(g, w_row[i], grad_below[i]);
      }
      bias_grad[u] += g;
    }
    std::swap(grad_post, grad_below);
  }
  return std::vector<double>(grad_post, grad_post + input_dim_);  // = dL/dinput
}

// ---------------------------------------------------------------------------
// BatchTape: flat per-layer activation tensors.

Tensor<const double> Mlp::BatchTape::input() const {
  return Tensor<const double>(input_.data(), rows_, input_dim_);
}

Tensor<const double> Mlp::BatchTape::pre(std::size_t layer) const {
  FORUMCAST_CHECK(layer < units_.size());
  return Tensor<const double>(storage_.data() + offset_[layer], rows_,
                              units_[layer]);
}

Tensor<const double> Mlp::BatchTape::post(std::size_t layer) const {
  FORUMCAST_CHECK(layer < units_.size());
  return Tensor<const double>(
      storage_.data() + offset_[layer] + rows_ * units_[layer], rows_,
      units_[layer]);
}

Tensor<double> Mlp::BatchTape::pre_mut(std::size_t layer) {
  return Tensor<double>(storage_.data() + offset_[layer], rows_, units_[layer]);
}

Tensor<double> Mlp::BatchTape::post_mut(std::size_t layer) {
  return Tensor<double>(storage_.data() + offset_[layer] + rows_ * units_[layer],
                        rows_, units_[layer]);
}

Tensor<const double> Mlp::forward_batch(const Matrix& x, BatchTape& tape) const {
  FORUMCAST_CHECK_MSG(x.cols() == input_dim_,
                      "input dim " << x.cols() << " != " << input_dim_);
  tape.rows_ = x.rows();
  tape.input_dim_ = input_dim_;
  tape.input_.assign(x.data().begin(), x.data().end());
  if (tape.units_.size() != layers_.size()) {
    tape.units_.resize(layers_.size());
    tape.offset_.resize(layers_.size());
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    tape.offset_[l] = total;
    tape.units_[l] = layers_[l].units;
    total += 2 * x.rows() * layers_[l].units;
  }
  tape.storage_.resize(total);

  Tensor<const double> source = tape.input();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    Tensor<double> pre = tape.pre_mut(l);
    gemm_nt(source.rows(), units, in_dim, source.data(), source.stride(),
            params_.data() + weight_offset_[l], in_dim,
            params_.data() + bias_offset_[l], pre.data(), pre.stride());
    Tensor<double> post = tape.post_mut(l);
    const Activation activation = layers_[l].activation;
    const double* src = pre.data();
    double* dst = post.data();
    const std::size_t count = pre.rows() * pre.cols();
    for (std::size_t i = 0; i < count; ++i) dst[i] = activate(activation, src[i]);
    source = post;
  }
  return tape.post(layers_.size() - 1);
}

void Mlp::backward_batch(const BatchTape& tape, Tensor<const double> grad_output) {
  FORUMCAST_CHECK(tape.units_.size() == layers_.size());
  FORUMCAST_CHECK(grad_output.cols() == output_dim());
  const std::size_t rows = grad_output.rows();
  FORUMCAST_CHECK(tape.rows_ == rows);

  // Arena scratch; every element is written before being read.
  Workspace::Frame frame;
  const std::size_t width = max_units();
  double* grad_pre_buf = frame.workspace().alloc<double>(rows * width);
  double* grad_below_buf[2] = {frame.workspace().alloc<double>(rows * width),
                               frame.workspace().alloc<double>(rows * width)};
  Tensor<const double> grad_post = grad_output;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    Tensor<const double> pre = tape.pre(l);
    Tensor<const double> below = l == 0 ? tape.input() : tape.post(l - 1);

    // dL/dpre = dL/dpost ⊙ σ'(pre), elementwise per sample. The tape holds
    // the activations, so σ' comes from the cached value — bit-identical to
    // the scalar backward's recompute, without the second tanh per unit.
    Tensor<double> grad_pre(grad_pre_buf, rows, units);
    {
      const Activation activation = layers_[l].activation;
      const double* pr = pre.data();
      const double* po = tape.post(l).data();
      double* out = grad_pre.data();
      for (std::size_t r = 0; r < rows; ++r) {
        const double* gp = grad_post.row(r).data();
        double* orow = out + r * units;
        const double* prow = pr + r * units;
        const double* porow = po + r * units;
        for (std::size_t u = 0; u < units; ++u) {
          orow[u] = gp[u] * activate_derivative_cached(activation, prow[u], porow[u]);
        }
      }
    }

    // Weight gradients WG[u][i] += Σ_b grad_pre[b][u] · below[b][i], applied
    // as batch-ascending rank-1 updates directly into grads_ — the exact
    // operation sequence (fmadd chains, g == 0 skips included) of per-sample
    // accumulation, so parity holds even with gradients already accumulated.
    gemm_tn_accumulate(rows, units, in_dim, grad_pre.data(), units,
                       below.data(), below.stride(),
                       grads_.data() + weight_offset_[l], in_dim);

    // Bias gradients: per-unit column sums of grad_pre, batch order, plain
    // += to match the scalar backward chain.
    double* bias_grad = grads_.data() + bias_offset_[l];
    for (std::size_t r = 0; r < rows; ++r) {
      const double* gp = grad_pre.data() + r * units;
      for (std::size_t u = 0; u < units; ++u) bias_grad[u] += gp[u];
    }

    // dL/dbelow = grad_pre · W, ascending-unit chains via gemm_nn. The input
    // gradient is unused by every trainer, so layer 0 skips it.
    if (l > 0) {
      Tensor<double> gb(grad_below_buf[l % 2], rows, in_dim);
      gemm_nn(rows, in_dim, units, grad_pre.data(), units,
              params_.data() + weight_offset_[l], in_dim, gb.data(),
              gb.stride());
      grad_post = gb;
    }
  }
}

void Mlp::train_batch(
    const Matrix& x,
    const std::function<void(Tensor<const double> outputs,
                             Tensor<double> grad_output)>& loss_grad) {
  FORUMCAST_CHECK(loss_grad != nullptr);
  thread_local BatchTape tape;
  const Tensor<const double> outputs = forward_batch(x, tape);
  Workspace::Frame frame;
  Tensor<double> grad_output =
      frame.workspace().tensor<double>(outputs.rows(), outputs.cols());
  loss_grad(outputs, grad_output);
  backward_batch(tape, grad_output);
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

}  // namespace forumcast::ml
