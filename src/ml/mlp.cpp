#include "ml/mlp.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::ml {

Mlp::Mlp(std::size_t input_dim, std::vector<LayerSpec> layers, std::uint64_t seed)
    : input_dim_(input_dim), layers_(std::move(layers)) {
  FORUMCAST_CHECK(input_dim_ > 0);
  FORUMCAST_CHECK(!layers_.empty());
  for (const auto& layer : layers_) FORUMCAST_CHECK(layer.units > 0);

  std::size_t offset = 0;
  weight_offset_.resize(layers_.size());
  bias_offset_.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    weight_offset_[l] = offset;
    offset += layers_[l].units * fan_in(l);
    bias_offset_[l] = offset;
    offset += layers_[l].units;
  }
  params_.assign(offset, 0.0);
  grads_.assign(offset, 0.0);

  util::Rng rng(seed);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const double limit = std::sqrt(6.0 / static_cast<double>(fan_in(l) + layers_[l].units));
    for (std::size_t i = 0; i < layers_[l].units * fan_in(l); ++i) {
      params_[weight_offset_[l] + i] = rng.uniform(-limit, limit);
    }
    // Biases start at zero.
  }
}

std::size_t Mlp::fan_in(std::size_t layer) const {
  return layer == 0 ? input_dim_ : layers_[layer - 1].units;
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
  Tape tape;
  return forward(x, tape);
}

std::vector<double> Mlp::forward(std::span<const double> x, Tape& tape) const {
  FORUMCAST_CHECK_MSG(x.size() == input_dim_,
                      "input dim " << x.size() << " != " << input_dim_);
  tape.input.assign(x.begin(), x.end());
  tape.pre.assign(layers_.size(), {});
  tape.post.assign(layers_.size(), {});

  std::vector<double> current(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    std::vector<double> pre(units, 0.0);
    const double* weights = params_.data() + weight_offset_[l];
    const double* bias = params_.data() + bias_offset_[l];
    for (std::size_t u = 0; u < units; ++u) {
      const double* w_row = weights + u * in_dim;
      double accum = bias[u];
      // fmadd pins the contraction so this loop and gemm_nt round alike.
      for (std::size_t i = 0; i < in_dim; ++i) {
        accum = fmadd(w_row[i], current[i], accum);
      }
      pre[u] = accum;
    }
    std::vector<double> post(units);
    for (std::size_t u = 0; u < units; ++u) {
      post[u] = activate(layers_[l].activation, pre[u]);
    }
    tape.pre[l] = std::move(pre);
    current = post;
    tape.post[l] = current;
  }
  return current;
}

Matrix Mlp::forward_batch(const Matrix& x) const {
  Matrix out;
  forward_batch_into(x, out);
  return out;
}

void Mlp::forward_batch_into(const Matrix& x, Matrix& out) const {
  FORUMCAST_CHECK_MSG(x.cols() == input_dim_,
                      "input dim " << x.cols() << " != " << input_dim_);
  // Hidden layers ping-pong between two thread-local scratch matrices so a
  // steady-state serving loop allocates nothing. gemm_nt writes every output
  // element (seeded with the layer bias) before anything reads it, so the
  // unspecified contents left by resize() are harmless.
  thread_local Matrix scratch[2];
  const Matrix* source = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    Matrix& next = l + 1 == layers_.size() ? out : scratch[l % 2];
    next.resize(source->rows(), units);
    gemm_nt(source->rows(), units, in_dim, source->data().data(), in_dim,
            params_.data() + weight_offset_[l], in_dim,
            params_.data() + bias_offset_[l], next.data().data(), units);
    const Activation activation = layers_[l].activation;
    for (double& value : next.data()) value = activate(activation, value);
    source = &next;
  }
}

std::vector<double> Mlp::backward(const Tape& tape, std::span<const double> grad_output) {
  FORUMCAST_CHECK(tape.pre.size() == layers_.size());
  FORUMCAST_CHECK(grad_output.size() == output_dim());

  std::vector<double> grad_post(grad_output.begin(), grad_output.end());
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    const std::vector<double>& pre = tape.pre[l];
    const std::vector<double>& below =
        l == 0 ? tape.input : tape.post[l - 1];

    // dL/dpre = dL/dpost ⊙ σ'(pre)
    std::vector<double> grad_pre(units);
    for (std::size_t u = 0; u < units; ++u) {
      grad_pre[u] = grad_post[u] * activate_derivative(layers_[l].activation, pre[u]);
    }

    double* weight_grad = grads_.data() + weight_offset_[l];
    double* bias_grad = grads_.data() + bias_offset_[l];
    const double* weights = params_.data() + weight_offset_[l];

    std::vector<double> grad_below(in_dim, 0.0);
    for (std::size_t u = 0; u < units; ++u) {
      const double g = grad_pre[u];
      if (g == 0.0) continue;
      double* wg_row = weight_grad + u * in_dim;
      const double* w_row = weights + u * in_dim;
      // fmadd pins the contraction so these chains and the gemm-backed
      // backward_batch round alike.
      for (std::size_t i = 0; i < in_dim; ++i) {
        wg_row[i] = fmadd(g, below[i], wg_row[i]);
        grad_below[i] = fmadd(g, w_row[i], grad_below[i]);
      }
      bias_grad[u] += g;
    }
    grad_post = std::move(grad_below);
  }
  return grad_post;  // = dL/dinput
}

const Matrix& Mlp::forward_batch(const Matrix& x, BatchTape& tape) const {
  FORUMCAST_CHECK_MSG(x.cols() == input_dim_,
                      "input dim " << x.cols() << " != " << input_dim_);
  tape.input = x;
  tape.pre.resize(layers_.size());
  tape.post.resize(layers_.size());
  const Matrix* source = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    Matrix& pre = tape.pre[l];
    pre.resize(x.rows(), units);
    gemm_nt(source->rows(), units, in_dim, source->data().data(), in_dim,
            params_.data() + weight_offset_[l], in_dim,
            params_.data() + bias_offset_[l], pre.data().data(), units);
    Matrix& post = tape.post[l];
    post.resize(x.rows(), units);
    const Activation activation = layers_[l].activation;
    const double* src = pre.data().data();
    double* dst = post.data().data();
    const std::size_t count = pre.data().size();
    for (std::size_t i = 0; i < count; ++i) dst[i] = activate(activation, src[i]);
    source = &post;
  }
  return tape.post.back();
}

void Mlp::backward_batch(const BatchTape& tape, const Matrix& grad_output) {
  FORUMCAST_CHECK(tape.pre.size() == layers_.size());
  FORUMCAST_CHECK(grad_output.cols() == output_dim());
  const std::size_t rows = grad_output.rows();
  FORUMCAST_CHECK(tape.input.rows() == rows);

  // Scratch reused across calls; every element is written before being read.
  thread_local Matrix grad_pre, grad_below[2];
  const Matrix* grad_post = &grad_output;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const std::size_t units = layers_[l].units;
    const std::size_t in_dim = fan_in(l);
    const Matrix& pre = tape.pre[l];
    const Matrix& below = l == 0 ? tape.input : tape.post[l - 1];

    // dL/dpre = dL/dpost ⊙ σ'(pre), elementwise per sample. The tape holds
    // the activations, so σ' comes from the cached value — bit-identical to
    // the scalar backward's recompute, without the second tanh per unit.
    grad_pre.resize(rows, units);
    {
      const Activation activation = layers_[l].activation;
      const double* gp = grad_post->data().data();
      const double* pr = pre.data().data();
      const double* po = tape.post[l].data().data();
      double* out = grad_pre.data().data();
      const std::size_t count = rows * units;
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = gp[i] * activate_derivative_cached(activation, pr[i], po[i]);
      }
    }

    // Weight gradients WG[u][i] += Σ_b grad_pre[b][u] · below[b][i], applied
    // as batch-ascending rank-1 updates directly into grads_ — the exact
    // operation sequence (fmadd chains, g == 0 skips included) of per-sample
    // accumulation, so parity holds even with gradients already accumulated.
    gemm_tn_accumulate(rows, units, in_dim, grad_pre.data().data(), units,
                       below.data().data(), in_dim,
                       grads_.data() + weight_offset_[l], in_dim);

    // Bias gradients: per-unit column sums of grad_pre, batch order, plain
    // += to match the scalar backward chain.
    double* bias_grad = grads_.data() + bias_offset_[l];
    for (std::size_t r = 0; r < rows; ++r) {
      const double* gp = grad_pre.data().data() + r * units;
      for (std::size_t u = 0; u < units; ++u) bias_grad[u] += gp[u];
    }

    // dL/dbelow = grad_pre · W, ascending-unit chains via gemm_nn. The input
    // gradient is unused by every trainer, so layer 0 skips it.
    if (l > 0) {
      Matrix& gb = grad_below[l % 2];
      gb.resize(rows, in_dim);
      gemm_nn(rows, in_dim, units, grad_pre.data().data(), units,
              params_.data() + weight_offset_[l], in_dim, gb.data().data(),
              in_dim);
      grad_post = &gb;
    }
  }
}

void Mlp::train_batch(
    const Matrix& x,
    const std::function<void(const Matrix& outputs, Matrix& grad_output)>&
        loss_grad) {
  FORUMCAST_CHECK(loss_grad != nullptr);
  thread_local BatchTape tape;
  thread_local Matrix grad_output;
  const Matrix& outputs = forward_batch(x, tape);
  grad_output.resize(outputs.rows(), outputs.cols());
  loss_grad(outputs, grad_output);
  backward_batch(tape, grad_output);
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

}  // namespace forumcast::ml
