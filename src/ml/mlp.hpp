// Fully-connected feed-forward network with manual backpropagation.
//
// This implements the networks of paper eq. (1): the vote predictor
// (L=4, 20 ReLU units per hidden layer), the point-process excitation
// network f_Θ (tanh hidden layers, non-negative output), and optionally the
// decay network g_Θ. All parameters live in one contiguous buffer so a single
// Adam instance can optimize any composition of networks, and so the
// point-process likelihood (a custom loss over *two* networks) can inject
// dL/dy gradients directly via `backward`.
//
// Scratch discipline: the persistent training tapes (Tape, BatchTape) back
// their per-layer activations with ONE flat buffer each — layer views are
// spans/Tensors into it, so reuse across minibatches costs zero allocations.
// Everything ephemeral (inference hidden layers, backward gradients,
// train_batch's dL/doutput) lives in the calling thread's ml::Workspace
// arena and is released when the enclosing Frame closes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ml/activations.hpp"
#include "ml/matrix.hpp"
#include "ml/tensor.hpp"
#include "ml/workspace.hpp"

namespace forumcast::ml {

struct LayerSpec {
  std::size_t units = 0;
  Activation activation = Activation::ReLU;
};

class Mlp {
 public:
  /// Builds a network input_dim -> layers[0].units -> ... -> layers.back().units.
  /// Weights use Xavier/He-style scaled uniform init, seeded deterministically.
  Mlp(std::size_t input_dim, std::vector<LayerSpec> layers, std::uint64_t seed);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return layers_.back().units; }
  std::size_t layer_count() const { return layers_.size(); }
  const std::vector<LayerSpec>& layers() const { return layers_; }

  /// Records the intermediate values of one forward pass for backprop. All
  /// per-layer pre/post activations live in one flat buffer (layer views are
  /// spans into it), so reusing a Tape across samples allocates nothing once
  /// the buffer reaches its final size.
  struct Tape {
    std::span<const double> input() const { return input_; }
    std::span<const double> pre(std::size_t layer) const;
    std::span<const double> post(std::size_t layer) const;

   private:
    std::span<double> pre_mut(std::size_t layer);
    std::span<double> post_mut(std::size_t layer);

    std::vector<double> input_;
    std::vector<double> storage_;           ///< [pre_0|post_0|pre_1|post_1|…]
    std::vector<std::size_t> offset_;       ///< offset_[l] = start of pre_l
    std::vector<std::size_t> units_;
    friend class Mlp;
  };

  /// Inference-only forward pass (hidden activations in the thread's arena).
  std::vector<double> forward(std::span<const double> x) const;

  /// Inference-only forward pass over a batch: `x` holds one sample per row
  /// (cols == input_dim). Each layer is one blocked GEMM against the layer's
  /// weight matrix (gemm_nt seeds outputs with the bias, so per-sample sums
  /// accumulate in exactly the order of the scalar forward() — results are
  /// bit-identical). Returns rows() × output_dim().
  Matrix forward_batch(const Matrix& x) const;

  /// forward_batch writing into `out` (reshaped to rows() × output_dim()),
  /// with hidden-layer intermediates carved from the calling thread's
  /// Workspace arena — a steady-state serving loop allocates nothing, and no
  /// computed value changes (gemm_nt seeds every output with the bias, so
  /// unspecified scratch contents are never read). `out` must not alias `x`.
  void forward_batch_into(const Matrix& x, Matrix& out) const;

  /// Tensor-view core of the above: writes x.rows() × output_dim() values
  /// into `out` (which must already have that shape). Arena-friendly entry
  /// point for callers whose batch already lives in the Workspace.
  void forward_batch_into(Tensor<const double> x, Tensor<double> out) const;

  /// Forward pass that fills `tape` for a subsequent backward().
  std::vector<double> forward(std::span<const double> x, Tape& tape) const;

  /// Accumulates dL/dparams into grads() given dL/doutput for the sample
  /// recorded in `tape`. Returns dL/dinput (useful for stacked models).
  std::vector<double> backward(const Tape& tape, std::span<const double> grad_output);

  /// Records the intermediate values of one batched forward pass: one sample
  /// per row. As with Tape, every per-layer activation matrix lives in one
  /// flat buffer; pre()/post() hand out Tensor views into it.
  struct BatchTape {
    Tensor<const double> input() const;
    Tensor<const double> pre(std::size_t layer) const;
    Tensor<const double> post(std::size_t layer) const;

   private:
    Tensor<double> pre_mut(std::size_t layer);
    Tensor<double> post_mut(std::size_t layer);

    std::vector<double> input_;             ///< B × input_dim copy of the batch
    std::vector<double> storage_;           ///< [pre_0|post_0|pre_1|post_1|…]
    std::vector<std::size_t> offset_;       ///< offset_[l] = start of pre_l
    std::vector<std::size_t> units_;
    std::size_t rows_ = 0;
    std::size_t input_dim_ = 0;
    friend class Mlp;
  };

  /// Forward pass over a batch that fills `tape` for backward_batch(). Each
  /// layer is one blocked gemm_nt, so every value is bit-identical to the
  /// per-row scalar forward(). Returns a view of the final activations
  /// (B × output_dim), valid while `tape` is.
  Tensor<const double> forward_batch(const Matrix& x, BatchTape& tape) const;

  /// Batched backward: accumulates dL/dparams into grads() given one
  /// dL/doutput row per sample of `tape`. Weight gradients apply one
  /// gemm_tn_accumulate per layer — batch-ascending rank-1 updates directly
  /// into grads(), the exact operation sequence of per-sample accumulation —
  /// and layer-to-layer gradient propagation is one gemm_nn. The accumulated
  /// gradient is bit-equal to calling the per-sample backward() on each row
  /// in order, whatever grads() held on entry. Intermediate gradients live
  /// in the thread's Workspace arena.
  void backward_batch(const BatchTape& tape, Tensor<const double> grad_output);

  /// One gemm-backed training step over a minibatch: batched forward, then
  /// `loss_grad(outputs, grad_output)` fills dL/doutput (one row per sample;
  /// `grad_output` arrives pre-shaped B × output_dim and every element must
  /// be written), then batched backward accumulates into grads(). The caller
  /// zeroes grads and applies the optimizer step, exactly as with the
  /// per-sample forward()/backward() pair this replaces.
  void train_batch(const Matrix& x,
                   const std::function<void(Tensor<const double> outputs,
                                            Tensor<double> grad_output)>& loss_grad);

  /// Zeroes the gradient accumulator (call per minibatch).
  void zero_grad();

  std::span<double> params() { return params_; }
  std::span<const double> params() const { return params_; }
  std::span<double> grads() { return grads_; }
  std::span<const double> grads() const { return grads_; }
  std::size_t param_count() const { return params_.size(); }

  /// Weight matrix of layer l: units(l) rows × fan_in(l) cols, row-major.
  Tensor<const double> weights(std::size_t layer) const;
  /// Bias vector of layer l.
  std::span<const double> bias(std::size_t layer) const;

 private:
  // Weight matrix of layer l is rows=units(l), cols=fan_in(l), stored row-major
  // at weight_offset_[l]; bias vector follows at bias_offset_[l].
  std::size_t fan_in(std::size_t layer) const;
  std::size_t max_units() const;

  std::size_t input_dim_;
  std::vector<LayerSpec> layers_;
  std::vector<std::size_t> weight_offset_;
  std::vector<std::size_t> bias_offset_;
  std::vector<double> params_;
  std::vector<double> grads_;
};

}  // namespace forumcast::ml
