// Fully-connected feed-forward network with manual backpropagation.
//
// This implements the networks of paper eq. (1): the vote predictor
// (L=4, 20 ReLU units per hidden layer), the point-process excitation
// network f_Θ (tanh hidden layers, non-negative output), and optionally the
// decay network g_Θ. All parameters live in one contiguous buffer so a single
// Adam instance can optimize any composition of networks, and so the
// point-process likelihood (a custom loss over *two* networks) can inject
// dL/dy gradients directly via `backward`.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ml/activations.hpp"
#include "ml/matrix.hpp"

namespace forumcast::ml {

struct LayerSpec {
  std::size_t units = 0;
  Activation activation = Activation::ReLU;
};

class Mlp {
 public:
  /// Builds a network input_dim -> layers[0].units -> ... -> layers.back().units.
  /// Weights use Xavier/He-style scaled uniform init, seeded deterministically.
  Mlp(std::size_t input_dim, std::vector<LayerSpec> layers, std::uint64_t seed);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return layers_.back().units; }
  std::size_t layer_count() const { return layers_.size(); }
  const std::vector<LayerSpec>& layers() const { return layers_; }

  /// Records the intermediate values of one forward pass for backprop.
  struct Tape {
    std::vector<double> input;
    std::vector<std::vector<double>> pre;   ///< pre-activations per layer
    std::vector<std::vector<double>> post;  ///< post-activations per layer
  };

  /// Inference-only forward pass.
  std::vector<double> forward(std::span<const double> x) const;

  /// Inference-only forward pass over a batch: `x` holds one sample per row
  /// (cols == input_dim). Each layer is one blocked GEMM against the layer's
  /// weight matrix (gemm_nt seeds outputs with the bias, so per-sample sums
  /// accumulate in exactly the order of the scalar forward() — results are
  /// bit-identical). Returns rows() × output_dim().
  Matrix forward_batch(const Matrix& x) const;

  /// forward_batch writing into `out` (reshaped to rows() × output_dim()),
  /// with hidden-layer intermediates held in thread-local scratch that is
  /// reused across calls. Serving hot paths call this per block; the scratch
  /// reuse removes the per-call allocations without changing a single
  /// computed value (gemm_nt seeds every output with the bias, so stale
  /// buffer contents are never read). `out` must not alias `x`.
  void forward_batch_into(const Matrix& x, Matrix& out) const;

  /// Forward pass that fills `tape` for a subsequent backward().
  std::vector<double> forward(std::span<const double> x, Tape& tape) const;

  /// Accumulates dL/dparams into grads() given dL/doutput for the sample
  /// recorded in `tape`. Returns dL/dinput (useful for stacked models).
  std::vector<double> backward(const Tape& tape, std::span<const double> grad_output);

  /// Records the intermediate values of one batched forward pass: one sample
  /// per row, layer activations as B × units matrices.
  struct BatchTape {
    Matrix input;               ///< B × input_dim copy of the batch
    std::vector<Matrix> pre;    ///< per layer: pre-activations
    std::vector<Matrix> post;   ///< per layer: post-activations
  };

  /// Forward pass over a batch that fills `tape` for backward_batch(). Each
  /// layer is one blocked gemm_nt, so every value is bit-identical to the
  /// per-row scalar forward(). Returns tape.post.back() (B × output_dim).
  const Matrix& forward_batch(const Matrix& x, BatchTape& tape) const;

  /// Batched backward: accumulates dL/dparams into grads() given one
  /// dL/doutput row per sample of `tape`. Weight gradients apply one
  /// gemm_tn_accumulate per layer — batch-ascending rank-1 updates directly
  /// into grads(), the exact operation sequence of per-sample accumulation —
  /// and layer-to-layer gradient propagation is one gemm_nn. The accumulated
  /// gradient is bit-equal to calling the per-sample backward() on each row
  /// in order, whatever grads() held on entry.
  void backward_batch(const BatchTape& tape, const Matrix& grad_output);

  /// One gemm-backed training step over a minibatch: batched forward, then
  /// `loss_grad(outputs, grad_output)` fills dL/doutput (one row per sample;
  /// `grad_output` arrives pre-sized B × output_dim and every element must be
  /// written), then batched backward accumulates into grads(). The caller
  /// zeroes grads and applies the optimizer step, exactly as with the
  /// per-sample forward()/backward() pair this replaces.
  void train_batch(const Matrix& x,
                   const std::function<void(const Matrix& outputs,
                                            Matrix& grad_output)>& loss_grad);

  /// Zeroes the gradient accumulator (call per minibatch).
  void zero_grad();

  std::span<double> params() { return params_; }
  std::span<const double> params() const { return params_; }
  std::span<double> grads() { return grads_; }
  std::span<const double> grads() const { return grads_; }
  std::size_t param_count() const { return params_.size(); }

 private:
  // Weight matrix of layer l is rows=units(l), cols=fan_in(l), stored row-major
  // at weight_offset_[l]; bias vector follows at bias_offset_[l].
  std::size_t fan_in(std::size_t layer) const;

  std::size_t input_dim_;
  std::vector<LayerSpec> layers_;
  std::vector<std::size_t> weight_offset_;
  std::vector<std::size_t> bias_offset_;
  std::vector<double> params_;
  std::vector<double> grads_;
};

}  // namespace forumcast::ml
