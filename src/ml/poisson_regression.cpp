#include "ml/poisson_regression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/adam.hpp"
#include "ml/matrix.hpp"
#include "ml/workspace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::ml {

PoissonRegression::PoissonRegression(PoissonRegressionConfig config)
    : config_(config) {}

void PoissonRegression::fit(std::span<const std::vector<double>> rows,
                            std::span<const double> targets) {
  FORUMCAST_CHECK(!rows.empty());
  FORUMCAST_CHECK(rows.size() == targets.size());
  const std::size_t dim = rows.front().size();
  for (const auto& row : rows) FORUMCAST_CHECK(row.size() == dim);
  for (double y : targets) FORUMCAST_CHECK(y >= 0.0);

  std::vector<double> params(dim + 1, 0.0);
  // Warm-start the bias at log(mean target) so early exp() values are sane.
  const double target_mean =
      std::accumulate(targets.begin(), targets.end(), 0.0) /
      static_cast<double>(targets.size());
  params[dim] = std::log(std::max(1e-3, target_mean));
  // Predictions above twice the largest observed target are never useful for
  // this baseline and blow up the RMSE when an iterate diverges.
  const double target_max = *std::max_element(targets.begin(), targets.end());
  eta_ceiling_ = std::min(config_.max_linear_predictor,
                          std::log(std::max(2.0, 2.0 * target_max)));

  std::vector<double> grads(dim + 1, 0.0);
  Adam adam(dim + 1, {.learning_rate = config_.learning_rate});

  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Rng rng(config_.seed);

  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
  const std::size_t threads = config_.threads;
  // Per-batch residuals and row pointers live in the workspace arena for the
  // whole fit; `filled` tracks how much of the capacity a batch used.
  Workspace::Frame frame;
  double* errs = frame.workspace().alloc<double>(batch);
  const double** xrows = frame.workspace().alloc<const double*>(batch);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      std::fill(grads.begin(), grads.end(), 0.0);
      if (threads == 1) {
        for (std::size_t k = start; k < end; ++k) {
          const auto idx = order[k];
          const auto& x = rows[idx];
          double eta = dot(std::span<const double>(params).first(dim), x) + params[dim];
          eta = std::clamp(eta, -config_.max_linear_predictor, eta_ceiling_);
          const double lambda = std::exp(eta);
          // d/dη (λ − y η) = λ − y
          const double err = lambda - targets[idx];
          for (std::size_t c = 0; c < dim; ++c) grads[c] += err * x[c];
          grads[dim] += err;
        }
      } else {
        // Rates depend only on the batch-start parameters: compute residuals
        // serially in sample order, then shard the gradient columns
        // (bit-equal to the serial loop above at any thread count).
        std::size_t filled = 0;
        for (std::size_t k = start; k < end; ++k) {
          const auto idx = order[k];
          const auto& x = rows[idx];
          double eta = dot(std::span<const double>(params).first(dim), x) + params[dim];
          eta = std::clamp(eta, -config_.max_linear_predictor, eta_ceiling_);
          const double lambda = std::exp(eta);
          const double err = lambda - targets[idx];
          errs[filled] = err;
          xrows[filled] = x.data();
          ++filled;
        }
        accumulate_weighted_rows(
            std::span<const double* const>(xrows, filled),
            std::span<const double>(errs, filled),
            std::span<double>(grads).first(dim), threads);
        for (std::size_t i = 0; i < filled; ++i) grads[dim] += errs[i];
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      for (std::size_t c = 0; c < dim; ++c) {
        grads[c] = grads[c] * inv + config_.l2 * params[c];
      }
      grads[dim] *= inv;
      adam.step(params, grads);
    }
  }

  weights_.assign(params.begin(), params.begin() + static_cast<std::ptrdiff_t>(dim));
  bias_ = params[dim];
}

double PoissonRegression::predict_mean(std::span<const double> row) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(row.size() == weights_.size());
  const double eta =
      std::clamp(dot(weights_, row) + bias_, -config_.max_linear_predictor,
                 eta_ceiling_);
  return std::exp(eta);
}

PoissonRegression PoissonRegression::from_parameters(
    std::vector<double> weights, double bias, double eta_ceiling,
    PoissonRegressionConfig config) {
  FORUMCAST_CHECK_MSG(!weights.empty(),
                      "PoissonRegression::from_parameters: empty weights");
  PoissonRegression model(config);
  model.weights_ = std::move(weights);
  model.bias_ = bias;
  model.eta_ceiling_ = eta_ceiling;
  return model;
}

}  // namespace forumcast::ml
