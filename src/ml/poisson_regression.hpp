// Poisson regression (GLM with log link).
//
// The paper's baseline for response-time prediction (Sec. IV-A): regress the
// discretized delay ⌈r⌉ on x_{u,q} and predict its conditional mean.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace forumcast::ml {

struct PoissonRegressionConfig {
  double learning_rate = 0.02;
  double l2 = 1e-4;
  std::size_t epochs = 200;
  std::size_t batch_size = 64;
  std::uint64_t seed = 1;
  /// Hard ceiling on the linear predictor; the fit additionally tightens the
  /// effective ceiling to log(2·max target) so a diverging iterate cannot
  /// produce astronomically large rate predictions.
  double max_linear_predictor = 20.0;
  /// Gradient-accumulation threads; 1 = the sample-major serial loop, 0 =
  /// util::default_thread_count(). The parallel path shards columns with
  /// per-column chains in sample order (ml::accumulate_weighted_rows), so it
  /// is bit-equal to the serial loop at every thread count.
  std::size_t threads = 1;
};

class PoissonRegression {
 public:
  explicit PoissonRegression(PoissonRegressionConfig config = {});

  /// Trains on non-negative targets (counts) via minibatch Adam on the
  /// Poisson negative log-likelihood λ − y·log λ, λ = exp(wᵀx + b).
  void fit(std::span<const std::vector<double>> rows,
           std::span<const double> targets);

  /// Predicted conditional mean λ(x). Requires fit().
  double predict_mean(std::span<const double> row) const;

  bool fitted() const { return !weights_.empty(); }
  std::span<const double> weights() const { return weights_; }
  double bias() const { return bias_; }
  double eta_ceiling() const { return eta_ceiling_; }
  const PoissonRegressionConfig& config() const { return config_; }

  /// Rebuilds a fitted model from serialized state; predictions are
  /// bit-identical to the model that exported (weights, bias, eta_ceiling).
  static PoissonRegression from_parameters(std::vector<double> weights,
                                           double bias, double eta_ceiling,
                                           PoissonRegressionConfig config = {});

 private:
  PoissonRegressionConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  double eta_ceiling_ = 20.0;  ///< effective clamp learned from the targets
};

}  // namespace forumcast::ml
