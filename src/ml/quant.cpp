#include "ml/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ml/workspace.hpp"
#include "util/check.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace forumcast::ml {

namespace {

std::size_t pad_to(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

/// Symmetric scale for a row: max|v| / 127, or 1 when the row is all zero
/// (any scale reproduces an all-zero quantized row; 1 keeps dequant finite).
double symmetric_scale(const double* v, std::size_t n) {
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) max_abs = std::max(max_abs, std::fabs(v[i]));
  return max_abs > 0.0 ? max_abs / 127.0 : 1.0;
}

// Round half away from zero without std::lround: the libm call dominated
// the whole int8 forward when issued once per element (gcc cannot inline it
// because of the errno/rounding-mode contract). |v|·inv_scale ≤ 127·(1+ε)
// by construction of the scale, so the int conversion cannot overflow; the
// clamp handles the ε. The same function quantizes weights at fit time and
// activations at inference, so every path (scalar, batch, save/load) rounds
// identically — which is all bit-parity needs.
std::int8_t quantize_value(double v, double inv_scale) {
  const double scaled = v * inv_scale;
  const int q = static_cast<int>(scaled + (scaled >= 0.0 ? 0.5 : -0.5));
  return static_cast<std::int8_t>(std::clamp(q, -127, 127));
}

// Biased variants store q + 128 as the uint8 bit pattern (q ^ 0x80) so
// activation rows feed dpbusd's unsigned operand with no per-kernel fixup.
// The quantized values themselves are identical to the signed path.
template <bool Biased>
std::int8_t encode_q(std::int8_t q) {
  if constexpr (Biased) {
    return static_cast<std::int8_t>(static_cast<std::uint8_t>(q) ^ 0x80u);
  } else {
    return q;
  }
}

template <bool Biased>
void quantize_row_ref(const double* row, std::size_t n, double inv_scale,
                      std::int8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = encode_q<Biased>(quantize_value(row[i], inv_scale));
  }
}

// The AVX-512 helpers below lean on intrinsics (max_pd, cvttpd, extracts,
// reduce_*) that gcc 12 implements with an undefined pass-through operand;
// src/ml/CMakeLists.txt disables the resulting -W(maybe-)uninitialized false
// positive for this one translation unit.
#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512BW__)
#define FORUMCAST_QUANT_AVX512 1

inline double reduce_max_pd(__m512d v) { return _mm512_reduce_max_pd(v); }

// Bitwise-identical to symmetric_scale: |v| is exact and max is exact in any
// order. max_pd(abs, best) returns `best` when `abs` is NaN, matching the
// scalar std::max's ignore-NaN behaviour.
double symmetric_scale_avx512(const double* v, std::size_t n) {
  const __m512d sign = _mm512_set1_pd(-0.0);
  __m512d best = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    best = _mm512_max_pd(_mm512_andnot_pd(sign, _mm512_loadu_pd(v + i)), best);
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    best = _mm512_max_pd(
        _mm512_andnot_pd(sign, _mm512_maskz_loadu_pd(tail, v + i)), best);
  }
  const double max_abs = reduce_max_pd(best);
  return max_abs > 0.0 ? max_abs / 127.0 : 1.0;
}

// Bitwise-identical to quantize_value per element: the same IEEE multiply,
// the same ±0.5 blend (the GE comparison treats NaN exactly like the scalar
// >=), the same truncating convert, the same ±127 clamp. The scalar loop was
// the single hottest piece of the int8 forward — 8 doubles per step here.
template <bool Biased>
void quantize_row_avx512(const double* row, std::size_t n, double inv_scale,
                         std::int8_t* out) {
  const __m512d inv = _mm512_set1_pd(inv_scale);
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d neg_half = _mm512_set1_pd(-0.5);
  const __m256i hi = _mm256_set1_epi32(127);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m128i flip = _mm_set1_epi8(static_cast<char>(0x80));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d scaled = _mm512_mul_pd(_mm512_loadu_pd(row + i), inv);
    const __mmask8 nonneg =
        _mm512_cmp_pd_mask(scaled, _mm512_setzero_pd(), _CMP_GE_OQ);
    const __m512d adj = _mm512_mask_blend_pd(nonneg, neg_half, half);
    __m256i q = _mm512_cvttpd_epi32(_mm512_add_pd(scaled, adj));
    q = _mm256_max_epi32(_mm256_min_epi32(q, hi), lo);
    __m128i bytes = _mm256_cvtepi32_epi8(q);
    if constexpr (Biased) bytes = _mm_xor_si128(bytes, flip);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), bytes);
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512d scaled =
        _mm512_mul_pd(_mm512_maskz_loadu_pd(tail, row + i), inv);
    const __mmask8 nonneg =
        _mm512_cmp_pd_mask(scaled, _mm512_setzero_pd(), _CMP_GE_OQ);
    const __m512d adj = _mm512_mask_blend_pd(nonneg, neg_half, half);
    __m256i q = _mm512_cvttpd_epi32(_mm512_add_pd(scaled, adj));
    q = _mm256_max_epi32(_mm256_min_epi32(q, hi), lo);
    __m128i bytes = _mm256_cvtepi32_epi8(q);
    if constexpr (Biased) bytes = _mm_xor_si128(bytes, flip);
    _mm_mask_storeu_epi8(out + i, static_cast<__mmask16>(tail), bytes);
  }
}
#endif  // __AVX512F__ && __AVX512VL__ && __AVX512BW__

// Block quantization: per-sample symmetric scale plus int8 quantization of
// every row of a layer input. One indirect call per layer, not per row — the
// call overhead alone was measurable at serving batch sizes. Padding lanes
// are pre-zeroed by the caller. The vector variant produces the same bits as
// the scalar reference, so kernel choice never changes predictions.
using QuantizeBlockFn = void (*)(Tensor<const double> src, std::size_t fan_in,
                                 std::size_t padded_k, std::int8_t* qx,
                                 double* x_scales);

template <bool Biased>
void quantize_block_ref(Tensor<const double> src, std::size_t fan_in,
                        std::size_t padded_k, std::int8_t* qx,
                        double* x_scales) {
  for (std::size_t r = 0; r < src.rows(); ++r) {
    const double* row = src.row(r).data();
    const double scale = symmetric_scale(row, fan_in);
    x_scales[r] = scale;
    quantize_row_ref<Biased>(row, fan_in, 1.0 / scale, qx + r * padded_k);
  }
}

#if defined(FORUMCAST_QUANT_AVX512)
template <bool Biased>
void quantize_block_avx512(Tensor<const double> src, std::size_t fan_in,
                           std::size_t padded_k, std::int8_t* qx,
                           double* x_scales) {
  // Two passes: all the scale reductions first (independent rows overlap in
  // the out-of-order window far better than a scan→divide→quantize chain per
  // row), then the quantize sweeps.
  for (std::size_t r = 0; r < src.rows(); ++r) {
    x_scales[r] = symmetric_scale_avx512(src.row(r).data(), fan_in);
  }
  for (std::size_t r = 0; r < src.rows(); ++r) {
    quantize_row_avx512<Biased>(src.row(r).data(), fan_in, 1.0 / x_scales[r],
                                qx + r * padded_k);
  }
}
#endif

bool quant_avx512_supported() {
#if defined(FORUMCAST_QUANT_AVX512)
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512vl") &&
                         __builtin_cpu_supports("avx512bw");
  return ok;
#else
  return false;
#endif
}

template <bool Biased>
QuantizeBlockFn select_quantize_block() {
#if defined(FORUMCAST_QUANT_AVX512)
  if (quant_avx512_supported()) return &quantize_block_avx512<Biased>;
#endif
  return &quantize_block_ref<Biased>;
}

QuantizeBlockFn quantize_block() {
  static const QuantizeBlockFn fn = select_quantize_block<false>();
  return fn;
}

QuantizeBlockFn quantize_block_biased() {
  static const QuantizeBlockFn fn = select_quantize_block<true>();
  return fn;
}

// Dequantize + activate one layer's int32 accumulators into fp64 outputs.
using DequantBlockFn = void (*)(const std::int32_t* acc,
                                const QuantizedLayer& layer,
                                const double* x_scales, Tensor<double> out);

void dequant_block_ref(const std::int32_t* acc, const QuantizedLayer& layer,
                       const double* x_scales, Tensor<double> out) {
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const std::int32_t* arow = acc + r * layer.units;
    double* orow = out.row(r).data();
    const double sx = x_scales[r];
    for (std::size_t u = 0; u < layer.units; ++u) {
      const double pre = static_cast<double>(arow[u]) * (sx * layer.scales[u]) +
                         layer.bias[u] + layer.bias_correction[u];
      orow[u] = activate(layer.activation, pre);
    }
  }
}

#if defined(FORUMCAST_QUANT_AVX512)
// Vector dequant for the activations the vote network uses. The per-element
// operation order matches dequant_block_ref exactly; max_pd(pre, 0) returns
// +0.0 for both -0.0 and NaN inputs, same as the scalar ReLU branch. Layers
// with transcendental activations take the scalar libm path.
void dequant_block_avx512(const std::int32_t* acc, const QuantizedLayer& layer,
                          const double* x_scales, Tensor<double> out) {
  const bool relu = layer.activation == Activation::ReLU;
  if (!relu && layer.activation != Activation::Identity) {
    dequant_block_ref(acc, layer, x_scales, out);
    return;
  }
  const std::size_t units = layer.units;
  const __m512d zero = _mm512_setzero_pd();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const std::int32_t* arow = acc + r * units;
    double* orow = out.row(r).data();
    const double sx = x_scales[r];
    const __m512d sxv = _mm512_set1_pd(sx);
    std::size_t u = 0;
    for (; u + 8 <= units; u += 8) {
      const __m512d av = _mm512_cvtepi32_pd(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow + u)));
      const __m512d combined =
          _mm512_mul_pd(sxv, _mm512_loadu_pd(layer.scales.data() + u));
      __m512d pre = _mm512_mul_pd(av, combined);
      pre = _mm512_add_pd(pre, _mm512_loadu_pd(layer.bias.data() + u));
      pre = _mm512_add_pd(pre,
                          _mm512_loadu_pd(layer.bias_correction.data() + u));
      if (relu) pre = _mm512_max_pd(pre, zero);
      _mm512_storeu_pd(orow + u, pre);
    }
    if (u < units) {
      const __mmask8 tail = static_cast<__mmask8>((1u << (units - u)) - 1u);
      const __m512d av =
          _mm512_cvtepi32_pd(_mm256_maskz_loadu_epi32(tail, arow + u));
      const __m512d combined = _mm512_mul_pd(
          sxv, _mm512_maskz_loadu_pd(tail, layer.scales.data() + u));
      __m512d pre = _mm512_mul_pd(av, combined);
      pre = _mm512_add_pd(pre,
                          _mm512_maskz_loadu_pd(tail, layer.bias.data() + u));
      pre = _mm512_add_pd(pre, _mm512_maskz_loadu_pd(
                                   tail, layer.bias_correction.data() + u));
      if (relu) pre = _mm512_max_pd(pre, zero);
      _mm512_mask_storeu_pd(orow + u, tail, pre);
    }
  }
}
#endif

DequantBlockFn select_dequant_block() {
#if defined(FORUMCAST_QUANT_AVX512)
  if (quant_avx512_supported()) return &dequant_block_avx512;
#endif
  return &dequant_block_ref;
}

DequantBlockFn dequant_block() {
  static const DequantBlockFn fn = select_dequant_block();
  return fn;
}

}  // namespace

void gemm_s8_scalar(std::size_t n, std::size_t m, std::size_t k,
                    const std::int8_t* a, std::size_t lda, const std::int8_t* b,
                    std::size_t ldb, std::int32_t* c, std::size_t ldc) {
  for (std::size_t r = 0; r < n; ++r) {
    const std::int8_t* arow = a + r * lda;
    for (std::size_t u = 0; u < m; ++u) {
      const std::int8_t* brow = b + u * ldb;
      std::int32_t acc = 0;
      for (std::size_t i = 0; i < k; ++i) {
        acc += static_cast<std::int32_t>(arow[i]) * static_cast<std::int32_t>(brow[i]);
      }
      c[r * ldc + u] = acc;
    }
  }
}

#if defined(__AVX2__)
// 32 int8 lanes per step: sign-extend each 16-lane half to int16 and use
// madd_epi16 (pairwise multiply-add into int32). Products of two values in
// [-127, 127] summed in pairs stay well inside int16-free int32 range —
// unlike maddubs_epi16 there is no saturation anywhere, so the result is the
// exact integer sum in every lane.
void gemm_s8_avx2(std::size_t n, std::size_t m, std::size_t k,
                  const std::int8_t* a, std::size_t lda, const std::int8_t* b,
                  std::size_t ldb, std::int32_t* c, std::size_t ldc) {
  for (std::size_t r = 0; r < n; ++r) {
    const std::int8_t* arow = a + r * lda;
    for (std::size_t u = 0; u < m; ++u) {
      const std::int8_t* brow = b + u * ldb;
      __m256i acc = _mm256_setzero_si256();
      for (std::size_t i = 0; i < k; i += 32) {
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(arow + i));
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(brow + i));
        const __m256i alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
        const __m256i ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
        const __m256i blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
        const __m256i bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(alo, blo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(ahi, bhi));
      }
      const __m128i lo = _mm256_castsi256_si128(acc);
      const __m128i hi = _mm256_extracti128_si256(acc, 1);
      __m128i sum = _mm_add_epi32(lo, hi);
      sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
      sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
      c[r * ldc + u] = _mm_cvtsi128_si32(sum);
    }
  }
}
#endif  // __AVX2__

#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
// dpbusd multiplies UNSIGNED by signed int8. Biasing the activations by +128
// (int8 x ^ 0x80 reinterpreted as uint8 equals x + 128) makes them unsigned:
//   Σ (x+128)·w = Σ x·w + 128·Σ w
// so subtracting 128·row_sums (precomputed exactly over the padded row)
// recovers the exact signed sum. Integer arithmetic throughout — identical
// bits to the scalar kernel. Padding lanes hold w = 0 and contribute zero to
// both the dot product and the row sum.
// In-register horizontal int32 sum (integer adds in any order are exact).
inline std::int32_t hsum_epi32(__m512i v) {
  return _mm512_reduce_add_epi32(v);
}

// Fold one 512-bit int32 accumulator to 8 lanes.
inline __m256i fold_epi32(__m512i v) {
  return _mm256_add_epi32(_mm512_castsi512_si256(v),
                          _mm512_extracti64x4_epi64(v, 1));
}

void gemm_s8_vnni(std::size_t n, std::size_t m, std::size_t k,
                  const std::int8_t* a, std::size_t lda, const std::int8_t* b,
                  std::size_t ldb, std::int32_t* c, std::size_t ldc,
                  const std::int32_t* b_row_sums) {
  const __m512i bias_flip = _mm512_set1_epi8(static_cast<char>(0x80));
  const __m128i offset = _mm_set1_epi32(128);
  for (std::size_t r = 0; r < n; ++r) {
    const std::int8_t* arow = a + r * lda;
    std::size_t u = 0;
    // Four weight rows per pass: the biased activation chunk is loaded once
    // and the four accumulators reduce together through two hadd levels —
    // far cheaper than four independent 16-lane reductions. Integer adds are
    // exact in any order, so the sums match the scalar kernel bit for bit.
    for (; u + 4 <= m; u += 4) {
      const std::int8_t* b0 = b + (u + 0) * ldb;
      const std::int8_t* b1 = b + (u + 1) * ldb;
      const std::int8_t* b2 = b + (u + 2) * ldb;
      const std::int8_t* b3 = b + (u + 3) * ldb;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      for (std::size_t i = 0; i < k; i += 64) {
        const __m512i av =
            _mm512_xor_si512(_mm512_loadu_si512(arow + i), bias_flip);
        acc0 = _mm512_dpbusd_epi32(acc0, av, _mm512_loadu_si512(b0 + i));
        acc1 = _mm512_dpbusd_epi32(acc1, av, _mm512_loadu_si512(b1 + i));
        acc2 = _mm512_dpbusd_epi32(acc2, av, _mm512_loadu_si512(b2 + i));
        acc3 = _mm512_dpbusd_epi32(acc3, av, _mm512_loadu_si512(b3 + i));
      }
      // hadd works within 128-bit halves: two levels leave [S0 S1 S2 S3] in
      // each half, and the cross-half add completes the 16-lane sums.
      const __m256i h01 = _mm256_hadd_epi32(fold_epi32(acc0), fold_epi32(acc1));
      const __m256i h23 = _mm256_hadd_epi32(fold_epi32(acc2), fold_epi32(acc3));
      const __m256i h = _mm256_hadd_epi32(h01, h23);
      __m128i sums = _mm_add_epi32(_mm256_castsi256_si128(h),
                                   _mm256_extracti128_si256(h, 1));
      const __m128i row_sums = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b_row_sums + u));
      sums = _mm_sub_epi32(sums, _mm_mullo_epi32(offset, row_sums));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + r * ldc + u), sums);
    }
    for (; u < m; ++u) {
      const std::int8_t* brow = b + u * ldb;
      __m512i acc = _mm512_setzero_si512();
      for (std::size_t i = 0; i < k; i += 64) {
        const __m512i av = _mm512_loadu_si512(arow + i);
        const __m512i bv = _mm512_loadu_si512(brow + i);
        acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(av, bias_flip), bv);
      }
      c[r * ldc + u] = hsum_epi32(acc) - 128 * b_row_sums[u];
    }
  }
}

inline __m512i broadcast_u32(const std::int8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm512_set1_epi32(v);
}

// Packed-B kernel, the serving fast path: weight units live in the 16 int32
// lanes (QuantizedLayer::packed layout), activations broadcast four k-lanes
// at a time — no horizontal reduction at all. `a` holds +128-biased
// activation rows; subtracting 128·row_sums afterwards recovers the signed
// sums exactly, so results are bit-identical to every other kernel. Two
// accumulators break the dpbusd dependency chain. Only ceil(k_used/4)
// four-lane groups are touched: every group beyond holds all-zero weights
// (and the byte or three of padding inside the last group multiplies zero
// weights too), so skipping the rest of the kPad padding changes nothing —
// and on 20-unit hidden layers it is a 3× cut in dpbusd work.
void gemm_s8u_vnni_packed(std::size_t n, std::size_t m, std::size_t k_used,
                          std::size_t k, const std::int8_t* a, std::size_t lda,
                          const std::int8_t* packed, std::int32_t* c,
                          std::size_t ldc, const std::int32_t* row_sums) {
  const std::size_t blocks = (m + 15) / 16;
  const std::size_t k4_count = (k_used + 3) / 4;
  const __m512i offset = _mm512_set1_epi32(128);
  for (std::size_t r = 0; r < n; ++r) {
    const std::int8_t* arow = a + r * lda;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      const std::int8_t* bbase = packed + blk * 16 * k;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      std::size_t k4 = 0;
      for (; k4 + 2 <= k4_count; k4 += 2) {
        acc0 = _mm512_dpbusd_epi32(acc0, broadcast_u32(arow + k4 * 4),
                                   _mm512_loadu_si512(bbase + k4 * 64));
        acc1 = _mm512_dpbusd_epi32(acc1, broadcast_u32(arow + k4 * 4 + 4),
                                   _mm512_loadu_si512(bbase + (k4 + 1) * 64));
      }
      if (k4 < k4_count) {
        acc0 = _mm512_dpbusd_epi32(acc0, broadcast_u32(arow + k4 * 4),
                                   _mm512_loadu_si512(bbase + k4 * 64));
      }
      __m512i sums = _mm512_add_epi32(acc0, acc1);
      sums = _mm512_sub_epi32(
          sums, _mm512_mullo_epi32(
                    offset, _mm512_loadu_si512(row_sums + blk * 16)));
      const std::size_t u0 = blk * 16;
      if (m - u0 >= 16) {
        _mm512_storeu_si512(c + r * ldc + u0, sums);
      } else {
        _mm512_mask_storeu_epi32(c + r * ldc + u0,
                                 static_cast<__mmask16>((1u << (m - u0)) - 1u),
                                 sums);
      }
    }
  }
}
#endif  // __AVX512VNNI__

namespace {

// The VNNI kernel needs the weight row sums, which the generic GemmS8Fn
// signature doesn't carry; QuantizedMlp calls through dispatch() below
// instead, and gemm_s8()/gemm_s8_variant() expose the choice for tests and
// benches.
enum class Kernel { kScalar, kAvx2, kVnni };

Kernel select_kernel() {
#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512bw")) {
    return Kernel::kVnni;
  }
#endif
#if defined(__AVX2__)
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
#endif
  return Kernel::kScalar;
}

Kernel active_kernel() {
  static const Kernel kernel = select_kernel();
  return kernel;
}

void dispatch_gemm_s8(std::size_t n, std::size_t m, std::size_t k,
                      const std::int8_t* a, std::size_t lda,
                      const std::int8_t* b, std::size_t ldb, std::int32_t* c,
                      std::size_t ldc, const std::int32_t* b_row_sums) {
  switch (active_kernel()) {
#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
    case Kernel::kVnni:
      gemm_s8_vnni(n, m, k, a, lda, b, ldb, c, ldc, b_row_sums);
      return;
#endif
#if defined(__AVX2__)
    case Kernel::kAvx2:
      gemm_s8_avx2(n, m, k, a, lda, b, ldb, c, ldc);
      return;
#endif
    default:
      gemm_s8_scalar(n, m, k, a, lda, b, ldb, c, ldc);
      return;
  }
  (void)b_row_sums;
}

void gemm_s8_auto(std::size_t n, std::size_t m, std::size_t k,
                  const std::int8_t* a, std::size_t lda, const std::int8_t* b,
                  std::size_t ldb, std::int32_t* c, std::size_t ldc) {
  // Without row sums the VNNI variant is unavailable; AVX2 is the widest
  // sum-free kernel.
  switch (active_kernel()) {
#if defined(__AVX2__)
    case Kernel::kAvx2:
    case Kernel::kVnni:
      gemm_s8_avx2(n, m, k, a, lda, b, ldb, c, ldc);
      return;
#endif
    default:
      gemm_s8_scalar(n, m, k, a, lda, b, ldb, c, ldc);
      return;
  }
}

// The packed-B serving path needs VNNI (kernel) — any CPU with VNNI also has
// the VL/BW the biased quantizer uses, but the quantizer falls back to its
// scalar biased variant independently if not.
bool use_packed_vnni() {
#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
  return active_kernel() == Kernel::kVnni;
#else
  return false;
#endif
}

}  // namespace

GemmS8Fn gemm_s8() { return &gemm_s8_auto; }

const char* gemm_s8_variant() {
  switch (active_kernel()) {
    case Kernel::kVnni:
      return "avx512vnni";
    case Kernel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

namespace {

// Build the runtime VNNI interleave from the padded row-major weights:
// units padded to blocks of 16, each block holding k/4 groups of 16 units ×
// 4 consecutive k lanes (one dpbusd operand per group). Must run after
// weights and row_sums are final.
void pack_layer(QuantizedLayer& layer) {
  const std::size_t blocks = (layer.units + 15) / 16;
  const std::size_t k4_count = layer.padded_k / 4;
  layer.packed.assign(blocks * 16 * layer.padded_k, 0);
  layer.packed_row_sums.assign(blocks * 16, 0);
  std::copy(layer.row_sums.begin(), layer.row_sums.end(),
            layer.packed_row_sums.begin());
  for (std::size_t u = 0; u < layer.units; ++u) {
    const std::int8_t* src = layer.weights.data() + u * layer.padded_k;
    std::int8_t* base = layer.packed.data() + (u / 16) * 16 * layer.padded_k;
    const std::size_t lane = u % 16;
    for (std::size_t k4 = 0; k4 < k4_count; ++k4) {
      std::memcpy(base + k4 * 64 + lane * 4, src + k4 * 4, 4);
    }
  }
}

QuantizedLayer quantize_layer(const Mlp& net, std::size_t l,
                              const double* input_mean) {
  const Tensor<const double> w = net.weights(l);
  const std::span<const double> b = net.bias(l);
  QuantizedLayer layer;
  layer.units = w.rows();
  layer.fan_in = w.cols();
  layer.padded_k = pad_to(layer.fan_in, QuantizedMlp::kPad);
  layer.activation = net.layers()[l].activation;
  layer.weights.assign(layer.units * layer.padded_k, 0);
  layer.row_sums.assign(layer.units, 0);
  layer.scales.resize(layer.units);
  layer.bias.assign(b.begin(), b.end());
  layer.bias_correction.assign(layer.units, 0.0);
  for (std::size_t u = 0; u < layer.units; ++u) {
    const double* wrow = w.row(u).data();
    const double scale = symmetric_scale(wrow, layer.fan_in);
    const double inv_scale = 1.0 / scale;
    layer.scales[u] = scale;
    std::int8_t* qrow = layer.weights.data() + u * layer.padded_k;
    std::int32_t row_sum = 0;
    double corr = 0.0;
    for (std::size_t i = 0; i < layer.fan_in; ++i) {
      const std::int8_t q = quantize_value(wrow[i], inv_scale);
      qrow[i] = q;
      row_sum += q;
      if (input_mean != nullptr) {
        corr += (wrow[i] - scale * static_cast<double>(q)) * input_mean[i];
      }
    }
    layer.row_sums[u] = row_sum;
    layer.bias_correction[u] = corr;
  }
  pack_layer(layer);
  return layer;
}

}  // namespace

QuantizedMlp QuantizedMlp::from(const Mlp& net) {
  QuantizedMlp q;
  q.input_dim_ = net.input_dim();
  q.layers_.reserve(net.layer_count());
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    q.layers_.push_back(quantize_layer(net, l, nullptr));
  }
  return q;
}

QuantizedMlp QuantizedMlp::from(const Mlp& net, const Matrix& calibration) {
  FORUMCAST_CHECK(calibration.rows() > 0);
  FORUMCAST_CHECK(calibration.cols() == net.input_dim());
  // Per-layer mean inputs: layer 0 sees the calibration rows themselves,
  // layer l > 0 the fp32 activations of layer l−1.
  Mlp::BatchTape tape;
  net.forward_batch(calibration, tape);
  const double inv_n = 1.0 / static_cast<double>(calibration.rows());

  QuantizedMlp q;
  q.input_dim_ = net.input_dim();
  q.layers_.reserve(net.layer_count());
  std::vector<double> mean;
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const Tensor<const double> input =
        l == 0 ? calibration.view() : tape.post(l - 1);
    mean.assign(input.cols(), 0.0);
    for (std::size_t r = 0; r < input.rows(); ++r) {
      const double* row = input.row(r).data();
      for (std::size_t c = 0; c < input.cols(); ++c) mean[c] += row[c];
    }
    for (double& m : mean) m *= inv_n;
    q.layers_.push_back(quantize_layer(net, l, mean.data()));
  }
  return q;
}

QuantizedMlp QuantizedMlp::from_layers(std::size_t input_dim,
                                       std::vector<QuantizedLayer> layers) {
  FORUMCAST_CHECK(input_dim > 0);
  FORUMCAST_CHECK(!layers.empty());
  std::size_t expect_in = input_dim;
  for (auto& layer : layers) {
    FORUMCAST_CHECK(layer.units > 0);
    FORUMCAST_CHECK(layer.fan_in == expect_in);
    FORUMCAST_CHECK(layer.scales.size() == layer.units);
    FORUMCAST_CHECK(layer.bias.size() == layer.units);
    FORUMCAST_CHECK(layer.bias_correction.size() == layer.units);
    const std::size_t padded = pad_to(layer.fan_in, kPad);
    if (layer.padded_k != padded ||
        layer.weights.size() != layer.units * padded) {
      // Stored unpadded (the bundle format): re-pad and rebuild row sums.
      FORUMCAST_CHECK(layer.weights.size() == layer.units * layer.fan_in);
      std::vector<std::int8_t> padded_weights(layer.units * padded, 0);
      for (std::size_t u = 0; u < layer.units; ++u) {
        std::memcpy(padded_weights.data() + u * padded,
                    layer.weights.data() + u * layer.fan_in, layer.fan_in);
      }
      layer.weights = std::move(padded_weights);
      layer.padded_k = padded;
    }
    layer.row_sums.assign(layer.units, 0);
    for (std::size_t u = 0; u < layer.units; ++u) {
      std::int32_t sum = 0;
      const std::int8_t* qrow = layer.weights.data() + u * layer.padded_k;
      for (std::size_t i = 0; i < layer.fan_in; ++i) sum += qrow[i];
      layer.row_sums[u] = sum;
    }
    pack_layer(layer);
    expect_in = layer.units;
  }
  QuantizedMlp q;
  q.input_dim_ = input_dim;
  q.layers_ = std::move(layers);
  return q;
}

void QuantizedMlp::forward_batch_into(Tensor<const double> x,
                                      Tensor<double> out) const {
  FORUMCAST_CHECK(x.cols() == input_dim_);
  FORUMCAST_CHECK(out.rows() == x.rows() && out.cols() == output_dim());
  const std::size_t n = x.rows();
  Workspace::Frame frame;
  Workspace& ws = frame.workspace();

  std::size_t max_units = 0, max_padded = 0;
  for (const QuantizedLayer& layer : layers_) {
    max_units = std::max(max_units, layer.units);
    max_padded = std::max(max_padded, layer.padded_k);
  }
  // Ping-pong fp64 activations plus per-layer int8/int32 scratch.
  double* act[2] = {ws.alloc<double>(n * max_units),
                    ws.alloc<double>(n * max_units)};
  std::int8_t* qx = ws.alloc<std::int8_t>(n * max_padded);
  double* x_scales = ws.alloc<double>(n);
  std::int32_t* acc = ws.alloc<std::int32_t>(n * max_units);

  // The packed VNNI path wants +128-biased activation bytes; padding lanes
  // multiply zero weights either way, so the shared memset stays zero.
  const bool packed = use_packed_vnni();
  const QuantizeBlockFn qblock =
      packed ? quantize_block_biased() : quantize_block();
  const DequantBlockFn dblock = dequant_block();
  // Zero the int8 block once per forward. Padding lanes only ever multiply
  // zero weights, so stale bytes from a previous layer are harmless — the
  // memset just keeps every byte the kernels read initialized.
  std::memset(qx, 0, n * max_padded);

  Tensor<const double> source = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantizedLayer& layer = layers_[l];
    // Dynamic per-sample input quantization over the whole block.
    qblock(source, layer.fan_in, layer.padded_k, qx, x_scales);

#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
    if (packed) {
      gemm_s8u_vnni_packed(n, layer.units, layer.fan_in, layer.padded_k, qx,
                           layer.padded_k, layer.packed.data(), acc,
                           layer.units, layer.packed_row_sums.data());
    } else {
      dispatch_gemm_s8(n, layer.units, layer.padded_k, qx, layer.padded_k,
                       layer.weights.data(), layer.padded_k, acc, layer.units,
                       layer.row_sums.data());
    }
#else
    dispatch_gemm_s8(n, layer.units, layer.padded_k, qx, layer.padded_k,
                     layer.weights.data(), layer.padded_k, acc, layer.units,
                     layer.row_sums.data());
#endif

    const bool last = l + 1 == layers_.size();
    Tensor<double> next = last ? out : Tensor<double>(act[l % 2], n, layer.units);
    dblock(acc, layer, x_scales, next);
    source = next;
  }
}

std::vector<double> QuantizedMlp::forward(std::span<const double> x) const {
  FORUMCAST_CHECK(x.size() == input_dim_);
  Workspace::Frame frame;
  Tensor<double> out = frame.workspace().tensor<double>(1, output_dim());
  forward_batch_into(Tensor<const double>(x.data(), 1, input_dim_), out);
  return std::vector<double>(out.data(), out.data() + output_dim());
}

}  // namespace forumcast::ml
