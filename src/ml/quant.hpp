// Int8 inference path for the vote MLP.
//
// Scheme (dynamic per-row symmetric quantization):
//   - Weights: per-output-row symmetric int8. scale_u = max|W[u]| / 127,
//     q[u][i] = round(W[u][i]/scale_u) clamped to ±127. The fp32 master
//     weights stay canonical — a QuantizedMlp is always derived, never the
//     source of truth.
//   - Inputs: per-sample per-layer dynamic symmetric int8, same rule. Layer
//     activations stay fp64 between layers; each layer re-quantizes its own
//     input row.
//   - Accumulation: int32, exact (127·127·fan_in is far below 2^31 for
//     feature-vector-scale nets). Dequantize as
//       y[r][u] = acc · (scale_x[r]·scale_w[u]) + bias[u] + bias_corr[u]
//     in fp64, then the fp64 activation.
//   - Bias correction: quantization error W − scale·q has a nonzero mean
//     effect under the training input distribution. With calibration data,
//     bias_corr[u] = Σ_i (W[u][i] − scale_u·q[u][i]) · μ_i where μ is the
//     mean input of that layer over the calibration rows. Without
//     calibration (e.g. a bundle quantized at load), the correction is zero.
//
// Batch invariance: row scales depend only on that row and integer
// accumulation is exact, so a sample scored alone is bit-identical to the
// same sample scored inside any batch — the scalar/batch digest parity the
// serving path CHECKs survives quantization. For the same reason every
// gemm_s8 variant (scalar, AVX2, AVX-512 VNNI) returns identical bits: they
// differ only in how they schedule exact integer adds.
//
// Weight rows are stored padded with zeros to a multiple of kPad so the SIMD
// kernels need no tail handling; zero products are exact no-ops.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/activations.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/tensor.hpp"

namespace forumcast::ml {

/// c(n×m) = a(n×k) · b(m×k)^T in exact int32 arithmetic. Row strides
/// lda/ldb/ldc are in elements; k must cover any zero padding shared by both
/// operands. All variants are bit-identical; gemm_s8 dispatches to the
/// widest instruction set the CPU supports.
using GemmS8Fn = void (*)(std::size_t n, std::size_t m, std::size_t k,
                          const std::int8_t* a, std::size_t lda,
                          const std::int8_t* b, std::size_t ldb,
                          std::int32_t* c, std::size_t ldc);

void gemm_s8_scalar(std::size_t n, std::size_t m, std::size_t k,
                    const std::int8_t* a, std::size_t lda, const std::int8_t* b,
                    std::size_t ldb, std::int32_t* c, std::size_t ldc);

/// The variant selected for this CPU at first use.
GemmS8Fn gemm_s8();
/// Name of the selected variant ("scalar", "avx2", "avx512vnni").
const char* gemm_s8_variant();

/// One quantized layer: padded int8 weights plus everything needed to
/// dequantize. `weights` is units × padded_k row-major; `row_sums[u]` is the
/// exact Σ_i q[u][i] (used by the VNNI unsigned-offset trick).
struct QuantizedLayer {
  std::size_t units = 0;
  std::size_t fan_in = 0;
  std::size_t padded_k = 0;
  Activation activation = Activation::Identity;
  std::vector<std::int8_t> weights;
  std::vector<std::int32_t> row_sums;
  std::vector<double> scales;
  std::vector<double> bias;
  std::vector<double> bias_correction;
  // Runtime-only VNNI layout, rebuilt whenever weights are (never
  // serialized): `packed` interleaves units in blocks of 16 so one dpbusd
  // covers 16 output units × 4 k-steps — layout [unit_block][k/4][16][4],
  // units zero-padded to a multiple of 16. `packed_row_sums` is row_sums
  // zero-padded to the same unit count.
  std::vector<std::int8_t> packed;
  std::vector<std::int32_t> packed_row_sums;
};

class QuantizedMlp {
 public:
  /// Weight-row padding granularity: 64 int8 lanes (one zmm register) also
  /// divides evenly into the AVX2 kernel's 32-lane steps.
  static constexpr std::size_t kPad = 64;

  /// Quantizes `net` with zero bias correction (no calibration data — the
  /// load-time regeneration path).
  static QuantizedMlp from(const Mlp& net);

  /// Quantizes `net` with bias correction calibrated on `calibration` (rows
  /// of fit-time network inputs, already scaled — one sample per row).
  static QuantizedMlp from(const Mlp& net, const Matrix& calibration);

  /// Rebuilds from decoded layers (bundle load); recomputes padding and
  /// row_sums if the stored layers carry unpadded weights.
  static QuantizedMlp from_layers(std::size_t input_dim,
                                  std::vector<QuantizedLayer> layers);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return layers_.back().units; }
  const std::vector<QuantizedLayer>& quantized_layers() const { return layers_; }

  /// Batched forward: x is rows × input_dim, out must be rows × output_dim.
  /// Scratch lives in the calling thread's Workspace arena.
  void forward_batch_into(Tensor<const double> x, Tensor<double> out) const;

  /// Scalar forward — a batch of one, bit-identical to the same row scored
  /// inside any forward_batch_into call.
  std::vector<double> forward(std::span<const double> x) const;

 private:
  std::size_t input_dim_ = 0;
  std::vector<QuantizedLayer> layers_;
};

}  // namespace forumcast::ml
