#include "ml/scaler.hpp"

#include <cmath>

#include "util/check.hpp"

namespace forumcast::ml {

StandardScaler StandardScaler::from_moments(std::vector<double> mean,
                                            std::vector<double> scale) {
  FORUMCAST_CHECK(!mean.empty());
  FORUMCAST_CHECK(mean.size() == scale.size());
  for (double s : scale) FORUMCAST_CHECK(s > 0.0);
  StandardScaler scaler;
  scaler.mean_ = std::move(mean);
  scaler.scale_ = std::move(scale);
  return scaler;
}

void StandardScaler::fit(std::span<const std::vector<double>> rows) {
  FORUMCAST_CHECK(!rows.empty());
  const std::size_t dim = rows.front().size();
  FORUMCAST_CHECK(dim > 0);
  mean_.assign(dim, 0.0);
  scale_.assign(dim, 0.0);
  for (const auto& row : rows) {
    FORUMCAST_CHECK(row.size() == dim);
    for (std::size_t c = 0; c < dim; ++c) mean_[c] += row[c];
  }
  const double n = static_cast<double>(rows.size());
  for (double& m : mean_) m /= n;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = row[c] - mean_[c];
      scale_[c] += d * d;
    }
  }
  for (double& s : scale_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant column: center only
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> row) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / scale_[c];
  }
  return out;
}

void StandardScaler::transform_into(std::span<const double> row,
                                    std::span<double> out) const {
  FORUMCAST_CHECK(fitted());
  FORUMCAST_CHECK(row.size() == mean_.size());
  FORUMCAST_CHECK(out.size() == mean_.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / scale_[c];
  }
}

void StandardScaler::transform_in_place(std::vector<std::vector<double>>& rows) const {
  for (auto& row : rows) row = transform(row);
}

void StandardScaler::transform_rows(Tensor<const double> in,
                                    Tensor<double> out) const {
  FORUMCAST_CHECK(in.rows() == out.rows());
  for (std::size_t r = 0; r < in.rows(); ++r) {
    transform_into(in.row(r), out.row(r));
  }
}

}  // namespace forumcast::ml
