// Feature standardization (zero mean, unit variance per column).
//
// Fit on the training fold only, then applied to both folds — leaking test
// statistics into scaling would invalidate the cross-validation of Sec. IV.
#pragma once

#include <span>
#include <vector>

#include "ml/tensor.hpp"

namespace forumcast::ml {

class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation from row-major samples.
  /// Columns with zero variance get scale 1 (they pass through centered).
  void fit(std::span<const std::vector<double>> rows);

  /// Scales one sample; requires fit() was called with matching width.
  std::vector<double> transform(std::span<const double> row) const;

  /// Scales one sample into a caller-provided buffer (no allocation).
  /// `row` and `out` may alias; both must be dimension() wide.
  void transform_into(std::span<const double> row, std::span<double> out) const;

  /// Scales rows in place.
  void transform_in_place(std::vector<std::vector<double>>& rows) const;

  /// Scales a batch row by row into `out` (same shape, dimension() wide).
  /// Views may share storage row-for-row (transform_into allows aliasing);
  /// per-element arithmetic is identical to the scalar transform.
  void transform_rows(Tensor<const double> in, Tensor<double> out) const;

  /// Reconstructs a fitted scaler from stored moments (deserialization).
  static StandardScaler from_moments(std::vector<double> mean,
                                     std::vector<double> scale);

  bool fitted() const { return !mean_.empty(); }
  std::size_t dimension() const { return mean_.size(); }
  std::span<const double> mean() const { return mean_; }
  std::span<const double> scale() const { return scale_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace forumcast::ml
