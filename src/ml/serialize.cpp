#include "ml/serialize.hpp"

#include <charconv>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <system_error>

#include "util/check.hpp"

namespace forumcast::ml {

namespace {

// Sanity cap on any serialized dimension / count. Garbage input must fail
// with a named error before it turns into a multi-gigabyte allocation.
constexpr std::size_t kMaxSerializedCount = std::size_t{1} << 28;

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  in >> token;
  FORUMCAST_CHECK_MSG(!in.fail() && token == expected,
                      "expected '" << expected << "', got '"
                                   << (in.fail() ? "<end of stream>" : token)
                                   << "'");
}

std::string next_token(std::istream& in, const char* what) {
  std::string token;
  in >> token;
  FORUMCAST_CHECK_MSG(!in.fail() && !token.empty(),
                      "truncated input: missing " << what);
  return token;
}

/// Strict full-token numeric parse via from_chars: trailing garbage,
/// overflow, and (for doubles) NaN/Inf all fail with the field named.
template <typename T>
T parse_token(const std::string& token, const char* what) {
  T value{};
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  FORUMCAST_CHECK_MSG(ec == std::errc{} && ptr == end,
                      "malformed " << what << ": '" << token << "'");
  if constexpr (std::is_floating_point_v<T>) {
    FORUMCAST_CHECK_MSG(std::isfinite(value),
                        what << " is non-finite: '" << token << "'");
  }
  return value;
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  return parse_token<T>(next_token(in, what), what);
}

std::size_t read_count(std::istream& in, const char* what) {
  const auto value = read_value<std::size_t>(in, what);
  FORUMCAST_CHECK_MSG(value <= kMaxSerializedCount,
                      what << " is implausibly large: " << value);
  return value;
}

void write_double(std::ostream& out, double value) {
  // Shortest round-trip representation: parses back to the exact same bits,
  // including -0.0, denormals, and 17-significant-digit values.
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  FORUMCAST_CHECK_MSG(ec == std::errc{}, "double format failed");
  out.write(buffer, ptr - buffer);
}

void write_doubles(std::ostream& out, std::span<const double> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    write_double(out, values[i]);
    out.put(i + 1 == values.size() ? '\n' : ' ');
  }
}

std::vector<double> read_doubles(std::istream& in, std::size_t count,
                                 const char* what) {
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string token;
    in >> token;
    FORUMCAST_CHECK_MSG(!in.fail() && !token.empty(),
                        "truncated input: missing " << what << "[" << i
                                                    << "] of " << count);
    std::string field = std::string(what) + "[" + std::to_string(i) + "]";
    values[i] = parse_token<double>(token, field.c_str());
  }
  return values;
}

}  // namespace

Activation activation_from_name(const std::string& name) {
  for (Activation act : {Activation::Identity, Activation::ReLU,
                         Activation::Tanh, Activation::Sigmoid,
                         Activation::Softplus}) {
    if (activation_name(act) == name) return act;
  }
  FORUMCAST_CHECK_MSG(false, "unknown activation '" << name << "'");
  return Activation::Identity;
}

void save_mlp(const Mlp& model, std::ostream& out) {
  out << "forumcast-mlp 1\n";
  out << "input " << model.input_dim() << "\n";
  out << "layers " << model.layer_count() << "\n";
  for (const auto& layer : model.layers()) {
    out << layer.units << ' ' << activation_name(layer.activation) << "\n";
  }
  out << "params " << model.param_count() << "\n";
  write_doubles(out, model.params());
  FORUMCAST_CHECK_MSG(out.good(), "MLP write failed");
}

Mlp load_mlp(std::istream& in) {
  expect_token(in, "forumcast-mlp");
  FORUMCAST_CHECK_MSG(read_value<int>(in, "mlp version") == 1,
                      "unsupported mlp version");
  expect_token(in, "input");
  const auto input_dim = read_count(in, "mlp input dim");
  expect_token(in, "layers");
  const auto layer_count = read_count(in, "mlp layer count");
  FORUMCAST_CHECK_MSG(layer_count >= 1, "mlp layer count must be >= 1");
  std::vector<LayerSpec> layers;
  layers.reserve(layer_count);
  for (std::size_t l = 0; l < layer_count; ++l) {
    const auto units = read_count(in, "mlp layer units");
    FORUMCAST_CHECK_MSG(units >= 1, "mlp layer units must be >= 1");
    layers.push_back(
        {units, activation_from_name(next_token(in, "mlp activation name"))});
  }
  expect_token(in, "params");
  const auto param_count = read_count(in, "mlp param count");

  Mlp model(input_dim, std::move(layers), /*seed=*/0);
  FORUMCAST_CHECK_MSG(model.param_count() == param_count,
                      "mlp param count mismatch: " << param_count << " vs "
                                                   << model.param_count());
  const auto values = read_doubles(in, param_count, "mlp param");
  std::copy(values.begin(), values.end(), model.params().begin());
  return model;
}

void save_scaler(const StandardScaler& scaler, std::ostream& out) {
  FORUMCAST_CHECK_MSG(scaler.fitted(), "cannot save an unfitted scaler");
  out << "forumcast-scaler 1\n";
  out << "dim " << scaler.dimension() << "\n";
  write_doubles(out, scaler.mean());
  write_doubles(out, scaler.scale());
  FORUMCAST_CHECK_MSG(out.good(), "scaler write failed");
}

StandardScaler load_scaler(std::istream& in) {
  expect_token(in, "forumcast-scaler");
  FORUMCAST_CHECK_MSG(read_value<int>(in, "scaler version") == 1,
                      "unsupported scaler version");
  expect_token(in, "dim");
  const auto dim = read_count(in, "scaler dimension");
  FORUMCAST_CHECK_MSG(dim >= 1, "scaler dimension must be >= 1");
  auto mean = read_doubles(in, dim, "scaler mean");
  auto scale = read_doubles(in, dim, "scaler scale");
  return StandardScaler::from_moments(std::move(mean), std::move(scale));
}

void save_logistic(const LogisticRegression& model, std::ostream& out) {
  FORUMCAST_CHECK_MSG(model.fitted(), "cannot save an unfitted model");
  out << "forumcast-logistic 1\n";
  out << "dim " << model.weights().size() << "\n";
  out << "bias ";
  write_double(out, model.bias());
  out << "\n";
  write_doubles(out, model.weights());
  FORUMCAST_CHECK_MSG(out.good(), "logistic write failed");
}

LogisticRegression load_logistic(std::istream& in) {
  expect_token(in, "forumcast-logistic");
  FORUMCAST_CHECK_MSG(read_value<int>(in, "logistic version") == 1,
                      "unsupported logistic version");
  expect_token(in, "dim");
  const auto dim = read_count(in, "logistic dimension");
  FORUMCAST_CHECK_MSG(dim >= 1, "logistic dimension must be >= 1");
  expect_token(in, "bias");
  const auto bias = read_value<double>(in, "logistic bias");
  auto weights = read_doubles(in, dim, "logistic weight");
  return LogisticRegression::from_parameters(std::move(weights), bias);
}

// ---------------------------------------------------------------------------
// Binary artifact codecs.

void encode_scaler(const StandardScaler& scaler, artifact::Encoder& enc) {
  FORUMCAST_CHECK_MSG(scaler.fitted(), "cannot encode an unfitted scaler");
  enc.f64s(scaler.mean(), "scaler mean");
  enc.f64s(scaler.scale(), "scaler scale");
}

StandardScaler decode_scaler(artifact::Decoder& dec) {
  auto mean = dec.f64s("scaler mean");
  auto scale = dec.f64s("scaler scale");
  FORUMCAST_CHECK_MSG(!mean.empty() && mean.size() == scale.size(),
                      "scaler moments dimension mismatch: " << mean.size()
                                                            << " vs "
                                                            << scale.size());
  return StandardScaler::from_moments(std::move(mean), std::move(scale));
}

void encode_logistic(const LogisticRegression& model, artifact::Encoder& enc) {
  FORUMCAST_CHECK_MSG(model.fitted(), "cannot encode an unfitted model");
  enc.f64(model.bias(), "logistic bias");
  enc.f64s(model.weights(), "logistic weights");
}

LogisticRegression decode_logistic(artifact::Decoder& dec) {
  const double bias = dec.f64("logistic bias");
  auto weights = dec.f64s("logistic weights");
  FORUMCAST_CHECK_MSG(!weights.empty(), "logistic weights are empty");
  return LogisticRegression::from_parameters(std::move(weights), bias);
}

void encode_mlp(const Mlp& model, artifact::Encoder& enc) {
  enc.u64(model.input_dim());
  enc.u64(model.layer_count());
  for (const auto& layer : model.layers()) {
    enc.u64(layer.units);
    enc.str(activation_name(layer.activation));
  }
  enc.f64s(model.params(), "mlp params");
}

Mlp decode_mlp(artifact::Decoder& dec) {
  const auto input_dim = dec.u64("mlp input dim");
  const auto layer_count = dec.u64("mlp layer count");
  FORUMCAST_CHECK_MSG(layer_count >= 1 && layer_count <= kMaxSerializedCount,
                      "mlp layer count out of range: " << layer_count);
  std::vector<LayerSpec> layers;
  layers.reserve(static_cast<std::size_t>(layer_count));
  for (std::uint64_t l = 0; l < layer_count; ++l) {
    const auto units = dec.u64("mlp layer units");
    FORUMCAST_CHECK_MSG(units >= 1 && units <= kMaxSerializedCount,
                        "mlp layer units out of range: " << units);
    layers.push_back({static_cast<std::size_t>(units),
                      activation_from_name(dec.str("mlp activation name"))});
  }
  auto params = dec.f64s("mlp params");
  Mlp model(static_cast<std::size_t>(input_dim), std::move(layers),
            /*seed=*/0);
  FORUMCAST_CHECK_MSG(model.param_count() == params.size(),
                      "mlp param count mismatch: " << params.size() << " vs "
                                                   << model.param_count());
  std::copy(params.begin(), params.end(), model.params().begin());
  return model;
}

void encode_quantized_mlp(const QuantizedMlp& model, artifact::Encoder& enc) {
  enc.u64(model.input_dim());
  enc.u64(model.quantized_layers().size());
  for (const auto& layer : model.quantized_layers()) {
    enc.u64(layer.units);
    enc.u64(layer.fan_in);
    enc.str(activation_name(layer.activation));
    // Strip the kPad zero padding: the bundle stores exactly units × fan_in.
    std::vector<std::int8_t> unpadded(layer.units * layer.fan_in);
    for (std::size_t u = 0; u < layer.units; ++u) {
      std::memcpy(unpadded.data() + u * layer.fan_in,
                  layer.weights.data() + u * layer.padded_k, layer.fan_in);
    }
    enc.i8s(unpadded);
    enc.f64s(layer.scales, "quantized mlp scales");
    enc.f64s(layer.bias, "quantized mlp bias");
    enc.f64s(layer.bias_correction, "quantized mlp bias correction");
  }
}

QuantizedMlp decode_quantized_mlp(artifact::Decoder& dec) {
  const auto input_dim = dec.u64("quantized mlp input dim");
  FORUMCAST_CHECK_MSG(input_dim >= 1 && input_dim <= kMaxSerializedCount,
                      "quantized mlp input dim out of range: " << input_dim);
  const auto layer_count = dec.u64("quantized mlp layer count");
  FORUMCAST_CHECK_MSG(layer_count >= 1 && layer_count <= kMaxSerializedCount,
                      "quantized mlp layer count out of range: " << layer_count);
  std::vector<QuantizedLayer> layers;
  layers.reserve(static_cast<std::size_t>(layer_count));
  for (std::uint64_t l = 0; l < layer_count; ++l) {
    QuantizedLayer layer;
    const auto units = dec.u64("quantized mlp layer units");
    FORUMCAST_CHECK_MSG(units >= 1 && units <= kMaxSerializedCount,
                        "quantized mlp layer units out of range: " << units);
    const auto fan_in = dec.u64("quantized mlp layer fan-in");
    FORUMCAST_CHECK_MSG(fan_in >= 1 && fan_in <= kMaxSerializedCount,
                        "quantized mlp layer fan-in out of range: " << fan_in);
    layer.units = static_cast<std::size_t>(units);
    layer.fan_in = static_cast<std::size_t>(fan_in);
    layer.activation =
        activation_from_name(dec.str("quantized mlp activation name"));
    layer.weights = dec.i8s("quantized mlp weights");
    FORUMCAST_CHECK_MSG(layer.weights.size() == layer.units * layer.fan_in,
                        "quantized mlp weight count mismatch: "
                            << layer.weights.size() << " vs "
                            << layer.units * layer.fan_in);
    layer.scales = dec.f64s("quantized mlp scales");
    layer.bias = dec.f64s("quantized mlp bias");
    layer.bias_correction = dec.f64s("quantized mlp bias correction");
    FORUMCAST_CHECK_MSG(layer.scales.size() == layer.units &&
                            layer.bias.size() == layer.units &&
                            layer.bias_correction.size() == layer.units,
                        "quantized mlp per-unit vector size mismatch for "
                            << layer.units << " units");
    for (std::size_t u = 0; u < layer.units; ++u) {
      FORUMCAST_CHECK_MSG(layer.scales[u] > 0.0,
                          "quantized mlp scale must be positive: "
                              << layer.scales[u]);
    }
    layers.push_back(std::move(layer));
  }
  return QuantizedMlp::from_layers(static_cast<std::size_t>(input_dim),
                                   std::move(layers));
}

void encode_poisson(const PoissonRegression& model, artifact::Encoder& enc) {
  FORUMCAST_CHECK_MSG(model.fitted(), "cannot encode an unfitted model");
  enc.f64(model.bias(), "poisson bias");
  enc.f64(model.eta_ceiling(), "poisson eta ceiling");
  enc.f64(model.config().max_linear_predictor, "poisson max linear predictor");
  enc.f64s(model.weights(), "poisson weights");
}

PoissonRegression decode_poisson(artifact::Decoder& dec) {
  const double bias = dec.f64("poisson bias");
  const double eta_ceiling = dec.f64("poisson eta ceiling");
  PoissonRegressionConfig config;
  config.max_linear_predictor = dec.f64("poisson max linear predictor");
  auto weights = dec.f64s("poisson weights");
  FORUMCAST_CHECK_MSG(!weights.empty(), "poisson weights are empty");
  return PoissonRegression::from_parameters(std::move(weights), bias,
                                            eta_ceiling, config);
}

void encode_matrix_factorization(const MatrixFactorization& model,
                                 artifact::Encoder& enc) {
  FORUMCAST_CHECK_MSG(model.fitted(), "cannot encode an unfitted model");
  enc.u64(model.latent_dim());
  enc.f64(model.global_mean(), "mf global mean");
  enc.f64s(model.user_bias(), "mf user bias");
  enc.f64s(model.item_bias(), "mf item bias");
  enc.f64s(model.user_factors(), "mf user factors");
  enc.f64s(model.item_factors(), "mf item factors");
}

MatrixFactorization decode_matrix_factorization(artifact::Decoder& dec) {
  MatrixFactorizationConfig config;
  const auto latent_dim = dec.u64("mf latent dim");
  FORUMCAST_CHECK_MSG(latent_dim >= 1 && latent_dim <= kMaxSerializedCount,
                      "mf latent dim out of range: " << latent_dim);
  config.latent_dim = static_cast<std::size_t>(latent_dim);
  const double global_mean = dec.f64("mf global mean");
  auto user_bias = dec.f64s("mf user bias");
  auto item_bias = dec.f64s("mf item bias");
  auto user_factors = dec.f64s("mf user factors");
  auto item_factors = dec.f64s("mf item factors");
  return MatrixFactorization::from_state(
      config, global_mean, std::move(user_bias), std::move(item_bias),
      std::move(user_factors), std::move(item_factors));
}

void encode_sparfa(const Sparfa& model, artifact::Encoder& enc) {
  FORUMCAST_CHECK_MSG(model.fitted(), "cannot encode an unfitted model");
  enc.u64(model.latent_dim());
  enc.f64(model.global_intercept(), "sparfa global intercept");
  enc.f64s(model.user_loadings(), "sparfa user loadings");
  enc.f64s(model.item_concepts(), "sparfa item concepts");
  enc.f64s(model.user_intercept(), "sparfa user intercept");
}

Sparfa decode_sparfa(artifact::Decoder& dec) {
  SparfaConfig config;
  const auto latent_dim = dec.u64("sparfa latent dim");
  FORUMCAST_CHECK_MSG(latent_dim >= 1 && latent_dim <= kMaxSerializedCount,
                      "sparfa latent dim out of range: " << latent_dim);
  config.latent_dim = static_cast<std::size_t>(latent_dim);
  const double global_intercept = dec.f64("sparfa global intercept");
  auto user_loadings = dec.f64s("sparfa user loadings");
  auto item_concepts = dec.f64s("sparfa item concepts");
  auto user_intercept = dec.f64s("sparfa user intercept");
  return Sparfa::from_state(config, global_intercept, std::move(user_loadings),
                            std::move(item_concepts),
                            std::move(user_intercept));
}

void encode_adam(const Adam& optimizer, artifact::Encoder& enc) {
  const AdamConfig& config = optimizer.config();
  enc.f64(config.learning_rate, "adam learning rate");
  enc.f64(config.beta1, "adam beta1");
  enc.f64(config.beta2, "adam beta2");
  enc.f64(config.epsilon, "adam epsilon");
  enc.f64(config.weight_decay, "adam weight decay");
  enc.u64(optimizer.steps_taken());
  enc.f64s(optimizer.first_moment(), "adam first moment");
  enc.f64s(optimizer.second_moment(), "adam second moment");
}

Adam decode_adam(artifact::Decoder& dec) {
  AdamConfig config;
  config.learning_rate = dec.f64("adam learning rate");
  config.beta1 = dec.f64("adam beta1");
  config.beta2 = dec.f64("adam beta2");
  config.epsilon = dec.f64("adam epsilon");
  config.weight_decay = dec.f64("adam weight decay");
  const auto steps = dec.u64("adam steps");
  auto first_moment = dec.f64s("adam first moment");
  auto second_moment = dec.f64s("adam second moment");
  return Adam::from_state(config, std::move(first_moment),
                          std::move(second_moment),
                          static_cast<std::size_t>(steps));
}

}  // namespace forumcast::ml
