#include "ml/serialize.hpp"

#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace forumcast::ml {

namespace {

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  in >> token;
  FORUMCAST_CHECK_MSG(in.good() && token == expected,
                      "expected '" << expected << "', got '" << token << "'");
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T value{};
  in >> value;
  FORUMCAST_CHECK_MSG(!in.fail(), "failed to read " << what);
  return value;
}

void write_doubles(std::ostream& out, std::span<const double> values) {
  out.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << values[i] << (i + 1 == values.size() ? '\n' : ' ');
  }
}

std::vector<double> read_doubles(std::istream& in, std::size_t count) {
  std::vector<double> values(count);
  for (auto& v : values) v = read_value<double>(in, "double");
  return values;
}

}  // namespace

Activation activation_from_name(const std::string& name) {
  for (Activation act : {Activation::Identity, Activation::ReLU,
                         Activation::Tanh, Activation::Sigmoid,
                         Activation::Softplus}) {
    if (activation_name(act) == name) return act;
  }
  FORUMCAST_CHECK_MSG(false, "unknown activation '" << name << "'");
  return Activation::Identity;
}

void save_mlp(const Mlp& model, std::ostream& out) {
  out << "forumcast-mlp 1\n";
  out << "input " << model.input_dim() << "\n";
  out << "layers " << model.layer_count() << "\n";
  for (const auto& layer : model.layers()) {
    out << layer.units << ' ' << activation_name(layer.activation) << "\n";
  }
  out << "params " << model.param_count() << "\n";
  write_doubles(out, model.params());
  FORUMCAST_CHECK_MSG(out.good(), "MLP write failed");
}

Mlp load_mlp(std::istream& in) {
  expect_token(in, "forumcast-mlp");
  FORUMCAST_CHECK_MSG(read_value<int>(in, "version") == 1,
                      "unsupported mlp version");
  expect_token(in, "input");
  const auto input_dim = read_value<std::size_t>(in, "input dim");
  expect_token(in, "layers");
  const auto layer_count = read_value<std::size_t>(in, "layer count");
  FORUMCAST_CHECK(layer_count >= 1);
  std::vector<LayerSpec> layers;
  layers.reserve(layer_count);
  for (std::size_t l = 0; l < layer_count; ++l) {
    const auto units = read_value<std::size_t>(in, "layer units");
    std::string act;
    in >> act;
    FORUMCAST_CHECK_MSG(!in.fail(), "missing activation name");
    layers.push_back({units, activation_from_name(act)});
  }
  expect_token(in, "params");
  const auto param_count = read_value<std::size_t>(in, "param count");

  Mlp model(input_dim, std::move(layers), /*seed=*/0);
  FORUMCAST_CHECK_MSG(model.param_count() == param_count,
                      "param count mismatch: " << param_count << " vs "
                                               << model.param_count());
  const auto values = read_doubles(in, param_count);
  std::copy(values.begin(), values.end(), model.params().begin());
  return model;
}

void save_scaler(const StandardScaler& scaler, std::ostream& out) {
  FORUMCAST_CHECK_MSG(scaler.fitted(), "cannot save an unfitted scaler");
  out << "forumcast-scaler 1\n";
  out << "dim " << scaler.dimension() << "\n";
  write_doubles(out, scaler.mean());
  write_doubles(out, scaler.scale());
  FORUMCAST_CHECK_MSG(out.good(), "scaler write failed");
}

StandardScaler load_scaler(std::istream& in) {
  expect_token(in, "forumcast-scaler");
  FORUMCAST_CHECK_MSG(read_value<int>(in, "version") == 1,
                      "unsupported scaler version");
  expect_token(in, "dim");
  const auto dim = read_value<std::size_t>(in, "dimension");
  FORUMCAST_CHECK(dim >= 1);
  auto mean = read_doubles(in, dim);
  auto scale = read_doubles(in, dim);
  return StandardScaler::from_moments(std::move(mean), std::move(scale));
}

void save_logistic(const LogisticRegression& model, std::ostream& out) {
  FORUMCAST_CHECK_MSG(model.fitted(), "cannot save an unfitted model");
  out << "forumcast-logistic 1\n";
  out << "dim " << model.weights().size() << "\n";
  out.precision(17);
  out << "bias " << model.bias() << "\n";
  write_doubles(out, model.weights());
  FORUMCAST_CHECK_MSG(out.good(), "logistic write failed");
}

LogisticRegression load_logistic(std::istream& in) {
  expect_token(in, "forumcast-logistic");
  FORUMCAST_CHECK_MSG(read_value<int>(in, "version") == 1,
                      "unsupported logistic version");
  expect_token(in, "dim");
  const auto dim = read_value<std::size_t>(in, "dimension");
  FORUMCAST_CHECK(dim >= 1);
  expect_token(in, "bias");
  const auto bias = read_value<double>(in, "bias");
  auto weights = read_doubles(in, dim);
  return LogisticRegression::from_parameters(std::move(weights), bias);
}

}  // namespace forumcast::ml
