// Model persistence: a small line-oriented text format.
//
// Each artifact starts with a magic line "forumcast-<kind> 1" followed by
// kind-specific fields; doubles are written with round-trip precision.
// Covers the trainable pieces a deployment wants to ship without retraining:
// MLPs, scalers, and logistic regressions. Loaders validate the magic and
// all dimensions and throw util::CheckError on any mismatch.
#pragma once

#include <iosfwd>
#include <string>

#include "ml/logistic_regression.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"

namespace forumcast::ml {

void save_mlp(const Mlp& model, std::ostream& out);
Mlp load_mlp(std::istream& in);

void save_scaler(const StandardScaler& scaler, std::ostream& out);
StandardScaler load_scaler(std::istream& in);

void save_logistic(const LogisticRegression& model, std::ostream& out);
LogisticRegression load_logistic(std::istream& in);

/// Parses an activation name written by activation_name(); throws on unknown.
Activation activation_from_name(const std::string& name);

}  // namespace forumcast::ml
