// Model persistence.
//
// Two formats live here:
//
//  - A small line-oriented *text* format ("forumcast-<kind> 1" magic line,
//    kind-specific fields). Human-inspectable; doubles are written via
//    std::to_chars shortest-round-trip so -0.0, denormals, and
//    max-precision values survive exactly. Loaders validate magic, every
//    dimension, and every value (NaN/Inf and malformed tokens are rejected)
//    and throw util::CheckError naming the offending field — a truncated
//    stream can never silently yield default-initialized parameters.
//
//  - Binary *artifact* codecs (encode_*/decode_*) speaking the
//    artifact::Encoder/Decoder protocol, used by the model bundle
//    (ForecastPipeline::save/load). Doubles travel as raw IEEE bits, so a
//    decoded model predicts bit-identically to the one encoded.
//
// Covers every trainable piece a deployment ships without retraining: MLPs,
// scalers, logistic/Poisson regressions, the matrix-factorization and
// SPARFA baselines, and Adam optimizer state (resumable fits).
#pragma once

#include <iosfwd>
#include <string>

#include "artifact/artifact.hpp"
#include "ml/adam.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/matrix_factorization.hpp"
#include "ml/mlp.hpp"
#include "ml/poisson_regression.hpp"
#include "ml/quant.hpp"
#include "ml/scaler.hpp"
#include "ml/sparfa.hpp"

namespace forumcast::ml {

void save_mlp(const Mlp& model, std::ostream& out);
Mlp load_mlp(std::istream& in);

void save_scaler(const StandardScaler& scaler, std::ostream& out);
StandardScaler load_scaler(std::istream& in);

void save_logistic(const LogisticRegression& model, std::ostream& out);
LogisticRegression load_logistic(std::istream& in);

/// Parses an activation name written by activation_name(); throws on unknown.
Activation activation_from_name(const std::string& name);

// Binary artifact codecs. Each decode_* reverses the matching encode_* and
// produces a model whose predictions are bit-identical to the encoded one.

void encode_scaler(const StandardScaler& scaler, artifact::Encoder& enc);
StandardScaler decode_scaler(artifact::Decoder& dec);

void encode_logistic(const LogisticRegression& model, artifact::Encoder& enc);
LogisticRegression decode_logistic(artifact::Decoder& dec);

void encode_mlp(const Mlp& model, artifact::Encoder& enc);
Mlp decode_mlp(artifact::Decoder& dec);

/// Stores layers with *unpadded* int8 weight rows (units × fan_in) so the
/// on-disk format is independent of QuantizedMlp::kPad; decode re-pads and
/// rebuilds row sums via QuantizedMlp::from_layers.
void encode_quantized_mlp(const QuantizedMlp& model, artifact::Encoder& enc);
QuantizedMlp decode_quantized_mlp(artifact::Decoder& dec);

void encode_poisson(const PoissonRegression& model, artifact::Encoder& enc);
PoissonRegression decode_poisson(artifact::Decoder& dec);

void encode_matrix_factorization(const MatrixFactorization& model,
                                 artifact::Encoder& enc);
MatrixFactorization decode_matrix_factorization(artifact::Decoder& dec);

void encode_sparfa(const Sparfa& model, artifact::Encoder& enc);
Sparfa decode_sparfa(artifact::Decoder& dec);

void encode_adam(const Adam& optimizer, artifact::Encoder& enc);
Adam decode_adam(artifact::Decoder& dec);

}  // namespace forumcast::ml
