// Tensor extents: a tiny fixed-capacity dimension list.
//
// Everything in ml/ is feature-vector scale — rank 1 (a bias or gradient
// vector) or rank 2 (a batch of rows, a weight matrix) — so Shape holds up
// to four extents inline, no heap. It exists to give ml::Tensor a typed
// notion of "rows × cols" that survives being passed through the Workspace
// arena, where the backing memory itself is shapeless bytes.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>

#include "util/check.hpp"

namespace forumcast::ml {

class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) {
    FORUMCAST_CHECK(dims.size() <= kMaxRank);
    for (std::size_t d : dims) dims_[rank_++] = d;
  }

  static Shape vector(std::size_t n) { return Shape{n}; }
  static Shape matrix(std::size_t rows, std::size_t cols) {
    return Shape{rows, cols};
  }

  std::size_t rank() const { return rank_; }

  std::size_t operator[](std::size_t axis) const {
    FORUMCAST_CHECK(axis < rank_);
    return dims_[axis];
  }

  /// Total element count (1 for the empty rank-0 shape, matching the
  /// convention that a scalar has one element).
  std::size_t elements() const {
    std::size_t total = 1;
    for (std::size_t axis = 0; axis < rank_; ++axis) total *= dims_[axis];
    return total;
  }

  /// Rows/cols accessors for the rank-2 case the hot paths live in. A rank-1
  /// shape reads as a single row.
  std::size_t rows() const { return rank_ >= 2 ? dims_[0] : 1; }
  std::size_t cols() const {
    if (rank_ == 0) return 0;
    return rank_ >= 2 ? dims_[1] : dims_[0];
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t axis = 0; axis < a.rank_; ++axis) {
      if (a.dims_[axis] != b.dims_[axis]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace forumcast::ml
