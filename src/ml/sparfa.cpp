#include "ml/sparfa.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/activations.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace forumcast::ml {

Sparfa::Sparfa(SparfaConfig config) : config_(config) {
  FORUMCAST_CHECK(config_.latent_dim > 0);
}

void Sparfa::fit(std::span<const BinaryObservation> observations,
                 std::size_t num_users, std::size_t num_items) {
  FORUMCAST_CHECK(!observations.empty());
  FORUMCAST_CHECK(num_users > 0 && num_items > 0);
  double positives = 0.0;
  for (const auto& obs : observations) {
    FORUMCAST_CHECK(obs.user < num_users);
    FORUMCAST_CHECK(obs.item < num_items);
    FORUMCAST_CHECK(obs.label == 0 || obs.label == 1);
    positives += obs.label;
  }
  const double rate = std::clamp(positives / static_cast<double>(observations.size()),
                                 1e-6, 1.0 - 1e-6);
  global_intercept_ = std::log(rate / (1.0 - rate));

  const std::size_t d = config_.latent_dim;
  util::Rng rng(config_.seed);
  user_loadings_.resize(num_users * d);
  for (double& w : user_loadings_) w = std::abs(rng.normal(0.0, 0.1));
  item_concepts_.resize(num_items * d);
  for (double& c : item_concepts_) c = rng.normal(0.0, 0.1);
  user_intercept_.assign(num_users, 0.0);

  std::vector<std::size_t> order(observations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  const double lr = config_.learning_rate;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const auto& obs = observations[idx];
      double* w = user_loadings_.data() + obs.user * d;
      double* c = item_concepts_.data() + obs.item * d;
      double margin = global_intercept_ + user_intercept_[obs.user];
      for (std::size_t k = 0; k < d; ++k) margin += w[k] * c[k];
      const double err = sigmoid(margin) - static_cast<double>(obs.label);

      user_intercept_[obs.user] -= lr * err;
      for (std::size_t k = 0; k < d; ++k) {
        const double wk = w[k];
        // W step: gradient + L1 shrinkage + non-negativity projection.
        w[k] -= lr * (err * c[k] + config_.l1_loadings * (wk > 0.0 ? 1.0 : 0.0));
        if (w[k] < 0.0) w[k] = 0.0;
        // C step: gradient + ridge.
        c[k] -= lr * (err * wk + config_.l2_concepts * c[k]);
      }
    }
  }
  fitted_ = true;
}

double Sparfa::predict_probability(std::size_t user, std::size_t item) const {
  FORUMCAST_CHECK(fitted());
  double margin = global_intercept_;
  const std::size_t d = config_.latent_dim;
  const bool known_user = user * d < user_loadings_.size();
  const bool known_item = item * d < item_concepts_.size();
  if (known_user) margin += user_intercept_[user];
  if (known_user && known_item) {
    const double* w = user_loadings_.data() + user * d;
    const double* c = item_concepts_.data() + item * d;
    for (std::size_t k = 0; k < d; ++k) margin += w[k] * c[k];
  }
  return sigmoid(margin);
}

Sparfa Sparfa::from_state(SparfaConfig config, double global_intercept,
                          std::vector<double> user_loadings,
                          std::vector<double> item_concepts,
                          std::vector<double> user_intercept) {
  const std::size_t d = config.latent_dim;
  FORUMCAST_CHECK_MSG(d >= 1, "Sparfa::from_state: latent_dim 0");
  FORUMCAST_CHECK_MSG(user_loadings.size() == user_intercept.size() * d,
                      "Sparfa::from_state: user_loadings size "
                          << user_loadings.size() << " != "
                          << user_intercept.size() << " users x " << d);
  FORUMCAST_CHECK_MSG(item_concepts.size() % d == 0,
                      "Sparfa::from_state: item_concepts size "
                          << item_concepts.size()
                          << " is not a multiple of latent_dim " << d);
  Sparfa model(config);
  model.fitted_ = true;
  model.global_intercept_ = global_intercept;
  model.user_loadings_ = std::move(user_loadings);
  model.item_concepts_ = std::move(item_concepts);
  model.user_intercept_ = std::move(user_intercept);
  return model;
}

}  // namespace forumcast::ml
