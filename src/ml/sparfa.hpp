// SPARFA-style sparse logistic factor analysis (Lan et al., JMLR 2014).
//
// The paper's baseline for the binary "will u answer q" task: a logistic
// matrix-completion model P(Y_{u,q}=1) = σ(w_uᵀ c_q + μ_u) with non-negative
// user loadings W and per-user intercepts, latent dimension 3 (Sec. IV-A).
// Trained by alternating minibatch gradient steps on observed entries with
// L2 on C and L1-ish shrinkage plus a non-negativity projection on W.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace forumcast::ml {

struct SparfaConfig {
  std::size_t latent_dim = 3;
  double learning_rate = 0.05;
  double l2_concepts = 1e-3;   ///< ridge on question concept loadings C
  double l1_loadings = 1e-4;   ///< shrinkage on user loadings W
  std::size_t epochs = 80;
  std::uint64_t seed = 13;
};

struct BinaryObservation {
  std::size_t user = 0;
  std::size_t item = 0;
  int label = 0;  ///< 0 or 1
};

class Sparfa {
 public:
  explicit Sparfa(SparfaConfig config = {});

  void fit(std::span<const BinaryObservation> observations,
           std::size_t num_users, std::size_t num_items);

  /// P(Y_{u,q} = 1); unseen ids fall back to the global intercept.
  double predict_probability(std::size_t user, std::size_t item) const;

  bool fitted() const { return fitted_; }
  std::size_t latent_dim() const { return config_.latent_dim; }
  double global_intercept() const { return global_intercept_; }
  std::span<const double> user_loadings() const { return user_loadings_; }
  std::span<const double> item_concepts() const { return item_concepts_; }
  std::span<const double> user_intercept() const { return user_intercept_; }

  /// Rebuilds a fitted model from serialized state (loading matrices
  /// row-major at `config.latent_dim` columns); bit-identical predictions.
  static Sparfa from_state(SparfaConfig config, double global_intercept,
                           std::vector<double> user_loadings,
                           std::vector<double> item_concepts,
                           std::vector<double> user_intercept);

 private:
  SparfaConfig config_;
  bool fitted_ = false;
  double global_intercept_ = 0.0;
  std::vector<double> user_loadings_;   // W: num_users x d, non-negative
  std::vector<double> item_concepts_;   // C: num_items x d
  std::vector<double> user_intercept_;  // μ_u
};

}  // namespace forumcast::ml
