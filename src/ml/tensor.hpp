// Non-owning typed view over a block of elements: pointer + Shape + row
// stride.
//
// Tensor is the currency between the Workspace arena and the ml kernels: the
// arena hands out raw aligned storage, Tensor gives it rows/cols structure
// without taking ownership or copying. It deliberately mirrors the read/write
// surface of Matrix (rows/cols/row()/operator()/data) so call sites migrate
// mechanically, but unlike Matrix it never allocates — constructing, slicing,
// or passing one by value is free.
//
// Mutability follows the element type: Tensor<double> is writable,
// Tensor<const double> is a read-only view, and the former converts
// implicitly to the latter (same rule std::span uses).
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

#include "ml/shape.hpp"
#include "util/check.hpp"

namespace forumcast::ml {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  /// Dense view: row r starts at data + r * stride. `stride >= shape.cols()`
  /// allows viewing a sub-block of a wider buffer; the default packs rows
  /// contiguously.
  Tensor(T* data, Shape shape, std::size_t stride = 0)
      : data_(data),
        shape_(shape),
        stride_(stride == 0 ? shape.cols() : stride) {
    FORUMCAST_CHECK(stride_ >= shape_.cols());
  }

  Tensor(T* data, std::size_t rows, std::size_t cols)
      : Tensor(data, Shape::matrix(rows, cols)) {}

  /// Writable → read-only conversion.
  operator Tensor<const T>() const
    requires(!std::is_const_v<T>)
  {
    return Tensor<const T>(data_, shape_, stride_);
  }

  const Shape& shape() const { return shape_; }
  std::size_t rows() const { return shape_.rows(); }
  std::size_t cols() const { return shape_.cols(); }
  std::size_t stride() const { return stride_; }

  /// Total addressable elements (rows * stride also works for dense views,
  /// but elements() reports the logical extent).
  std::size_t elements() const { return shape_.elements(); }

  T* data() const { return data_; }

  T& operator()(std::size_t r, std::size_t c) const {
    FORUMCAST_CHECK(r < rows() && c < cols());
    return data_[r * stride_ + c];
  }

  std::span<T> row(std::size_t r) const {
    FORUMCAST_CHECK(r < rows());
    return {data_ + r * stride_, cols()};
  }

  /// Flat span over the whole view. Only valid for packed views (stride ==
  /// cols), where the logical elements are contiguous.
  std::span<T> flat() const {
    FORUMCAST_CHECK(stride_ == shape_.cols());
    return {data_, elements()};
  }

  /// View of rows [begin, begin + count).
  Tensor<T> rows_slice(std::size_t begin, std::size_t count) const {
    FORUMCAST_CHECK(begin + count <= rows());
    return Tensor<T>(data_ + begin * stride_, Shape::matrix(count, cols()),
                     stride_);
  }

 private:
  T* data_ = nullptr;
  Shape shape_{};
  std::size_t stride_ = 0;
};

}  // namespace forumcast::ml
