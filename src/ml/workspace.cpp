#include "ml/workspace.hpp"

#include <algorithm>
#include <atomic>
#include <new>

#include "obs/obs.hpp"

namespace forumcast::ml {

namespace {

// Process-wide accounting for the obs gauges. Relaxed is fine: the gauges
// are monitoring signals, not synchronization.
std::atomic<std::size_t> g_total_bytes{0};
std::atomic<std::uint64_t> g_total_resets{0};

constexpr std::size_t kMinChunkBytes = 64 * 1024;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

std::byte* aligned_new(std::size_t size) {
  return static_cast<std::byte*>(
      ::operator new(size, std::align_val_t{Workspace::kAlignment}));
}

void aligned_delete(std::byte* p) {
  ::operator delete(p, std::align_val_t{Workspace::kAlignment});
}

}  // namespace

Workspace::~Workspace() {
  g_total_bytes.fetch_sub(reserved_bytes(), std::memory_order_relaxed);
  for (Chunk& chunk : chunks_) aligned_delete(chunk.data);
}

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

std::size_t Workspace::reserved_bytes() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

std::size_t Workspace::total_reserved_bytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

std::uint64_t Workspace::total_resets() {
  return g_total_resets.load(std::memory_order_relaxed);
}

void Workspace::add_chunk(std::size_t min_size) {
  // Geometric growth keeps the chunk count logarithmic on the way up to the
  // high-water mark; after the first coalesce the arena is single-chunk.
  std::size_t size = std::max(kMinChunkBytes, reserved_bytes());
  size = std::max(size, round_up(min_size, kAlignment));
  Chunk chunk;
  chunk.data = aligned_new(size);
  chunk.size = size;
  chunks_.push_back(chunk);
  g_total_bytes.fetch_add(size, std::memory_order_relaxed);
  FORUMCAST_GAUGE_SET("ml.workspace_bytes",
                      g_total_bytes.load(std::memory_order_relaxed));
}

void* Workspace::allocate(std::size_t bytes) {
  FORUMCAST_CHECK(depth_ > 0);
  const std::size_t need = round_up(std::max<std::size_t>(bytes, 1), kAlignment);
  // Advance past exhausted chunks; pop() zeroes `used` on chunks beyond the
  // restored mark, so later chunks encountered here are ready for reuse.
  while (current_ < chunks_.size() &&
         chunks_[current_].used + need > chunks_[current_].size) {
    ++current_;
  }
  if (current_ == chunks_.size()) add_chunk(need);
  Chunk& chunk = chunks_[current_];
  std::byte* p = chunk.data + chunk.used;
  chunk.used += need;
  in_use_ += need;
  if (in_use_ > high_water_) high_water_ = in_use_;
  return p;
}

void Workspace::push(Frame::Mark& mark) {
  mark.chunk = current_;
  mark.used = chunks_.empty() ? 0 : chunks_[current_].used;
  mark.in_use = in_use_;
  ++depth_;
}

void Workspace::pop(const Frame::Mark& mark) {
  current_ = mark.chunk;
  if (!chunks_.empty()) {
    chunks_[current_].used = mark.used;
    for (std::size_t i = current_ + 1; i < chunks_.size(); ++i) {
      chunks_[i].used = 0;
    }
  }
  in_use_ = mark.in_use;
  --depth_;
  if (depth_ == 0) {
    if (chunks_.size() > 1) coalesce();
    g_total_resets.fetch_add(1, std::memory_order_relaxed);
    FORUMCAST_GAUGE_SET("ml.workspace_resets",
                        g_total_resets.load(std::memory_order_relaxed));
  }
}

void Workspace::coalesce() {
  // Only reachable with depth_ == 0: no live allocations, so the old chunks
  // can be dropped wholesale and replaced with one high-water-sized chunk.
  g_total_bytes.fetch_sub(reserved_bytes(), std::memory_order_relaxed);
  for (Chunk& chunk : chunks_) aligned_delete(chunk.data);
  chunks_.clear();
  current_ = 0;
  add_chunk(high_water_);
}

}  // namespace forumcast::ml
