// Per-thread bump arena for ml scratch memory.
//
// Modeled on the expression-graph workspace in marian-dev: each thread owns
// one arena, kernels carve Tensors out of it with a pointer bump, and a RAII
// Frame returns everything carved inside a scope in O(1). Steady state a hot
// path (Mlp forward, BatchScorer block, gradient step) performs zero heap
// allocations — the arena reaches its high-water mark on the first call and
// every later frame reuses the same bytes.
//
// Growth discipline: the arena is a list of chunks. When the current chunk is
// exhausted a new one is appended — existing chunks are never moved or freed
// while any Frame is open, so live pointers are never invalidated mid-scope.
// When the outermost Frame closes and the arena went multi-chunk, the chunks
// are coalesced into a single chunk sized to the observed high-water mark, so
// the fragmented layout is a one-time transient.
//
// Every allocation is 64-byte aligned (cache line / widest SIMD vector), and
// alignment is preserved between consecutive allocations by rounding sizes
// up, so kernels may use aligned loads on any tensor row 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/shape.hpp"
#include "ml/tensor.hpp"
#include "util/check.hpp"

namespace forumcast::ml {

class Workspace {
 public:
  static constexpr std::size_t kAlignment = 64;

  Workspace() = default;
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena. Thread-local: concurrent callers never
  /// contend or share chunks, which is what makes arena-backed scratch safe
  /// under util::parallel_for.
  static Workspace& tls();

  /// Raw 64-byte-aligned storage for `bytes` bytes, valid until the
  /// enclosing Frame closes. Contents are unspecified (scratch semantics:
  /// callers overwrite before reading). Allocating outside any Frame is a
  /// contract violation — there would be no point at which the memory is
  /// reclaimed.
  void* allocate(std::size_t bytes);

  template <typename T>
  T* alloc(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Dense rows × cols tensor over freshly bumped arena storage.
  template <typename T>
  Tensor<T> tensor(std::size_t rows, std::size_t cols) {
    return Tensor<T>(alloc<T>(rows * cols), rows, cols);
  }

  template <typename T>
  Tensor<T> tensor(const Shape& shape) {
    return Tensor<T>(alloc<T>(shape.elements()), shape);
  }

  /// RAII allocation scope. Opening a Frame marks the arena position;
  /// closing it releases every allocation made since, in O(1). Frames nest
  /// (forward() inside train_batch() inside a scorer block); when the
  /// outermost frame closes the arena coalesces to its high-water chunk.
  class Frame {
   public:
    explicit Frame(Workspace& ws = Workspace::tls()) : ws_(ws) {
      ws_.push(mark_);
    }
    ~Frame() { ws_.pop(mark_); }

    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    Workspace& workspace() const { return ws_; }

   private:
    struct Mark {
      std::size_t chunk = 0;
      std::size_t used = 0;
      std::size_t in_use = 0;
    };

    Workspace& ws_;
    Mark mark_;

    friend class Workspace;
  };

  /// Bytes currently reserved by this arena's chunks.
  std::size_t reserved_bytes() const;
  /// Largest total of simultaneously live bytes this arena has seen.
  std::size_t high_water_bytes() const { return high_water_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t frame_depth() const { return depth_; }

  /// Process-wide totals behind the ml.workspace_bytes / ml.workspace_resets
  /// gauges: bytes reserved across all live thread arenas, and the number of
  /// outermost-frame closes (each one an arena reuse cycle).
  static std::size_t total_reserved_bytes();
  static std::uint64_t total_resets();

 private:
  struct Chunk {
    std::byte* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void push(Frame::Mark& mark);
  void pop(const Frame::Mark& mark);
  void add_chunk(std::size_t min_size);
  void coalesce();

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;    // index of the chunk being bumped
  std::size_t in_use_ = 0;     // live bytes across all chunks
  std::size_t high_water_ = 0;
  std::size_t depth_ = 0;      // open Frame count
};

}  // namespace forumcast::ml
