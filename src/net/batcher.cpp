#include "net/batcher.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <map>
#include <tuple>
#include <utility>

#include "core/recommender.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace forumcast::net {

namespace {

std::string encode_error(std::uint64_t request_id, ErrorCode code,
                         std::string detail) {
  Message response;
  response.kind = MessageKind::kErrorResponse;
  response.request_id = request_id;
  response.error = code;
  response.text = std::move(detail);
  std::string frame;
  append_frame(frame, response);
  return frame;
}

#if FORUMCAST_OBS_ENABLED
/// The per-request latency histogram, shared with the observe macro below
/// (same name → same registration; bounds are consulted on first use only).
obs::Histogram& request_latency_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram(
          "net.request_ms", {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                             50.0, 100.0, 250.0});
  return histogram;
}
#endif

}  // namespace

MicroBatcher::MicroBatcher(serve::BatchScorer& scorer,
                           const forum::Dataset& dataset, BatcherConfig config,
                           CompletionFn on_complete)
    : scorer_(scorer),
      dataset_(dataset),
      config_(config),
      on_complete_(std::move(on_complete)) {
  FORUMCAST_CHECK(config_.max_batch_requests >= 1);
  FORUMCAST_CHECK(config_.max_queue >= 1);
  FORUMCAST_CHECK(config_.max_delay_ms >= 0.0);
  const std::size_t threads = std::max<std::size_t>(1, config_.threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MicroBatcher::~MicroBatcher() { stop(); }

bool MicroBatcher::try_submit(Item item) {
  item.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= config_.max_queue) return false;
    queue_.push_back(std::move(item));
  }
  ready_.notify_one();
  return true;
}

std::size_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void MicroBatcher::worker_loop() {
  const auto max_delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(config_.max_delay_ms));
  for (;;) {
    std::vector<Item> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      // Micro-batching: hold the batch open until it fills or the oldest
      // request has waited max_delay. When stopping, drain immediately —
      // nothing new is coming.
      const auto deadline = queue_.front().enqueued + max_delay;
      ready_.wait_until(lock, deadline, [this] {
        return stopping_ || queue_.size() >= config_.max_batch_requests;
      });
      if (queue_.empty()) return;
      const std::size_t take =
          std::min(queue_.size(), config_.max_batch_requests);
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() +
                                           static_cast<std::ptrdiff_t>(take)));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    process(std::move(batch));
  }
}

void MicroBatcher::process(std::vector<Item> batch) {
  FORUMCAST_HISTOGRAM_OBSERVE("net.batch_fill", batch.size(), 1, 2, 4, 8, 16,
                              32, 64, 128, 256);
  // Group score requests by question — everything pending for one question
  // shares its cached question block and one BatchScorer pass. Other kinds
  // are handled per item.
  std::map<forum::QuestionId, std::vector<Item*>> score_groups;
  for (Item& item : batch) {
    if (item.request.kind == MessageKind::kScoreRequest) {
      score_groups[item.request.question].push_back(&item);
    }
  }
  for (auto& [question, group] : score_groups) {
    score_group(question, group);
  }
  for (Item& item : batch) {
    switch (item.request.kind) {
      case MessageKind::kScoreRequest:
        break;  // answered by score_group above
      case MessageKind::kRouteRequest:
        on_complete_(item.conn_id, handle_route(item));
        break;
      case MessageKind::kSwapRequest:
        on_complete_(item.conn_id, handle_swap(item));
        break;
      default:
        on_complete_(item.conn_id,
                     encode_error(item.request.request_id,
                                  ErrorCode::kUnknownKind,
                                  "kind not handled by the batcher"));
        break;
    }
    const double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - item.enqueued)
            .count();
    FORUMCAST_HISTOGRAM_OBSERVE("net.request_ms", waited_ms, 0.05, 0.1, 0.25,
                                0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                                250.0);
  }
#if FORUMCAST_OBS_ENABLED
  // SLO view: admission-to-completion latency quantiles, refreshed per
  // batch so dashboards and health probes read a current value.
  const obs::Histogram::Snapshot latency = request_latency_histogram().snapshot();
  FORUMCAST_GAUGE_SET("net.request_p50_ms", latency.quantile(0.5));
  FORUMCAST_GAUGE_SET("net.request_p99_ms", latency.quantile(0.99));
#endif
}

void MicroBatcher::score_group(forum::QuestionId question,
                               std::vector<Item*>& group) {
  // Hold the read guard (when configured) across validation and scoring so
  // a live-ingest node cannot grow the dataset mid-batch, and validate
  // against the *served* pipeline's dataset — after a rebuild-style swap it
  // is a different (larger) dataset than the one at construction.
  const std::shared_ptr<void> guard =
      config_.read_guard ? config_.read_guard() : nullptr;
  const std::shared_ptr<const core::ForecastPipeline> pipeline =
      scorer_.pipeline();
  const forum::Dataset& dataset = pipeline->dataset();
  // Validate per request; invalid ones answer kBadRequest and drop out of
  // the coalesced batch.
  std::vector<Item*> valid;
  valid.reserve(group.size());
  for (Item* item : group) {
    const Message& request = item->request;
    std::string problem;
    if (request.question >= dataset.num_questions()) {
      problem = "question out of range";
    } else if (request.users.empty()) {
      problem = "empty candidate set";
    } else {
      for (const forum::UserId u : request.users) {
        if (u >= dataset.num_users()) {
          problem = "user out of range";
          break;
        }
      }
    }
    if (!problem.empty()) {
      FORUMCAST_COUNTER_ADD("net.bad_requests", 1);
      on_complete_(item->conn_id,
                   encode_error(request.request_id, ErrorCode::kBadRequest,
                                std::move(problem)));
    } else {
      valid.push_back(item);
    }
  }
  if (valid.empty()) return;

  std::size_t total = 0;
  for (const Item* item : valid) total += item->request.users.size();
  std::vector<forum::UserId> users;
  users.reserve(total);
  for (const Item* item : valid) {
    users.insert(users.end(), item->request.users.begin(),
                 item->request.users.end());
  }

  try {
    const std::vector<core::Prediction> predictions =
        scorer_.score(question, users);
    FORUMCAST_COUNTER_ADD("net.score_batches", 1);
    FORUMCAST_COUNTER_ADD("net.requests_scored", valid.size());
    FORUMCAST_COUNTER_ADD("net.pairs_scored", predictions.size());
    std::size_t offset = 0;
    for (const Item* item : valid) {
      Message response;
      response.kind = MessageKind::kScoreResponse;
      response.request_id = item->request.request_id;
      response.predictions.assign(
          predictions.begin() + static_cast<std::ptrdiff_t>(offset),
          predictions.begin() +
              static_cast<std::ptrdiff_t>(offset + item->request.users.size()));
      offset += item->request.users.size();
      std::string frame;
      append_frame(frame, response);
      on_complete_(item->conn_id, std::move(frame));
    }
  } catch (const std::exception& error) {
    for (const Item* item : valid) {
      on_complete_(item->conn_id,
                   encode_error(item->request.request_id, ErrorCode::kInternal,
                                error.what()));
    }
  }
}

std::string MicroBatcher::handle_route(const Item& item) {
  const Message& request = item.request;
  const std::shared_ptr<void> guard =
      config_.read_guard ? config_.read_guard() : nullptr;
  // Snapshot the served model: a concurrent hot swap must not invalidate
  // the pipeline the recommender references mid-solve. Validation uses the
  // snapshot's own dataset (it tracks rebuild-style swaps).
  const std::shared_ptr<const core::ForecastPipeline> pipeline =
      scorer_.pipeline();
  const forum::Dataset& dataset = pipeline->dataset();
  if (request.question >= dataset.num_questions() || request.users.empty()) {
    FORUMCAST_COUNTER_ADD("net.bad_requests", 1);
    return encode_error(request.request_id, ErrorCode::kBadRequest,
                        "question out of range or empty candidate set");
  }
  for (const forum::UserId u : request.users) {
    if (u >= dataset.num_users()) {
      FORUMCAST_COUNTER_ADD("net.bad_requests", 1);
      return encode_error(request.request_id, ErrorCode::kBadRequest,
                          "user out of range");
    }
  }
  try {
    const core::Recommender recommender(*pipeline, scorer_.predict_fn());
    const core::RecommendationResult result =
        recommender.recommend(request.question, request.users);
    Message response;
    response.kind = MessageKind::kRouteResponse;
    response.request_id = request.request_id;
    response.feasible = result.feasible;
    const std::size_t keep =
        request.top_k == 0
            ? result.ranking.size()
            : std::min<std::size_t>(request.top_k, result.ranking.size());
    response.routes.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      const core::Recommendation& pick = result.ranking[i];
      response.routes.push_back({pick.user, pick.probability, pick.prediction});
    }
    FORUMCAST_COUNTER_ADD("net.requests_routed", 1);
    std::string frame;
    append_frame(frame, response);
    return frame;
  } catch (const std::exception& error) {
    return encode_error(request.request_id, ErrorCode::kInternal, error.what());
  }
}

std::string MicroBatcher::handle_swap(const Item& item) {
  const Message& request = item.request;
  try {
    std::uint64_t generation = 0;
    std::uint64_t swap_epoch = 0;
    if (config_.swap_fn) {
      // Live-ingest daemons swap by rebuilding serving state (base dataset
      // + bundle + event log); the hook returns the post-swap identity.
      std::tie(generation, swap_epoch) = config_.swap_fn(request.text);
    } else {
      std::ifstream in(request.text, std::ios::binary);
      FORUMCAST_CHECK_MSG(in.good(),
                          "cannot open model bundle: " << request.text);
      auto next = std::make_shared<core::ForecastPipeline>(
          core::ForecastPipeline::load(in, dataset_));
      scorer_.swap_model(std::move(next));
      generation = scorer_.pipeline()->generation();
      swap_epoch = scorer_.swap_epoch();
    }
    FORUMCAST_COUNTER_ADD("net.model_swaps", 1);
    if (config_.on_swap) config_.on_swap(request.text, generation, swap_epoch);
    Message response;
    response.kind = MessageKind::kSwapResponse;
    response.request_id = request.request_id;
    response.generation = generation;
    response.swap_epoch = swap_epoch;
    std::string frame;
    append_frame(frame, response);
    return frame;
  } catch (const std::exception& error) {
    return encode_error(request.request_id, ErrorCode::kInternal, error.what());
  }
}

}  // namespace forumcast::net
