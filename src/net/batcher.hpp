// Async micro-batcher: coalesces concurrent wire requests into
// serve::BatchScorer batches.
//
// The serving daemon's throughput story: single-pair scoring costs a full
// feature assembly + three scalar model forwards, while BatchScorer
// amortizes both across a block of rows. Wire requests arrive a few
// candidates at a time, so the batcher holds each request for at most
// `max_delay_ms`, groups everything pending for the same question into one
// score() call (the cached question block and the GEMM tiles are shared),
// and answers every request from its slice of the batch. Scores are
// bit-identical to an unbatched call — coalescing, like batching itself,
// is purely an execution-layout change.
//
// Admission control: the queue is bounded. try_submit() refuses (the
// caller answers with a typed kQueueFull error frame) instead of letting
// the queue — and every queued request's latency — grow without bound.
//
// Threading: submissions come from the server's event loop; `threads`
// workers drain the queue; completions are handed back through the
// CompletionFn (which must be thread-safe — the server's implementation
// pushes to a locked list and wakes the event loop via eventfd).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "forum/dataset.hpp"
#include "net/protocol.hpp"
#include "serve/batch_scorer.hpp"

namespace forumcast::net {

struct BatcherConfig {
  /// Most requests drained per wake. Bounds the rows one score() pass
  /// assembles and the tail latency a drain adds to its last request.
  std::size_t max_batch_requests = 256;
  /// Longest a request may wait for company before the batch is forced out.
  /// The admission-to-completion p99 stays within this bound plus one
  /// batch's scoring time whenever the queue is admitting.
  double max_delay_ms = 1.0;
  /// Admission bound on queued requests; try_submit() refuses beyond it.
  std::size_t max_queue = 4096;
  /// Scoring worker threads.
  std::size_t threads = 1;
  /// Returns an opaque RAII token holding whatever lock makes scoring safe
  /// against concurrent mutation — replication nodes (a primary ingesting
  /// while serving, a follower applying shipped batches) pass the
  /// LiveState reader lock. Unset = the dataset is static, no lock needed.
  /// Also taken around health reads on the server's event loop.
  std::function<std::shared_ptr<void>()> read_guard;
  /// Overrides the built-in kSwapRequest handling (load the bundle against
  /// the construction-time dataset). A live-ingest daemon cannot use the
  /// built-in path — its dataset has grown past the bundle's fingerprint —
  /// so it swaps by rebuilding serving state from (base + bundle + log) and
  /// returns the post-swap (generation, swap_epoch). Throws on failure.
  std::function<std::pair<std::uint64_t, std::uint64_t>(const std::string&)>
      swap_fn;
  /// Called after every successful model swap with (bundle path, generation,
  /// swap_epoch). The replicated server broadcasts kModelSwap to subscribed
  /// followers from here. Invoked on a worker thread.
  std::function<void(const std::string&, std::uint64_t, std::uint64_t)>
      on_swap;
};

class MicroBatcher {
 public:
  /// One queued request: the decoded message plus its connection identity
  /// and admission timestamp (for the net.request_ms histogram).
  struct Item {
    std::uint64_t conn_id = 0;
    Message request;
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// Called (from a worker thread) with the encoded response frame for
  /// `conn_id`. Must be thread-safe.
  using CompletionFn =
      std::function<void(std::uint64_t conn_id, std::string frame)>;

  /// The scorer and dataset must outlive the batcher. `dataset` is needed
  /// by kSwapRequest handling: a bundle can only be loaded against the
  /// dataset it was fitted on.
  MicroBatcher(serve::BatchScorer& scorer, const forum::Dataset& dataset,
               BatcherConfig config, CompletionFn on_complete);
  ~MicroBatcher();
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Admits `item` unless the queue is full (returns false — the caller
  /// owes the client a kQueueFull error) or the batcher is stopping
  /// (false as well; the caller answers kShuttingDown).
  bool try_submit(Item item);

  /// Requests admitted but not yet drained into a batch. Exported as the
  /// net.queue_depth gauge and in health responses.
  std::size_t queue_depth() const;

  /// Stops admitting, drains everything already admitted (every queued
  /// request still gets its response — this is what "hot swap and shutdown
  /// drop zero in-flight requests" rests on), then joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  void worker_loop();
  void process(std::vector<Item> batch);
  void score_group(forum::QuestionId question, std::vector<Item*>& group);
  std::string handle_route(const Item& item);
  std::string handle_swap(const Item& item);

  serve::BatchScorer& scorer_;
  const forum::Dataset& dataset_;
  BatcherConfig config_;
  CompletionFn on_complete_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<Item> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace forumcast::net
