#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace forumcast::net {

namespace {

/// Remaining milliseconds until `deadline`, clamped to >= 0 and rounded up
/// so a sub-millisecond remainder still polls once instead of spinning.
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const double ms = std::chrono::duration<double, std::milli>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::ceil(ms));
}

}  // namespace

void Client::connect_once(const sockaddr* addr, std::size_t addr_len,
                          const std::string& where) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FORUMCAST_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const bool bounded = config_.connect_timeout_ms > 0;
  if (bounded) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
  int rc;
  do {
    rc = ::connect(fd_, addr, static_cast<socklen_t>(addr_len));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && bounded && errno == EINPROGRESS) {
    // Non-blocking connect: wait for writability within the timeout, then
    // read the socket-level result.
    pollfd pfd{fd_, POLLOUT, 0};
    int polled;
    do {
      polled = ::poll(&pfd, 1,
                      static_cast<int>(std::ceil(config_.connect_timeout_ms)));
    } while (polled < 0 && errno == EINTR);
    if (polled == 0) {
      ::close(fd_);
      fd_ = -1;
      FORUMCAST_CHECK_MSG(false, "connect to " << where << ": timed out after "
                                               << config_.connect_timeout_ms
                                               << " ms");
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
    rc = soerr == 0 ? 0 : -1;
    errno = soerr;
  }
  if (rc < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    FORUMCAST_CHECK_MSG(false,
                        "connect to " << where << ": " << std::strerror(saved));
  }
  if (bounded) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
  }
}

Client::Client(std::uint16_t port, const std::string& host,
               ClientConfig config)
    : config_(config) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  FORUMCAST_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                      "bad host address: " << host);
  const std::string where = host + ":" + std::to_string(port);
  double backoff_ms = config_.retry_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      connect_once(reinterpret_cast<const sockaddr*>(&addr), sizeof addr,
                   where);
      return;
    } catch (const util::CheckError&) {
      if (attempt >= config_.connect_retries) throw;
      // Bounded retry with doubling backoff: a primary restarting mid-
      // deploy costs a few sleeps, a dead one still fails promptly.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= 2;
    }
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_raw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      FORUMCAST_CHECK_MSG(false, "send(): " << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

Client::PollResult Client::poll_frame(Message& out, double timeout_ms) {
  const bool bounded = timeout_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(bounded ? timeout_ms : 0));
  for (;;) {
    const DecodeFrameResult decoded = decode_frame(read_buffer_);
    FORUMCAST_CHECK_MSG(!decoded.corrupt, "corrupt frame from server");
    if (decoded.bytes_consumed > 0) {
      out = decoded.message;
      read_buffer_.erase(0, decoded.bytes_consumed);
      return PollResult::kFrame;
    }
    if (bounded) {
      const int wait = remaining_ms(deadline);
      if (wait == 0) return PollResult::kTimeout;
      pollfd pfd{fd_, POLLIN, 0};
      int polled;
      do {
        polled = ::poll(&pfd, 1, wait);
      } while (polled < 0 && errno == EINTR);
      if (polled == 0) return PollResult::kTimeout;
    }
    char chunk[16384];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    FORUMCAST_CHECK_MSG(n >= 0, "recv(): " << std::strerror(errno));
    if (n == 0) {
      // Clean EOF between frames is an observable close; EOF inside a
      // frame means the server died mid-response.
      FORUMCAST_CHECK_MSG(read_buffer_.empty(),
                          "connection closed mid-frame by server");
      return PollResult::kClosed;
    }
    read_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::try_read_frame(Message& out) {
  const PollResult result = poll_frame(out, config_.read_timeout_ms);
  FORUMCAST_CHECK_MSG(result != PollResult::kTimeout,
                      "read timed out after " << config_.read_timeout_ms
                                              << " ms waiting for a frame");
  return result == PollResult::kFrame;
}

Message Client::read_frame() {
  Message out;
  FORUMCAST_CHECK_MSG(try_read_frame(out), "connection closed by server");
  return out;
}

void Client::send_message(const Message& message) {
  std::string frame;
  append_frame(frame, message);
  send_raw(frame);
}

Message Client::wait_for(std::uint64_t request_id) {
  for (;;) {
    Message response = read_frame();
    // A malformed-frame error carries request_id 0 (the server could not
    // parse an id); surface it regardless of what we are waiting for.
    if (response.request_id == request_id ||
        (response.kind == MessageKind::kErrorResponse &&
         response.request_id == 0)) {
      return response;
    }
  }
}

Message Client::call(Message request) {
  if (request.request_id == 0) request.request_id = next_request_id_++;
  std::string frame;
  append_frame(frame, request);
  send_raw(frame);
  return wait_for(request.request_id);
}

std::vector<core::Prediction> Client::score(
    forum::QuestionId question, std::span<const forum::UserId> users) {
  Message request;
  request.kind = MessageKind::kScoreRequest;
  request.question = question;
  request.users.assign(users.begin(), users.end());
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kScoreResponse);
  FORUMCAST_CHECK(response.predictions.size() == users.size());
  return std::move(response.predictions);
}

Message Client::route(forum::QuestionId question, std::uint32_t top_k,
                      std::span<const forum::UserId> users) {
  Message request;
  request.kind = MessageKind::kRouteRequest;
  request.question = question;
  request.top_k = top_k;
  request.users.assign(users.begin(), users.end());
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kRouteResponse);
  return response;
}

HealthInfo Client::health() {
  Message request;
  request.kind = MessageKind::kHealthRequest;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kHealthResponse);
  return response.health;
}

ReplicaStatusInfo Client::replica_status() {
  Message request;
  request.kind = MessageKind::kReplicaStatusRequest;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kReplicaStatusResponse);
  return response.replica;
}

std::string Client::metrics_json() {
  Message request;
  request.kind = MessageKind::kMetricsRequest;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kMetricsResponse);
  return std::move(response.text);
}

Message Client::swap_model(const std::string& bundle_path) {
  Message request;
  request.kind = MessageKind::kSwapRequest;
  request.text = bundle_path;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kSwapResponse);
  return response;
}

void Client::shutdown_server() {
  Message request;
  request.kind = MessageKind::kShutdownRequest;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kShutdownResponse);
}

}  // namespace forumcast::net
