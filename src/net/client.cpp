#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace forumcast::net {

Client::Client(std::uint16_t port, const std::string& host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FORUMCAST_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  FORUMCAST_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                      "bad host address: " << host);
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    FORUMCAST_CHECK_MSG(false, "connect to " << host << ":" << port << ": "
                                             << std::strerror(saved));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_raw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      FORUMCAST_CHECK_MSG(false, "send(): " << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::try_read_frame(Message& out) {
  for (;;) {
    const DecodeFrameResult decoded = decode_frame(read_buffer_);
    FORUMCAST_CHECK_MSG(!decoded.corrupt, "corrupt frame from server");
    if (decoded.bytes_consumed > 0) {
      out = decoded.message;
      read_buffer_.erase(0, decoded.bytes_consumed);
      return true;
    }
    char chunk[16384];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    FORUMCAST_CHECK_MSG(n >= 0, "recv(): " << std::strerror(errno));
    if (n == 0) {
      // Clean EOF between frames is an observable close; EOF inside a
      // frame means the server died mid-response.
      FORUMCAST_CHECK_MSG(read_buffer_.empty(),
                          "connection closed mid-frame by server");
      return false;
    }
    read_buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Message Client::read_frame() {
  Message out;
  FORUMCAST_CHECK_MSG(try_read_frame(out), "connection closed by server");
  return out;
}

Message Client::wait_for(std::uint64_t request_id) {
  for (;;) {
    Message response = read_frame();
    // A malformed-frame error carries request_id 0 (the server could not
    // parse an id); surface it regardless of what we are waiting for.
    if (response.request_id == request_id ||
        (response.kind == MessageKind::kErrorResponse &&
         response.request_id == 0)) {
      return response;
    }
  }
}

Message Client::call(Message request) {
  if (request.request_id == 0) request.request_id = next_request_id_++;
  std::string frame;
  append_frame(frame, request);
  send_raw(frame);
  return wait_for(request.request_id);
}

std::vector<core::Prediction> Client::score(
    forum::QuestionId question, std::span<const forum::UserId> users) {
  Message request;
  request.kind = MessageKind::kScoreRequest;
  request.question = question;
  request.users.assign(users.begin(), users.end());
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kScoreResponse);
  FORUMCAST_CHECK(response.predictions.size() == users.size());
  return std::move(response.predictions);
}

Message Client::route(forum::QuestionId question, std::uint32_t top_k,
                      std::span<const forum::UserId> users) {
  Message request;
  request.kind = MessageKind::kRouteRequest;
  request.question = question;
  request.top_k = top_k;
  request.users.assign(users.begin(), users.end());
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kRouteResponse);
  return response;
}

HealthInfo Client::health() {
  Message request;
  request.kind = MessageKind::kHealthRequest;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kHealthResponse);
  return response.health;
}

std::string Client::metrics_json() {
  Message request;
  request.kind = MessageKind::kMetricsRequest;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kMetricsResponse);
  return std::move(response.text);
}

Message Client::swap_model(const std::string& bundle_path) {
  Message request;
  request.kind = MessageKind::kSwapRequest;
  request.text = bundle_path;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kSwapResponse);
  return response;
}

void Client::shutdown_server() {
  Message request;
  request.kind = MessageKind::kShutdownRequest;
  Message response = call(std::move(request));
  if (response.kind == MessageKind::kErrorResponse) {
    throw RpcError(response.error, response.text);
  }
  FORUMCAST_CHECK(response.kind == MessageKind::kShutdownResponse);
}

}  // namespace forumcast::net
