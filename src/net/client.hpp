// Blocking client for the forumcast serving daemon.
//
// One TCP connection, synchronous request/response. This is the reference
// consumer of the wire protocol: the smoke test's digest-parity check, the
// net test suites, and the bench/net load generator all speak through it
// (the load generator drives many connections from one thread via the raw
// fd + poll, but frames still encode/decode here).
//
// Error handling: a typed error frame from the server (queue full, bad
// request, …) throws RpcError carrying the code; transport failures
// (refused connection, mid-frame EOF, a corrupt frame from the server)
// throw util::CheckError.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "net/protocol.hpp"

struct sockaddr;  // <sys/socket.h>; kept out of this header

namespace forumcast::net {

/// A typed error frame, rethrown client-side.
class RpcError : public std::runtime_error {
 public:
  RpcError(ErrorCode code, const std::string& detail)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + detail),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Transport knobs. The defaults reproduce the original behavior (blocking
/// connect, reads that wait forever) — fine for tests and one-shot tools,
/// wrong for a follower tailing a primary that may be down: replication
/// callers set timeouts and bounded retry so a dead peer costs bounded
/// time instead of a hung process.
struct ClientConfig {
  /// Per-attempt connect timeout; 0 = the OS default (blocking).
  double connect_timeout_ms = 0.0;
  /// Bound on each wait for response bytes in call()/read_frame(); 0 =
  /// wait forever. Expiry throws util::CheckError ("timed out").
  double read_timeout_ms = 0.0;
  /// Extra connect attempts after the first fails (refused or timed out).
  int connect_retries = 0;
  /// Sleep before the first retry; doubles on each further attempt.
  double retry_backoff_ms = 50.0;
};

class Client {
 public:
  /// Connects to the daemon on `host`:`port`, honoring the config's
  /// connect timeout and bounded retry-with-backoff.
  explicit Client(std::uint16_t port, const std::string& host = "127.0.0.1",
                  ClientConfig config = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `request` (request_id assigned if 0) and blocks for the
  /// response with the matching id. Returns error frames as messages —
  /// the typed wrappers below throw RpcError instead.
  Message call(Message request);

  /// Scores one question × N candidates. Bit-identical to the in-process
  /// serve::BatchScorer::score on the serving side.
  std::vector<core::Prediction> score(forum::QuestionId question,
                                      std::span<const forum::UserId> users);

  /// Routes via the eq. (2) LP over `users`; top_k == 0 returns the full
  /// positive-probability ranking.
  Message route(forum::QuestionId question, std::uint32_t top_k,
                std::span<const forum::UserId> users);

  HealthInfo health();
  std::string metrics_json();

  /// Replication role + progress (answered by every daemon; standalone
  /// servers report role 0 with zeroed progress).
  ReplicaStatusInfo replica_status();

  /// Hot-swaps the served model from a bundle file readable by the server
  /// process. Returns the post-swap (generation, swap_epoch).
  Message swap_model(const std::string& bundle_path);

  /// Graceful drain: the server answers, finishes in-flight work, and
  /// exits its run() loop.
  void shutdown_server();

  /// Raw transport access for protocol-abuse tests (torn frames, garbage).
  int fd() const { return fd_; }
  void send_raw(std::string_view bytes);
  /// Encodes and sends `message` without waiting for a reply (replication
  /// heartbeats are one-way until the primary answers asynchronously).
  void send_message(const Message& message);
  /// Reads until one full frame decodes. Throws on EOF/corrupt stream.
  Message read_frame();
  /// Like read_frame(), but a clean EOF before any byte of a frame returns
  /// false (used to observe the server closing after a malformed frame).
  bool try_read_frame(Message& out);

  /// One bounded wait for the next frame — the follower's tail loop runs on
  /// this, interleaving heartbeats on kTimeout. timeout_ms <= 0 waits
  /// forever. kClosed is a clean EOF between frames; an EOF mid-frame or a
  /// corrupt stream still throws.
  enum class PollResult { kFrame, kTimeout, kClosed };
  PollResult poll_frame(Message& out, double timeout_ms);

 private:
  Message wait_for(std::uint64_t request_id);
  void connect_once(const sockaddr* addr, std::size_t addr_len,
                    const std::string& where);

  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::string read_buffer_;
};

}  // namespace forumcast::net
