#include "net/protocol.hpp"

#include <cstring>
#include <type_traits>

#include "artifact/artifact.hpp"

namespace forumcast::net {

namespace {

template <typename T>
void append_raw(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));  // x86-64/aarch64: little-endian
}

template <typename T>
bool read_raw(std::string_view& data, T& value) {
  if (data.size() < sizeof(T)) return false;
  std::memcpy(&value, data.data(), sizeof(T));
  data.remove_prefix(sizeof(T));
  return true;
}

void append_string(std::string& out, std::string_view value) {
  append_raw(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

bool read_string(std::string_view& data, std::string& value) {
  std::uint32_t length = 0;
  if (!read_raw(data, length) || data.size() < length) return false;
  value.assign(data.data(), length);
  data.remove_prefix(length);
  return true;
}

void append_prediction(std::string& out, const core::Prediction& p) {
  append_raw(out, p.answer_probability);
  append_raw(out, p.votes);
  append_raw(out, p.delay_hours);
}

bool read_prediction(std::string_view& data, core::Prediction& p) {
  return read_raw(data, p.answer_probability) && read_raw(data, p.votes) &&
         read_raw(data, p.delay_hours);
}

std::string encode_payload(const Message& m) {
  std::string payload;
  append_raw(payload, static_cast<std::uint8_t>(m.kind));
  append_raw(payload, m.request_id);
  switch (m.kind) {
    case MessageKind::kScoreRequest:
    case MessageKind::kRouteRequest:
      append_raw(payload, m.question);
      if (m.kind == MessageKind::kRouteRequest) append_raw(payload, m.top_k);
      append_raw(payload, static_cast<std::uint32_t>(m.users.size()));
      for (const forum::UserId u : m.users) append_raw(payload, u);
      break;
    case MessageKind::kHealthRequest:
    case MessageKind::kMetricsRequest:
    case MessageKind::kShutdownRequest:
    case MessageKind::kShutdownResponse:
      break;
    case MessageKind::kSwapRequest:
      append_string(payload, m.text);
      break;
    case MessageKind::kScoreResponse:
      append_raw(payload, static_cast<std::uint32_t>(m.predictions.size()));
      for (const core::Prediction& p : m.predictions) {
        append_prediction(payload, p);
      }
      break;
    case MessageKind::kRouteResponse:
      append_raw(payload, static_cast<std::uint8_t>(m.feasible ? 1 : 0));
      append_raw(payload, static_cast<std::uint32_t>(m.routes.size()));
      for (const RouteEntry& r : m.routes) {
        append_raw(payload, r.user);
        append_raw(payload, r.probability);
        append_prediction(payload, r.prediction);
      }
      break;
    case MessageKind::kHealthResponse:
      append_raw(payload, m.health.num_questions);
      append_raw(payload, m.health.num_users);
      append_raw(payload, m.health.model_generation);
      append_raw(payload, m.health.swap_epoch);
      append_raw(payload, m.health.queue_depth);
      break;
    case MessageKind::kMetricsResponse:
      append_string(payload, m.text);
      break;
    case MessageKind::kSwapResponse:
      append_raw(payload, m.generation);
      append_raw(payload, m.swap_epoch);
      break;
    case MessageKind::kErrorResponse:
      append_raw(payload, static_cast<std::uint16_t>(m.error));
      append_string(payload, m.text);
      break;
    case MessageKind::kSubscribeRequest:
      append_raw(payload, m.from_seq);
      append_raw(payload, static_cast<std::uint8_t>(m.want_bundle ? 1 : 0));
      break;
    case MessageKind::kReplicaStatusRequest:
      break;
    case MessageKind::kReplicaHeartbeat:
      append_raw(payload, m.replica.applied_seq);
      break;
    case MessageKind::kSnapshotOffer:
      append_raw(payload, m.head_seq);
      append_raw(payload, m.bundle_bytes);
      break;
    case MessageKind::kSnapshotChunk:
      append_raw(payload, m.offset);
      append_string(payload, m.text);
      break;
    case MessageKind::kWalBatch:
      append_raw(payload, m.first_seq);
      append_raw(payload, m.last_seq);
      append_raw(payload, m.event_count);
      append_raw(payload, static_cast<std::uint8_t>(m.has_digest ? 1 : 0));
      append_raw(payload, m.digest);
      append_string(payload, m.text);
      break;
    case MessageKind::kReplicaStatusResponse:
      append_raw(payload, m.replica.role);
      append_raw(payload, m.replica.applied_seq);
      append_raw(payload, m.replica.head_seq);
      append_raw(payload, m.replica.lag_events);
      append_raw(payload, m.replica.lag_ms);
      append_raw(payload, m.replica.digest);
      break;
    case MessageKind::kModelSwap:
      append_string(payload, m.text);
      append_raw(payload, m.generation);
      append_raw(payload, m.swap_epoch);
      break;
  }
  return payload;
}

/// Strict decode: every field must be present and the payload must hold
/// nothing beyond them (trailing bytes behind a valid CRC are still a
/// malformed message — a frame means exactly one message).
bool decode_payload(std::string_view payload, Message& m) {
  std::uint8_t kind = 0;
  if (!read_raw(payload, kind) || !read_raw(payload, m.request_id)) {
    return false;
  }
  switch (kind) {
    case static_cast<std::uint8_t>(MessageKind::kScoreRequest):
    case static_cast<std::uint8_t>(MessageKind::kRouteRequest): {
      m.kind = static_cast<MessageKind>(kind);
      if (!read_raw(payload, m.question)) return false;
      if (m.kind == MessageKind::kRouteRequest &&
          !read_raw(payload, m.top_k)) {
        return false;
      }
      std::uint32_t count = 0;
      if (!read_raw(payload, count) || count > kMaxRequestUsers ||
          payload.size() != count * sizeof(forum::UserId)) {
        return false;
      }
      m.users.resize(count);
      for (auto& u : m.users) read_raw(payload, u);
      return true;
    }
    case static_cast<std::uint8_t>(MessageKind::kHealthRequest):
    case static_cast<std::uint8_t>(MessageKind::kMetricsRequest):
    case static_cast<std::uint8_t>(MessageKind::kShutdownRequest):
    case static_cast<std::uint8_t>(MessageKind::kShutdownResponse):
      m.kind = static_cast<MessageKind>(kind);
      return payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kSwapRequest):
      m.kind = MessageKind::kSwapRequest;
      return read_string(payload, m.text) && payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kScoreResponse): {
      m.kind = MessageKind::kScoreResponse;
      std::uint32_t count = 0;
      if (!read_raw(payload, count) ||
          payload.size() != count * 3 * sizeof(double)) {
        return false;
      }
      m.predictions.resize(count);
      for (auto& p : m.predictions) read_prediction(payload, p);
      return true;
    }
    case static_cast<std::uint8_t>(MessageKind::kRouteResponse): {
      m.kind = MessageKind::kRouteResponse;
      std::uint8_t feasible = 0;
      std::uint32_t count = 0;
      if (!read_raw(payload, feasible) || feasible > 1 ||
          !read_raw(payload, count)) {
        return false;
      }
      m.feasible = feasible != 0;
      constexpr std::size_t kEntryBytes =
          sizeof(forum::UserId) + 4 * sizeof(double);
      if (payload.size() != count * kEntryBytes) return false;
      m.routes.resize(count);
      for (auto& r : m.routes) {
        read_raw(payload, r.user);
        read_raw(payload, r.probability);
        read_prediction(payload, r.prediction);
      }
      return true;
    }
    case static_cast<std::uint8_t>(MessageKind::kHealthResponse):
      m.kind = MessageKind::kHealthResponse;
      return read_raw(payload, m.health.num_questions) &&
             read_raw(payload, m.health.num_users) &&
             read_raw(payload, m.health.model_generation) &&
             read_raw(payload, m.health.swap_epoch) &&
             read_raw(payload, m.health.queue_depth) && payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kMetricsResponse):
      m.kind = MessageKind::kMetricsResponse;
      return read_string(payload, m.text) && payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kSwapResponse):
      m.kind = MessageKind::kSwapResponse;
      return read_raw(payload, m.generation) &&
             read_raw(payload, m.swap_epoch) && payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kErrorResponse): {
      m.kind = MessageKind::kErrorResponse;
      std::uint16_t code = 0;
      if (!read_raw(payload, code) || code > 6) return false;
      m.error = static_cast<ErrorCode>(code);
      return read_string(payload, m.text) && payload.empty();
    }
    case static_cast<std::uint8_t>(MessageKind::kSubscribeRequest): {
      m.kind = MessageKind::kSubscribeRequest;
      std::uint8_t want = 0;
      if (!read_raw(payload, m.from_seq) || !read_raw(payload, want) ||
          want > 1) {
        return false;
      }
      m.want_bundle = want != 0;
      return payload.empty();
    }
    case static_cast<std::uint8_t>(MessageKind::kReplicaStatusRequest):
      m.kind = MessageKind::kReplicaStatusRequest;
      return payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kReplicaHeartbeat):
      m.kind = MessageKind::kReplicaHeartbeat;
      return read_raw(payload, m.replica.applied_seq) && payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kSnapshotOffer):
      m.kind = MessageKind::kSnapshotOffer;
      return read_raw(payload, m.head_seq) &&
             read_raw(payload, m.bundle_bytes) && payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kSnapshotChunk):
      m.kind = MessageKind::kSnapshotChunk;
      return read_raw(payload, m.offset) && read_string(payload, m.text) &&
             payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kWalBatch): {
      m.kind = MessageKind::kWalBatch;
      std::uint8_t has_digest = 0;
      if (!read_raw(payload, m.first_seq) || !read_raw(payload, m.last_seq) ||
          !read_raw(payload, m.event_count) ||
          !read_raw(payload, has_digest) || has_digest > 1 ||
          !read_raw(payload, m.digest)) {
        return false;
      }
      m.has_digest = has_digest != 0;
      if (!read_string(payload, m.text) || !payload.empty()) return false;
      // Shape invariants checkable without decoding the records: a batch
      // spans [first, last] with exactly `count` records; an empty batch
      // carries no bytes.
      if (m.event_count == 0) return m.text.empty();
      return m.last_seq >= m.first_seq &&
             m.last_seq - m.first_seq + 1 == m.event_count && !m.text.empty();
    }
    case static_cast<std::uint8_t>(MessageKind::kReplicaStatusResponse):
      m.kind = MessageKind::kReplicaStatusResponse;
      return read_raw(payload, m.replica.role) && m.replica.role <= 2 &&
             read_raw(payload, m.replica.applied_seq) &&
             read_raw(payload, m.replica.head_seq) &&
             read_raw(payload, m.replica.lag_events) &&
             read_raw(payload, m.replica.lag_ms) &&
             read_raw(payload, m.replica.digest) && payload.empty();
    case static_cast<std::uint8_t>(MessageKind::kModelSwap):
      m.kind = MessageKind::kModelSwap;
      return read_string(payload, m.text) && read_raw(payload, m.generation) &&
             read_raw(payload, m.swap_epoch) && payload.empty();
    default:
      return false;  // unassigned kind byte
  }
}

}  // namespace

const char* message_kind_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kScoreRequest: return "score_request";
    case MessageKind::kRouteRequest: return "route_request";
    case MessageKind::kHealthRequest: return "health_request";
    case MessageKind::kMetricsRequest: return "metrics_request";
    case MessageKind::kSwapRequest: return "swap_request";
    case MessageKind::kShutdownRequest: return "shutdown_request";
    case MessageKind::kScoreResponse: return "score_response";
    case MessageKind::kRouteResponse: return "route_response";
    case MessageKind::kHealthResponse: return "health_response";
    case MessageKind::kMetricsResponse: return "metrics_response";
    case MessageKind::kSwapResponse: return "swap_response";
    case MessageKind::kShutdownResponse: return "shutdown_response";
    case MessageKind::kSubscribeRequest: return "subscribe_request";
    case MessageKind::kReplicaStatusRequest: return "replica_status_request";
    case MessageKind::kReplicaHeartbeat: return "replica_heartbeat";
    case MessageKind::kSnapshotOffer: return "snapshot_offer";
    case MessageKind::kSnapshotChunk: return "snapshot_chunk";
    case MessageKind::kWalBatch: return "wal_batch";
    case MessageKind::kReplicaStatusResponse: return "replica_status_response";
    case MessageKind::kModelSwap: return "model_swap";
    case MessageKind::kErrorResponse: return "error_response";
  }
  return "unknown";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownKind: return "unknown_kind";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kMalformedFrame: return "malformed_frame";
  }
  return "unknown";
}

void append_frame(std::string& out, const Message& message) {
  const std::string payload = encode_payload(message);
  append_raw(out, static_cast<std::uint32_t>(payload.size()));
  append_raw(out, artifact::crc32(payload));
  out.append(payload);
}

DecodeFrameResult decode_frame(std::string_view data) {
  DecodeFrameResult result;
  std::string_view cursor = data;
  std::uint32_t length = 0;
  std::uint32_t checksum = 0;
  if (!read_raw(cursor, length)) return result;  // short header: wait
  if (length > kMaxFramePayload) {
    // Reject before the bytes arrive: an announced length past the ceiling
    // can never become a valid frame, so there is nothing to wait for.
    result.corrupt = true;
    return result;
  }
  if (!read_raw(cursor, checksum)) return result;
  if (cursor.size() < length) return result;  // incomplete payload: wait
  const std::string_view payload = cursor.substr(0, length);
  if (artifact::crc32(payload) != checksum ||
      !decode_payload(payload, result.message)) {
    result.corrupt = true;
    return result;
  }
  result.bytes_consumed = sizeof(std::uint32_t) * 2 + length;
  return result;
}

}  // namespace forumcast::net
