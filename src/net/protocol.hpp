// Wire protocol for the forumcast serving daemon.
//
// Every message travels as one length-prefixed, CRC-framed record — the
// same [u32 payload_len][u32 crc32(payload)][payload] idiom the WAL
// (stream/event) and the model bundle (artifact) use for durable bytes,
// here applied to a byte stream between processes. The CRC lets the server
// distinguish a torn or hostile frame from a clean partial read: a short
// buffer is "wait for more bytes", a failed CRC or an oversized announced
// length is a protocol violation that ends the connection.
//
// Payload layout (little-endian, fixed field order):
//   [u8 kind][u64 request_id][kind-specific fields]
//
// request_id is chosen by the client and echoed verbatim in the response,
// so clients may pipeline requests and match responses out of band. The
// server never reorders responses for requests of the same kind on one
// connection, but scored responses (which ride through the async
// micro-batcher) may overtake immediate responses (health, metrics).
//
// Score responses carry raw IEEE-754 bit patterns, so a wire score is
// bit-identical to the in-process serve::BatchScorer score — digest parity
// across the wire is an exact-equality check, not a tolerance.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/post.hpp"

namespace forumcast::net {

/// Hard ceiling on a frame's announced payload length. A header announcing
/// more is rejected immediately (before buffering), so a hostile or corrupt
/// length field can never make the server buffer unbounded garbage.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB

/// Candidate-count ceiling for score/route requests; combined with the
/// frame ceiling it bounds per-request work.
inline constexpr std::uint32_t kMaxRequestUsers = 1u << 17;  // 128K

enum class MessageKind : std::uint8_t {
  // Requests.
  kScoreRequest = 1,     ///< one question × N candidate users
  kRouteRequest = 2,     ///< eq. (2) LP routing over N candidates
  kHealthRequest = 3,    ///< liveness + serving-state info
  kMetricsRequest = 4,   ///< obs metrics snapshot (JSON text)
  kSwapRequest = 5,      ///< hot-swap the served model from a bundle file
  kShutdownRequest = 6,  ///< graceful drain + exit
  // Replication requests (follower → primary, on the replication listener;
  // kReplicaStatusRequest is answered on any connection).
  kSubscribeRequest = 7,      ///< start tailing the WAL after from_seq
  kReplicaStatusRequest = 8,  ///< role / applied seq / lag / state digest
  kReplicaHeartbeat = 9,      ///< periodic follower progress report
  // Responses.
  kScoreResponse = 33,
  kRouteResponse = 34,
  kHealthResponse = 35,
  kMetricsResponse = 36,
  kSwapResponse = 37,
  kShutdownResponse = 38,
  // Replication stream frames (primary → follower).
  kSnapshotOffer = 39,          ///< answers a subscribe: head seq + bundle size
  kSnapshotChunk = 40,          ///< one slice of the model bundle's bytes
  kWalBatch = 41,               ///< a run of framed WAL event records
  kReplicaStatusResponse = 42,  ///< status reply (also answers heartbeats)
  kModelSwap = 43,              ///< primary hot-swapped; followers follow suit
  kErrorResponse = 63,  ///< typed error (see ErrorCode)
};

enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kQueueFull = 1,       ///< admission control: micro-batcher queue at capacity
  kBadRequest = 2,      ///< ids out of range / empty candidate set
  kUnknownKind = 3,     ///< well-framed payload with an unassigned kind byte
  kShuttingDown = 4,    ///< server is draining; no new work admitted
  kInternal = 5,        ///< server-side failure (e.g. swap bundle unreadable)
  kMalformedFrame = 6,  ///< framing violation; the connection closes after this
};

const char* message_kind_name(MessageKind kind);
const char* error_code_name(ErrorCode code);

/// One routed candidate: the LP's p_u plus the (â, v̂, r̂) that drove it.
struct RouteEntry {
  forum::UserId user = 0;
  double probability = 0.0;
  core::Prediction prediction;
};

/// Serving-state info carried by a health response.
struct HealthInfo {
  std::uint32_t num_questions = 0;
  std::uint32_t num_users = 0;
  std::uint64_t model_generation = 0;
  std::uint64_t swap_epoch = 0;
  std::uint64_t queue_depth = 0;
};

/// Replication role + progress, carried by kReplicaStatusResponse. The
/// digest is the node's LiveState::digest() at applied_seq — two nodes
/// reporting the same applied_seq must report the same digest, which is
/// what the replica smoke asserts across primary and followers.
struct ReplicaStatusInfo {
  std::uint8_t role = 0;  ///< 0 = standalone, 1 = primary, 2 = follower
  std::uint64_t applied_seq = 0;
  std::uint64_t head_seq = 0;  ///< primary's head (followers: last known)
  std::uint64_t lag_events = 0;
  double lag_ms = 0.0;
  std::uint64_t digest = 0;
};

/// Flat message struct (the ForumEvent idiom): one type for every kind,
/// with only the fields the kind's codec reads/writes meaningful.
struct Message {
  MessageKind kind = MessageKind::kHealthRequest;
  std::uint64_t request_id = 0;

  // kScoreRequest / kRouteRequest.
  forum::QuestionId question = 0;
  std::uint32_t top_k = 0;  ///< route only
  std::vector<forum::UserId> users;

  // kScoreResponse: one prediction per requested user, in request order.
  std::vector<core::Prediction> predictions;

  // kRouteResponse.
  bool feasible = false;
  std::vector<RouteEntry> routes;

  // kHealthResponse.
  HealthInfo health;

  // kSwapResponse: post-swap identity (also model_generation in `health`).
  std::uint64_t generation = 0;
  std::uint64_t swap_epoch = 0;

  // kSwapRequest / kModelSwap (bundle path), kMetricsResponse (JSON),
  // kSnapshotChunk (bundle bytes), kWalBatch (framed event records),
  // kErrorResponse (human-readable detail).
  std::string text;

  // kErrorResponse.
  ErrorCode error = ErrorCode::kNone;

  // Replication fields.
  std::uint64_t from_seq = 0;     ///< subscribe: resume after this seq
  bool want_bundle = false;       ///< subscribe: ship the model bundle first
  std::uint64_t head_seq = 0;     ///< snapshot offer: primary's durable head
  std::uint64_t bundle_bytes = 0; ///< snapshot offer: total bundle size
  std::uint64_t offset = 0;       ///< snapshot chunk: byte offset
  std::uint64_t first_seq = 0;    ///< wal batch: seq of the first record
  std::uint64_t last_seq = 0;     ///< wal batch: seq of the last record
  std::uint32_t event_count = 0;  ///< wal batch: record count in `text`
  bool has_digest = false;        ///< wal batch: `digest` is meaningful
  std::uint64_t digest = 0;       ///< primary LiveState digest at last_seq
  ReplicaStatusInfo replica;      ///< kReplicaStatusResponse, kReplicaHeartbeat
};

/// Appends one framed record for `message` to `out`.
void append_frame(std::string& out, const Message& message);

/// Result of pulling one frame off a byte stream. Mirrors the WAL codec:
/// bytes_consumed == 0 with corrupt == false means "incomplete, wait for
/// more bytes"; corrupt == true means the stream is unrecoverable (bad CRC,
/// oversized length, or a payload that does not decode) — a server closes
/// the connection, a reader of a file stops.
struct DecodeFrameResult {
  Message message;
  std::size_t bytes_consumed = 0;
  bool corrupt = false;
};

DecodeFrameResult decode_frame(std::string_view data);

}  // namespace forumcast::net
