// Server-side replication hooks.
//
// The serving daemon stays ignorant of where the event log lives: when a
// follower subscribes on the replication listener, the event loop pulls
// spans of encoded WAL records (and the model bundle for bootstrap) from a
// ReplicationSource and ships them as kWalBatch / kSnapshotChunk frames.
// replica::Publisher implements this over a WAL directory — the layering
// keeps net free of any dependency on stream or replica.
//
// Only *durable* bytes are shipped: a span never reaches past what the
// primary has fsynced, so a follower can never apply an event the primary
// could lose in a crash.
#pragma once

#include <cstdint>
#include <string>

namespace forumcast::net {

/// A run of consecutive, already-durable WAL records, encoded in the
/// on-disk record framing (the follower feeds them straight through
/// stream::decode_event_record). count == 0 means "caught up".
struct WalSpan {
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  std::uint32_t count = 0;
  std::string records;
  /// When the span reaches the primary's live head, the primary attaches
  /// its LiveState::digest() at last_seq — the follower applies the span
  /// and compares. This is the periodic digest exchange.
  bool has_digest = false;
  std::uint64_t digest = 0;
};

/// What the server needs from the replication provider. Called only from
/// the server's event-loop thread; implementations synchronize internally
/// against the ingest thread.
class ReplicationSource {
 public:
  virtual ~ReplicationSource() = default;

  /// Sequence number of the last durable (fsynced) event.
  virtual std::uint64_t head_seq() = 0;

  /// The model bundle a bootstrapping follower loads before replaying the
  /// log. Empty when no bundle exists (followers then need a local one).
  virtual std::string bundle_bytes() = 0;

  /// Encoded records with seq > after_seq, at most ~max_bytes of payload.
  virtual WalSpan events_after(std::uint64_t after_seq,
                               std::size_t max_bytes) = 0;
};

}  // namespace forumcast::net
