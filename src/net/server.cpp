#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace forumcast::net {

namespace {

// epoll_event.data.u64 sentinels; connection ids start above them.
constexpr std::uint64_t kListenToken = 0;
constexpr std::uint64_t kWakeToken = 1;
constexpr std::uint64_t kReplListenToken = 2;
constexpr std::uint64_t kFirstConnId = 3;

// Replication pacing: pump no further while a follower already has this
// much unflushed outbound data (soft cap — the connection is exempt from
// the slow-consumer ceiling, so this is what bounds its buffer instead).
constexpr std::size_t kReplPendingSoftCap = 1u << 20;
// One kWalBatch span's encoded-records budget; stays well under the frame
// payload ceiling once the span header rides along.
constexpr std::size_t kReplSpanBytes = 192u * 1024;
// Bundle bootstrap chunking (kSnapshotChunk payload bytes per frame).
constexpr std::size_t kBundleChunkBytes = 256u * 1024;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

int make_loopback_listener(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  FORUMCAST_CHECK_MSG(fd >= 0, "socket failed: " << std::strerror(errno));
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const int saved = errno;
    ::close(fd);
    FORUMCAST_CHECK_MSG(false, "cannot bind port " << port << ": "
                                                   << std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  FORUMCAST_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0);
  bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

Server::Server(serve::BatchScorer& scorer, const forum::Dataset& dataset,
               ServerConfig config)
    : scorer_(scorer),
      dataset_(dataset),
      config_(config),
      next_conn_id_(kFirstConnId) {
  listen_fd_ = make_loopback_listener(config_.port, port_);
  if (config_.replication != nullptr) {
    repl_listen_fd_ =
        make_loopback_listener(config_.replication_port, replication_port_);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  FORUMCAST_CHECK_MSG(epoll_fd_ >= 0,
                      "epoll_create1 failed: " << std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  FORUMCAST_CHECK_MSG(wake_fd_ >= 0,
                      "eventfd failed: " << std::strerror(errno));

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenToken;
  FORUMCAST_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) == 0);
  event.data.u64 = kWakeToken;
  FORUMCAST_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) == 0);
  if (repl_listen_fd_ >= 0) {
    event.data.u64 = kReplListenToken;
    FORUMCAST_CHECK(
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, repl_listen_fd_, &event) == 0);
  }

  // Chain the swap notification through note_model_swap so subscribed
  // followers learn about primary hot swaps, preserving any hook the
  // caller installed.
  BatcherConfig batcher_config = config_.batcher;
  const auto caller_on_swap = batcher_config.on_swap;
  batcher_config.on_swap = [this, caller_on_swap](const std::string& path,
                                                  std::uint64_t generation,
                                                  std::uint64_t swap_epoch) {
    if (caller_on_swap) caller_on_swap(path, generation, swap_epoch);
    note_model_swap(path, generation, swap_epoch);
  };
  batcher_ = std::make_unique<MicroBatcher>(
      scorer_, dataset_, batcher_config,
      [this](std::uint64_t conn_id, std::string frame) {
        on_batch_complete(conn_id, std::move(frame));
      });
}

Server::~Server() {
  if (batcher_) batcher_->stop();
  for (auto& [id, conn] : connections_) close_fd(conn.fd);
  connections_.clear();
  close_fd(listen_fd_);
  close_fd(repl_listen_fd_);
  close_fd(wake_fd_);
  close_fd(epoll_fd_);
}

void Server::stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  // Async-signal-safe wake; a failed write only delays the loop until its
  // next timeout tick.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Server::notify_replication() noexcept {
  replication_pending_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Server::note_model_swap(std::string bundle_path, std::uint64_t generation,
                             std::uint64_t swap_epoch) {
  Message notice;
  notice.kind = MessageKind::kModelSwap;
  notice.text = std::move(bundle_path);
  notice.generation = generation;
  notice.swap_epoch = swap_epoch;
  {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    pending_swaps_.push_back(std::move(notice));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Server::on_batch_complete(std::uint64_t conn_id, std::string frame) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.emplace_back(conn_id, std::move(frame));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Server::run() {
  FORUMCAST_LOG_INFO << "net.server listening on 127.0.0.1:" << port_;
  std::vector<epoll_event> events(64);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int ready =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), 500);
    if (ready < 0) {
      if (errno == EINTR) continue;
      FORUMCAST_CHECK_MSG(false, "epoll_wait failed: " << std::strerror(errno));
    }
    for (int i = 0; i < ready; ++i) {
      const epoll_event& event = events[static_cast<std::size_t>(i)];
      if (event.data.u64 == kListenToken) {
        handle_accept(listen_fd_, /*replication=*/false);
        continue;
      }
      if (event.data.u64 == kReplListenToken) {
        handle_accept(repl_listen_fd_, /*replication=*/true);
        continue;
      }
      if (event.data.u64 == kWakeToken) {
        std::uint64_t count = 0;
        while (::read(wake_fd_, &count, sizeof count) > 0) {
        }
        drain_completions();
        broadcast_pending_swap();
        if (replication_pending_.exchange(false, std::memory_order_acq_rel)) {
          pump_replication();
        }
        continue;
      }
      const auto it = connections_.find(event.data.u64);
      if (it == connections_.end()) continue;  // closed earlier this cycle
      Connection& conn = it->second;
      bool alive = true;
      if (event.events & (EPOLLHUP | EPOLLERR)) alive = false;
      if (alive && (event.events & EPOLLIN)) {
        handle_readable(conn);
        alive = conn.fd >= 0;
      }
      if (alive && (event.events & EPOLLOUT)) {
        handle_writable(conn);
        alive = conn.fd >= 0;
      }
      if (!alive) close_connection(event.data.u64);
    }
    export_gauges();
  }

  // Graceful drain: no new connections or admissions; every admitted
  // request completes and its response is flushed (bounded by the drain
  // deadline if a peer stops reading).
  draining_ = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  close_fd(listen_fd_);
  if (repl_listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, repl_listen_fd_, nullptr);
    close_fd(repl_listen_fd_);
  }
  batcher_->stop();
  drain_completions();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool pending = false;
    for (const auto& [id, conn] : connections_) {
      if (conn.write_offset < conn.write_buffer.size()) {
        pending = true;
        break;
      }
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), 100);
    for (int i = 0; i < std::max(ready, 0); ++i) {
      const epoll_event& event = events[static_cast<std::size_t>(i)];
      if (event.data.u64 < kFirstConnId) continue;
      const auto it = connections_.find(event.data.u64);
      if (it == connections_.end()) continue;
      if (event.events & (EPOLLHUP | EPOLLERR)) {
        close_connection(event.data.u64);
        continue;
      }
      if (event.events & EPOLLOUT) {
        handle_writable(it->second);
        if (it->second.fd < 0) close_connection(event.data.u64);
      }
    }
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const std::uint64_t id : ids) close_connection(id);
  export_gauges();
  FORUMCAST_LOG_INFO << "net.server drained and stopped";
}

void Server::handle_accept(int listen_fd, bool replication) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.id = id;
    conn.replication = replication;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(id, std::move(conn));
    FORUMCAST_COUNTER_ADD(
        replication ? "replica.connections_accepted" : "net.connections_accepted",
        1);
  }
}

void Server::handle_readable(Connection& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buffer, sizeof buffer);
    if (n > 0) {
      conn.read_buffer.append(buffer, static_cast<std::size_t>(n));
      FORUMCAST_COUNTER_ADD("net.bytes_read", n);
      continue;
    }
    if (n == 0) {  // EOF: parse what arrived, then close
      drain_frames(conn);
      close_fd(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_fd(conn.fd);
    return;
  }
  if (!drain_frames(conn)) {
    // Malformed stream: the error frame is queued; close once it flushes
    // (or immediately if it already did).
    conn.close_after_flush = true;
  }
  flush_writes(conn);
  if (conn.fd >= 0) update_epoll(conn);
}

bool Server::drain_frames(Connection& conn) {
  std::size_t consumed = 0;
  bool ok = true;
  while (ok) {
    const std::string_view rest =
        std::string_view(conn.read_buffer).substr(consumed);
    if (rest.empty()) break;
    DecodeFrameResult decoded = decode_frame(rest);
    if (decoded.corrupt) {
      FORUMCAST_COUNTER_ADD("net.malformed_frames", 1);
      send_error(conn, 0, ErrorCode::kMalformedFrame,
                 "bad frame (CRC/length/payload); closing connection");
      ok = false;
      break;
    }
    if (decoded.bytes_consumed == 0) break;  // incomplete: wait for bytes
    consumed += decoded.bytes_consumed;
    dispatch(conn, std::move(decoded.message));
  }
  if (consumed > 0) conn.read_buffer.erase(0, consumed);
  return ok;
}

void Server::dispatch(Connection& conn, Message request) {
  ++requests_seen_;
  FORUMCAST_COUNTER_ADD("net.requests", 1);
  if (conn.replication) {
    // The replication listener speaks only the replication subset; scoring
    // and admin traffic belong on the serving port.
    switch (request.kind) {
      case MessageKind::kSubscribeRequest:
        handle_subscribe(conn, request);
        return;
      case MessageKind::kReplicaHeartbeat:
        handle_heartbeat(conn, request);
        return;
      case MessageKind::kReplicaStatusRequest:
        break;  // answered below, same as on the serving port
      default:
        send_error(conn, request.request_id, ErrorCode::kBadRequest,
                   std::string("not a replication request: ") +
                       message_kind_name(request.kind));
        return;
    }
  }
  switch (request.kind) {
    case MessageKind::kScoreRequest:
    case MessageKind::kRouteRequest:
    case MessageKind::kSwapRequest: {
      MicroBatcher::Item item;
      item.conn_id = conn.id;
      const std::uint64_t request_id = request.request_id;
      item.request = std::move(request);
      if (!batcher_->try_submit(std::move(item))) {
        if (stop_requested_.load(std::memory_order_acquire)) {
          send_error(conn, request_id, ErrorCode::kShuttingDown,
                     "server is draining");
        } else {
          FORUMCAST_COUNTER_ADD("net.rejected_queue_full", 1);
          send_error(conn, request_id, ErrorCode::kQueueFull,
                     "micro-batch queue at capacity; retry with backoff");
        }
      }
      break;
    }
    case MessageKind::kHealthRequest: {
      Message response;
      response.kind = MessageKind::kHealthResponse;
      response.request_id = request.request_id;
      {
        // Guarded like scoring: on live-ingest nodes the dataset grows
        // concurrently, and the sizes must come from the served pipeline.
        const std::shared_ptr<void> guard =
            config_.batcher.read_guard ? config_.batcher.read_guard() : nullptr;
        const std::shared_ptr<const core::ForecastPipeline> pipeline =
            scorer_.pipeline();
        response.health.num_questions =
            static_cast<std::uint32_t>(pipeline->dataset().num_questions());
        response.health.num_users =
            static_cast<std::uint32_t>(pipeline->dataset().num_users());
        response.health.model_generation = pipeline->generation();
      }
      response.health.swap_epoch = scorer_.swap_epoch();
      response.health.queue_depth = batcher_->queue_depth();
      respond(conn, response);
      break;
    }
    case MessageKind::kReplicaStatusRequest: {
      Message response;
      response.kind = MessageKind::kReplicaStatusResponse;
      response.request_id = request.request_id;
      if (config_.status_fn) {
        response.replica = config_.status_fn();
      } else if (config_.replication != nullptr) {
        response.replica.role = 1;
        response.replica.head_seq = config_.replication->head_seq();
        response.replica.applied_seq = response.replica.head_seq;
      }
      respond(conn, response);
      break;
    }
    case MessageKind::kSubscribeRequest: {
      send_error(conn, request.request_id, ErrorCode::kBadRequest,
                 "subscribe is only accepted on the replication port");
      break;
    }
    case MessageKind::kMetricsRequest: {
      Message response;
      response.kind = MessageKind::kMetricsResponse;
      response.request_id = request.request_id;
      response.text = obs::MetricsRegistry::global().snapshot().to_json();
      respond(conn, response);
      break;
    }
    case MessageKind::kShutdownRequest: {
      Message response;
      response.kind = MessageKind::kShutdownResponse;
      response.request_id = request.request_id;
      respond(conn, response);
      stop();
      break;
    }
    default:
      send_error(conn, request.request_id, ErrorCode::kUnknownKind,
                 std::string("not a request kind: ") +
                     message_kind_name(request.kind));
      break;
  }
}

void Server::respond(Connection& conn, const Message& response) {
  std::string frame;
  append_frame(frame, response);
  FORUMCAST_COUNTER_ADD("net.responses", 1);
  queue_bytes(conn, frame);
}

void Server::send_error(Connection& conn, std::uint64_t request_id,
                        ErrorCode code, std::string detail) {
  Message response;
  response.kind = MessageKind::kErrorResponse;
  response.request_id = request_id;
  response.error = code;
  response.text = std::move(detail);
  respond(conn, response);
}

void Server::queue_bytes(Connection& conn, std::string_view bytes) {
  if (conn.fd < 0) return;
  const std::size_t pending = conn.write_buffer.size() - conn.write_offset;
  if (!conn.replication && pending + bytes.size() > config_.max_write_buffer) {
    // Slow consumer: the peer pipelines requests but stopped reading
    // responses. Cut it off rather than buffer without bound.
    FORUMCAST_COUNTER_ADD("net.slow_consumer_closes", 1);
    close_fd(conn.fd);
    return;
  }
  // Compact the flushed prefix before growing the buffer again.
  if (conn.write_offset > 0 && conn.write_offset == conn.write_buffer.size()) {
    conn.write_buffer.clear();
    conn.write_offset = 0;
  }
  conn.write_buffer.append(bytes);
}

void Server::flush_writes(Connection& conn) {
  while (conn.fd >= 0 && conn.write_offset < conn.write_buffer.size()) {
    const ssize_t n = ::write(conn.fd, conn.write_buffer.data() + conn.write_offset,
                              conn.write_buffer.size() - conn.write_offset);
    if (n > 0) {
      conn.write_offset += static_cast<std::size_t>(n);
      FORUMCAST_COUNTER_ADD("net.bytes_written", n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_fd(conn.fd);
    return;
  }
  if (conn.write_offset == conn.write_buffer.size()) {
    conn.write_buffer.clear();
    conn.write_offset = 0;
    if (conn.close_after_flush) close_fd(conn.fd);
  }
}

void Server::handle_writable(Connection& conn) {
  flush_writes(conn);
  // A drained follower buffer resumes the stream — this is the pacing
  // loop's other half: pump until the soft cap, wait for writability,
  // pump again.
  if (conn.fd >= 0 && conn.subscribed) pump_connection(conn);
  if (conn.fd >= 0) update_epoll(conn);
}

void Server::handle_subscribe(Connection& conn, const Message& request) {
  if (config_.replication == nullptr) {
    send_error(conn, request.request_id, ErrorCode::kBadRequest,
               "this daemon has no replication source");
    return;
  }
  const std::string bundle =
      request.want_bundle != 0 ? config_.replication->bundle_bytes()
                               : std::string();
  Message offer;
  offer.kind = MessageKind::kSnapshotOffer;
  offer.request_id = request.request_id;
  offer.head_seq = config_.replication->head_seq();
  offer.bundle_bytes = bundle.size();
  respond(conn, offer);
  // Chunk the bundle under the frame-payload ceiling; the follower knows
  // the total from the offer and reassembles by offset.
  for (std::size_t off = 0; off < bundle.size(); off += kBundleChunkBytes) {
    Message chunk;
    chunk.kind = MessageKind::kSnapshotChunk;
    chunk.request_id = request.request_id;
    chunk.offset = off;
    chunk.text = bundle.substr(off, kBundleChunkBytes);
    respond(conn, chunk);
  }
  conn.subscribed = true;
  conn.streamed_seq = request.from_seq;
  conn.follower_seq = request.from_seq;
  FORUMCAST_COUNTER_ADD("replica.subscriptions", 1);
  FORUMCAST_LOG_INFO << "replica subscribed from seq " << request.from_seq
                     << " (head " << offer.head_seq << ")";
  pump_connection(conn);
}

void Server::handle_heartbeat(Connection& conn, const Message& request) {
  conn.follower_seq = request.replica.applied_seq;
  Message response;
  response.kind = MessageKind::kReplicaStatusResponse;
  response.request_id = request.request_id;
  if (config_.status_fn) {
    response.replica = config_.status_fn();
  } else if (config_.replication != nullptr) {
    response.replica.role = 1;
    response.replica.head_seq = config_.replication->head_seq();
    response.replica.applied_seq = response.replica.head_seq;
  }
  respond(conn, response);
  // The heartbeat doubles as a nudge: if new events became durable while
  // the follower's buffer was full, resume the stream now.
  pump_connection(conn);
}

void Server::pump_replication() {
  for (auto& [id, conn] : connections_) {
    if (conn.subscribed && conn.fd >= 0) pump_connection(conn);
  }
}

void Server::pump_connection(Connection& conn) {
  if (!conn.subscribed || conn.fd < 0 || config_.replication == nullptr) return;
  for (;;) {
    const std::size_t pending = conn.write_buffer.size() - conn.write_offset;
    if (pending >= kReplPendingSoftCap) break;
    if (conn.streamed_seq >= config_.replication->head_seq()) break;
    WalSpan span =
        config_.replication->events_after(conn.streamed_seq, kReplSpanBytes);
    if (span.count == 0) break;
    Message batch;
    batch.kind = MessageKind::kWalBatch;
    batch.first_seq = span.first_seq;
    batch.last_seq = span.last_seq;
    batch.event_count = span.count;
    batch.has_digest = span.has_digest ? 1 : 0;
    batch.digest = span.digest;
    batch.text = std::move(span.records);
    respond(conn, batch);
    conn.streamed_seq = span.last_seq;
    FORUMCAST_COUNTER_ADD("replica.batches_shipped", 1);
    FORUMCAST_COUNTER_ADD("replica.events_shipped", span.count);
    if (conn.fd < 0) return;  // queue_bytes may close on write error
  }
  flush_writes(conn);
  if (conn.fd >= 0) update_epoll(conn);
}

void Server::broadcast_pending_swap() {
  std::vector<Message> notices;
  {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    notices.swap(pending_swaps_);
  }
  if (notices.empty()) return;
  for (const Message& notice : notices) {
    for (auto& [id, conn] : connections_) {
      if (!conn.subscribed || conn.fd < 0) continue;
      respond(conn, notice);
      flush_writes(conn);
      if (conn.fd >= 0) update_epoll(conn);
    }
    FORUMCAST_COUNTER_ADD("replica.swap_broadcasts", 1);
  }
}

void Server::update_epoll(Connection& conn) {
  epoll_event event{};
  event.events = EPOLLIN;
  if (conn.write_offset < conn.write_buffer.size()) event.events |= EPOLLOUT;
  event.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
}

void Server::close_connection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  close_fd(it->second.fd);
  connections_.erase(it);
}

void Server::drain_completions() {
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (auto& [conn_id, frame] : ready) {
    const auto it = connections_.find(conn_id);
    if (it == connections_.end() || it->second.fd < 0) {
      // The connection died while its request was in flight; the work is
      // complete (nothing was dropped), only the reply has no reader.
      FORUMCAST_COUNTER_ADD("net.responses_dropped", 1);
      continue;
    }
    Connection& conn = it->second;
    FORUMCAST_COUNTER_ADD("net.responses", 1);
    queue_bytes(conn, frame);
    flush_writes(conn);
    if (conn.fd < 0) {
      close_connection(conn_id);
    } else {
      update_epoll(conn);
    }
  }
}

void Server::export_gauges() {
  FORUMCAST_GAUGE_SET("net.open_connections", connections_.size());
  FORUMCAST_GAUGE_SET("net.queue_depth", batcher_->queue_depth());
  if (config_.replication != nullptr) {
    std::size_t followers = 0;
    std::uint64_t max_lag = 0;
    const std::uint64_t head = config_.replication->head_seq();
    for (const auto& [id, conn] : connections_) {
      if (!conn.subscribed || conn.fd < 0) continue;
      ++followers;
      const std::uint64_t lag =
          head > conn.follower_seq ? head - conn.follower_seq : 0;
      if (lag > max_lag) max_lag = lag;
    }
    FORUMCAST_GAUGE_SET("replica.followers", followers);
    FORUMCAST_GAUGE_SET("replica.max_lag_events", max_lag);
  }
}

}  // namespace forumcast::net
