// Epoll-based, non-blocking serving daemon (`forumcast serve --listen`).
//
// One event-loop thread owns every socket: it accepts connections, reads
// and parses frames, answers cheap requests inline (health, metrics),
// routes scoring work through the async MicroBatcher, and flushes
// responses. Batcher workers never touch a socket — completed frames come
// back over a locked completion list plus an eventfd wake, and the loop
// writes them out. Connections are addressed by a monotonically increasing
// id (not fd), so a completion for a connection that died mid-request is
// dropped instead of landing on a recycled descriptor.
//
// Backpressure has two layers: the micro-batcher's bounded queue refuses
// new scoring work with a typed kQueueFull error frame (admission
// control), and a connection whose outbound buffer exceeds the write
// ceiling is closed rather than buffered without bound.
//
// A malformed frame (bad CRC, oversized announced length, undecodable
// payload) gets one kMalformedFrame error frame and then the connection
// closes: framing is byte-exact, so there is no way to resynchronize a
// stream that has lost it.
//
// Shutdown (kShutdownRequest or stop()) drains: the listener closes, the
// batcher finishes every admitted request, the loop flushes every
// outbound byte it can, then run() returns. In-flight requests are never
// dropped — the same guarantee hot swapping gives.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "forum/dataset.hpp"
#include "net/batcher.hpp"
#include "net/protocol.hpp"
#include "net/replication.hpp"
#include "serve/batch_scorer.hpp"

namespace forumcast::net {

struct ServerConfig {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back via
  /// port()). The daemon binds the loopback interface only.
  std::uint16_t port = 0;
  /// Outbound-buffer ceiling per connection. A client that stops reading
  /// while pipelining past this is closed (slow-consumer protection).
  std::size_t max_write_buffer = 8u << 20;
  BatcherConfig batcher;

  /// Non-null turns on the replication listener: a second listening socket
  /// (replication_port; 0 = ephemeral, read back via replication_port())
  /// in the same event loop, whose connections may subscribe and receive
  /// the WAL stream. The source must outlive the server.
  ReplicationSource* replication = nullptr;
  std::uint16_t replication_port = 0;

  /// Answers kReplicaStatusRequest (any connection). Unset reports a
  /// standalone role with zeroed progress. Called on the event-loop
  /// thread; may take the serving state's reader lock.
  std::function<ReplicaStatusInfo()> status_fn;
};

class Server {
 public:
  /// The scorer (and the pipeline it serves) and the dataset must outlive
  /// the server. Binds and listens immediately; throws util::CheckError if
  /// the port is taken.
  Server(serve::BatchScorer& scorer, const forum::Dataset& dataset,
         ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral one when config.port was 0).
  std::uint16_t port() const { return port_; }
  /// The replication listener's bound port (0 when replication is off).
  std::uint16_t replication_port() const { return replication_port_; }

  /// Runs the event loop on the calling thread until a shutdown request
  /// arrives or stop() is called. Reentrant-safe: returns immediately if
  /// already stopped.
  void run();

  /// Requests a graceful drain from any thread (async-signal-safe: one
  /// atomic store plus an eventfd write).
  void stop() noexcept;

  serve::BatchScorer& scorer() { return scorer_; }

  /// Total requests admitted over the server's lifetime (all kinds).
  std::uint64_t requests_seen() const { return requests_seen_; }

  /// Tells the event loop new WAL records may be durable — subscribed
  /// followers get fresh kWalBatch frames on the next cycle. Safe from any
  /// thread (the primary's ingest thread calls it after every batch).
  void notify_replication() noexcept;

  /// Broadcasts a kModelSwap frame to every subscriber: the primary hot-
  /// swapped its serving bundle and followers should re-fetch + rebuild.
  /// Safe from any thread (the batcher's swap worker calls it).
  void note_model_swap(std::string bundle_path, std::uint64_t generation,
                       std::uint64_t swap_epoch);

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string read_buffer;
    std::string write_buffer;
    std::size_t write_offset = 0;
    bool close_after_flush = false;
    /// Accepted on the replication listener; exempt from the slow-consumer
    /// write ceiling (the stream is paced by pump_replication instead).
    bool replication = false;
    bool subscribed = false;
    std::uint64_t streamed_seq = 0;   ///< last seq queued to this follower
    std::uint64_t follower_seq = 0;   ///< last heartbeat-reported applied seq
  };

  void handle_accept(int listen_fd, bool replication);
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  /// Parses every complete frame in the read buffer; returns false when the
  /// connection must close (malformed stream).
  bool drain_frames(Connection& conn);
  void dispatch(Connection& conn, Message request);
  void respond(Connection& conn, const Message& response);
  void send_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                  std::string detail);
  void queue_bytes(Connection& conn, std::string_view bytes);
  void flush_writes(Connection& conn);
  void update_epoll(Connection& conn);
  void close_connection(std::uint64_t id);
  void drain_completions();
  void on_batch_complete(std::uint64_t conn_id, std::string frame);
  void export_gauges();
  void handle_subscribe(Connection& conn, const Message& request);
  void handle_heartbeat(Connection& conn, const Message& request);
  /// Ships pending WAL spans to every subscriber whose outbound buffer has
  /// room (per-connection pacing instead of the write ceiling).
  void pump_replication();
  void pump_connection(Connection& conn);
  void broadcast_pending_swap();

  serve::BatchScorer& scorer_;
  const forum::Dataset& dataset_;
  ServerConfig config_;
  std::uint16_t port_ = 0;
  std::uint16_t replication_port_ = 0;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int repl_listen_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions ready or stop requested

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> connections_;

  std::mutex completions_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> completions_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> replication_pending_{false};
  std::mutex swap_mutex_;
  std::vector<Message> pending_swaps_;
  bool draining_ = false;
  std::uint64_t requests_seen_ = 0;

  std::unique_ptr<MicroBatcher> batcher_;
};

}  // namespace forumcast::net
