#include "obs/build_info.hpp"

#include "obs/trace.hpp"  // FORUMCAST_OBS_ENABLED default

#if !defined(FORUMCAST_GIT_DESCRIBE)
#define FORUMCAST_GIT_DESCRIBE "unknown"
#endif

namespace forumcast::obs {

const char* git_describe() { return FORUMCAST_GIT_DESCRIBE; }

bool instrumentation_enabled() { return FORUMCAST_OBS_ENABLED != 0; }

}  // namespace forumcast::obs
