// Build provenance for run metadata (bench CSV sidecars, trace headers).
#pragma once

namespace forumcast::obs {

/// `git describe --always --dirty` captured at configure time, or
/// "unknown" when the build tree is not a git checkout.
const char* git_describe();

/// True when the build compiled instrumentation in (FORUMCAST_OBS=ON).
bool instrumentation_enabled();

}  // namespace forumcast::obs
