// Tiny JSON emission helpers shared by the metrics and trace exporters.
// Emission only — the library never needs to parse JSON, so there is no
// parser here (the tests carry their own minimal one to validate output).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace forumcast::obs::detail {

inline void append_json_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

inline void append_json_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.12g", value);
  // JSON has no inf/nan literals; clamp to null which every parser accepts.
  std::string_view text(buffer);
  if (text.find("inf") != std::string_view::npos ||
      text.find("nan") != std::string_view::npos) {
    out += "null";
  } else {
    out += buffer;
  }
}

}  // namespace forumcast::obs::detail
