#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/json.hpp"

namespace forumcast::obs {

namespace {

std::size_t thread_shard_index() {
  // Hash of the thread id, computed once per thread. Distinct threads land
  // on distinct shards with high probability, which is all the sharding
  // needs (a collision is a correctness no-op, just extra contention).
  static thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return index;
}

std::chrono::steady_clock::time_point process_epoch() {
  // Pinned the first time any registry is constructed — for the global
  // registry that is effectively process start, which is what dashboards
  // want from an uptime gauge.
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

double process_max_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss);  // bytes on Darwin
#else
    return static_cast<double>(usage.ru_maxrss) * 1024.0;  // KiB on Linux
#endif
  }
#endif
  return 0.0;
}

// Prometheus metric names are `[a-zA-Z_:][a-zA-Z0-9_:]*`; this codebase also
// uses dotted names throughout (test expectations depend on them surviving
// exposition verbatim), so `.` is kept and everything else outside the spec
// charset collapses to `_`. This guarantees a hostile registration can never
// smuggle a space, quote, or newline into the line-oriented text format.
std::string sanitize_metric_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '.';
    if (!ok) c = '_';
  }
  if (out.empty()) out = "_";
  return out;
}

// HELP text escaping per the exposition-format spec: backslash and newline.
void append_escaped_help(std::string& out, const std::string& help) {
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
}

// Label-value escaping: backslash, double-quote, and newline.
void append_escaped_label_value(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
}

void append_help_line(std::string& out,
                      const std::map<std::string, std::string>& help,
                      const std::string& raw_name,
                      const std::string& exposition_name) {
  const auto it = help.find(raw_name);
  if (it == help.end()) return;
  out += "# HELP " + exposition_name + " ";
  append_escaped_help(out, it->second);
  out.push_back('\n');
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram bounds must be strictly increasing");
  }
  for (Shard& shard : shards_) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double value) noexcept {
  Shard& shard = shards_[thread_shard_index() % kShards];
  // First bound >= value — the `le` bucket; values past the last bound land
  // in the +inf overflow slot.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < shard.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.counts) snap.total_count += c;
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (total_count == 0 || upper_bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total_count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Rank lands in bucket b. The overflow bucket has no finite upper edge,
    // so the best honest answer is the last finite bound (Prometheus
    // histogram_quantile does the same clamp).
    if (b >= upper_bounds.size()) return upper_bounds.back();
    const double upper = upper_bounds[b];
    // Prometheus convention: the first bucket interpolates from 0 when its
    // bound is positive (latency-shaped data); a non-positive first bound
    // has no usable lower edge, so return the bound itself.
    double lower;
    if (b == 0) {
      if (upper <= 0.0) return upper;
      lower = 0.0;
    } else {
      lower = upper_bounds[b - 1];
    }
    const std::uint64_t below = cumulative - counts[b];
    double fraction =
        counts[b] > 0
            ? (rank - static_cast<double>(below)) / static_cast<double>(counts[b])
            : 1.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    return lower + (upper - lower) * fraction;
  }
  return upper_bounds.back();
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& count : shard.counts) count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // immortal
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  process_epoch();  // pin the uptime epoch at construction
  gauges_["process.uptime_seconds"] = std::make_unique<Gauge>();
  gauges_["process.max_rss_bytes"] = std::make_unique<Gauge>();
  helps_["process.uptime_seconds"] =
      "Seconds since the metrics registry was created (steady clock).";
  helps_["process.max_rss_bytes"] =
      "Peak resident set size of the process in bytes, from getrusage.";
}

void MetricsRegistry::set_help(const std::string& name, std::string help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  helps_[name] = std::move(help);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  // Refresh the process self-metrics first so every snapshot is
  // self-contained; the syscall happens outside the registry lock.
  const double uptime = process_uptime_seconds();
  const double max_rss = process_max_rss_bytes();

  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = gauges_.find("process.uptime_seconds"); it != gauges_.end()) {
    it->second->set(uptime);
  }
  if (auto it = gauges_.find("process.max_rss_bytes"); it != gauges_.end()) {
    it->second->set(max_rss);
  }
  snap.help = helps_;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->snapshot());
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsRegistry::Snapshot::to_json() const {
  using detail::append_json_escaped;
  using detail::append_json_number;
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_escaped(out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_escaped(out, name);
    out.push_back(':');
    append_json_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_escaped(out, name);
    out += ":{\"upper_bounds\":[";
    for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      append_json_number(out, hist.upper_bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(hist.counts[i]);
    }
    out += "],\"count\":" + std::to_string(hist.total_count) + ",\"sum\":";
    append_json_number(out, hist.sum);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::Snapshot::to_text() const {
  std::string out;
  char buffer[64];
  for (const auto& [name, value] : counters) {
    const std::string exposed = sanitize_metric_name(name);
    append_help_line(out, help, name, exposed);
    out += exposed + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string exposed = sanitize_metric_name(name);
    append_help_line(out, help, name, exposed);
    std::snprintf(buffer, sizeof buffer, "%.12g", value);
    out += exposed + " " + buffer + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    const std::string exposed = sanitize_metric_name(name);
    append_help_line(out, help, name, exposed);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      cumulative += hist.counts[b];
      out += exposed + "_bucket{le=\"";
      if (b < hist.upper_bounds.size()) {
        std::snprintf(buffer, sizeof buffer, "%.12g", hist.upper_bounds[b]);
        append_escaped_label_value(out, buffer);
      } else {
        out += "+Inf";
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    std::snprintf(buffer, sizeof buffer, "%.12g", hist.sum);
    out += exposed + "_sum " + buffer + "\n";
    out += exposed + "_count " + std::to_string(hist.total_count) + "\n";
  }
  return out;
}

}  // namespace forumcast::obs
