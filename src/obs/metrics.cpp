#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"

namespace forumcast::obs {

namespace {

std::size_t thread_shard_index() {
  // Hash of the thread id, computed once per thread. Distinct threads land
  // on distinct shards with high probability, which is all the sharding
  // needs (a collision is a correctness no-op, just extra contention).
  static thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return index;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram bounds must be strictly increasing");
  }
  for (Shard& shard : shards_) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double value) noexcept {
  Shard& shard = shards_[thread_shard_index() % kShards];
  // First bound >= value — the `le` bucket; values past the last bound land
  // in the +inf overflow slot.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < shard.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.counts) snap.total_count += c;
  return snap;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& count : shard.counts) count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // immortal
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->snapshot());
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsRegistry::Snapshot::to_json() const {
  using detail::append_json_escaped;
  using detail::append_json_number;
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_escaped(out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_escaped(out, name);
    out.push_back(':');
    append_json_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_escaped(out, name);
    out += ":{\"upper_bounds\":[";
    for (std::size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      append_json_number(out, hist.upper_bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(hist.counts[i]);
    }
    out += "],\"count\":" + std::to_string(hist.total_count) + ",\"sum\":";
    append_json_number(out, hist.sum);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::Snapshot::to_text() const {
  std::string out;
  char buffer[64];
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buffer, sizeof buffer, "%.12g", value);
    out += name + " " + buffer + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      cumulative += hist.counts[b];
      if (b < hist.upper_bounds.size()) {
        std::snprintf(buffer, sizeof buffer, "%.12g", hist.upper_bounds[b]);
        out += name + "_bucket{le=\"" + buffer + "\"} ";
      } else {
        out += name + "_bucket{le=\"+Inf\"} ";
      }
      out += std::to_string(cumulative) + "\n";
    }
    std::snprintf(buffer, sizeof buffer, "%.12g", hist.sum);
    out += name + "_sum " + buffer + "\n";
    out += name + "_count " + std::to_string(hist.total_count) + "\n";
  }
  return out;
}

}  // namespace forumcast::obs
