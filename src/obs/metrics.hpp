// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with lock-free hot paths.
//
// Design goals, in order: (1) an increment on a hot path is one relaxed
// atomic RMW — cheap enough to leave compiled in everywhere; (2) snapshots
// are consistent enough for dashboards (each metric is read atomically, the
// set is not a global cut); (3) references returned by the registry are
// stable for the process lifetime, so call sites cache them in a
// function-local static and never touch the name map again.
//
// Histograms shard their buckets by thread (a fixed pool of shards indexed
// by a hash of the caller's thread id), so concurrent observes on different
// threads touch different cache lines; shards are merged on snapshot().
// Bucket semantics follow the Prometheus `le` convention: bucket i counts
// values v with bounds[i-1] < v <= bounds[i] (lower-exclusive,
// upper-INCLUSIVE), plus an implicit +inf overflow bucket.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace forumcast::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty; an implicit
  /// +inf bucket is appended for values above the last bound.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  struct Snapshot {
    std::vector<double> upper_bounds;    ///< finite bounds, as configured
    std::vector<std::uint64_t> counts;   ///< upper_bounds.size() + 1 entries
    std::uint64_t total_count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  void reset() noexcept;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
};

/// Named metrics, created on first use and immortal thereafter. Thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is consulted only when `name` is first registered.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    std::string to_json() const;
    /// Prometheus-style text exposition (`name value`, `name_bucket{le=..}`).
    std::string to_text() const;
  };
  Snapshot snapshot() const;

  /// Zeroes every registered metric (registrations survive). Test/bench use.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace forumcast::obs
