// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with lock-free hot paths.
//
// Design goals, in order: (1) an increment on a hot path is one relaxed
// atomic RMW — cheap enough to leave compiled in everywhere; (2) snapshots
// are consistent enough for dashboards (each metric is read atomically, the
// set is not a global cut); (3) references returned by the registry are
// stable for the process lifetime, so call sites cache them in a
// function-local static and never touch the name map again.
//
// Histograms shard their buckets by thread (a fixed pool of shards indexed
// by a hash of the caller's thread id), so concurrent observes on different
// threads touch different cache lines; shards are merged on snapshot().
// Bucket semantics follow the Prometheus `le` convention: bucket i counts
// values v with bounds[i-1] < v <= bounds[i] (lower-exclusive,
// upper-INCLUSIVE), plus an implicit +inf overflow bucket.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace forumcast::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty; an implicit
  /// +inf bucket is appended for values above the last bound.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  struct Snapshot {
    std::vector<double> upper_bounds;    ///< finite bounds, as configured
    std::vector<std::uint64_t> counts;   ///< upper_bounds.size() + 1 entries
    std::uint64_t total_count = 0;
    double sum = 0.0;

    /// Prometheus-style histogram_quantile: find the bucket holding the
    /// q-th observation (q in [0, 1]) and interpolate linearly inside it.
    /// The first bucket interpolates from 0 when its bound is positive
    /// (the Prometheus convention for latency-shaped data); a rank landing
    /// in the +inf overflow bucket is clamped to the last finite bound.
    /// Returns 0 for an empty histogram.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

  /// Convenience: snapshot().quantile(q) — merges the shards, so prefer the
  /// Snapshot form when reading several quantiles of one histogram.
  double quantile(double q) const { return snapshot().quantile(q); }

  const std::vector<double>& upper_bounds() const { return bounds_; }
  void reset() noexcept;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
};

/// Named metrics, created on first use and immortal thereafter. Thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Pre-registers the process self-metrics (`process.uptime_seconds`,
  /// `process.max_rss_bytes`) so every snapshot carries them.
  MetricsRegistry();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is consulted only when `name` is first registered.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Attaches exposition help text to a metric name. Emitted as a `# HELP`
  /// line by Snapshot::to_text() with `\` and newlines escaped per the
  /// Prometheus exposition-format spec.
  void set_help(const std::string& name, std::string help);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    std::map<std::string, std::string> help;

    std::string to_json() const;
    /// Prometheus-style text exposition (`name value`, `name_bucket{le=..}`,
    /// `# HELP` lines where help text was registered). Metric names are
    /// sanitized to the spec's charset (plus the `.` this codebase uses)
    /// and HELP strings / label values are backslash-escaped, so a hostile
    /// metric name can never break the line-oriented framing.
    std::string to_text() const;
  };
  /// Also refreshes the process self-metrics (`process.uptime_seconds`,
  /// `process.max_rss_bytes` via getrusage) so every snapshot is
  /// self-contained for dashboards.
  Snapshot snapshot() const;

  /// Zeroes every registered metric (registrations survive). Test/bench use.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> helps_;
};

}  // namespace forumcast::obs
