#include "obs/monitor/drift.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace forumcast::obs::monitor {

void DriftDetector::set_baseline(features::FeatureBaseline baseline) {
  baseline_ = std::move(baseline);
  live_.assign(baseline_.dimension() * features::FeatureBaseline::kBins, 0);
  samples_ = 0;
}

void DriftDetector::observe(std::span<const double> row) {
  if (baseline_.empty()) return;
  FORUMCAST_CHECK_MSG(row.size() == baseline_.dimension(),
                      "DriftDetector: feature vector has "
                          << row.size() << " columns, baseline expects "
                          << baseline_.dimension());
  constexpr std::size_t kBins = features::FeatureBaseline::kBins;
  for (std::size_t f = 0; f < row.size(); ++f) {
    ++live_[f * kBins + baseline_.bin(f, row[f])];
  }
  ++samples_;
}

double DriftDetector::psi_between(std::span<const std::uint64_t> expected,
                                  std::span<const std::uint64_t> actual) {
  FORUMCAST_CHECK(expected.size() == actual.size() && !expected.empty());
  std::uint64_t expected_total = 0, actual_total = 0;
  for (const std::uint64_t c : expected) expected_total += c;
  for (const std::uint64_t c : actual) actual_total += c;
  if (expected_total == 0 || actual_total == 0) return 0.0;

  // ε-smoothing keeps ln(p/q) finite when a bin is empty on one side; 1e-4
  // caps a fully-vacated bin's contribution around (p)·ln(p/1e-4) instead
  // of infinity, matching standard PSI practice.
  constexpr double kEpsilon = 1e-4;
  double psi = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double p = std::max(
        static_cast<double>(expected[i]) / static_cast<double>(expected_total),
        kEpsilon);
    const double q = std::max(
        static_cast<double>(actual[i]) / static_cast<double>(actual_total),
        kEpsilon);
    psi += (p - q) * std::log(p / q);
  }
  return psi;
}

std::optional<double> DriftDetector::psi(std::size_t column) const {
  if (baseline_.empty() || samples_ < min_samples_) return std::nullopt;
  constexpr std::size_t kBins = features::FeatureBaseline::kBins;
  const auto& hist = baseline_.feature(column);
  return psi_between(hist.counts,
                     std::span<const std::uint64_t>(
                         live_.data() + column * kBins, kBins));
}

std::optional<double> DriftDetector::psi_max() const {
  if (baseline_.empty() || samples_ < min_samples_) return std::nullopt;
  double max_psi = 0.0;
  for (std::size_t f = 0; f < baseline_.dimension(); ++f) {
    max_psi = std::max(max_psi, *psi(f));
  }
  return max_psi;
}

std::vector<double> DriftDetector::per_column_psi() const {
  std::vector<double> out;
  if (baseline_.empty() || samples_ < min_samples_) return out;
  out.reserve(baseline_.dimension());
  for (std::size_t f = 0; f < baseline_.dimension(); ++f) {
    out.push_back(*psi(f));
  }
  return out;
}

void DriftDetector::reset_window() {
  std::fill(live_.begin(), live_.end(), 0);
  samples_ = 0;
}

}  // namespace forumcast::obs::monitor
