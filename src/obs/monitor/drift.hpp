// Feature drift detection: PSI of serving-time feature vectors against the
// fit-time FeatureBaseline persisted in the model bundle.
//
// PSI (population stability index) per feature column:
//   PSI = Σ_bins (p_i − q_i) · ln(p_i / q_i)
// where p is the fit-time bin distribution and q the serving-time one, both
// ε-smoothed so an empty bin contributes a large-but-finite term instead of
// infinity. The classic reading: PSI < 0.1 stable, 0.1–0.25 moderate shift,
// > 0.25 the model needs a refit — which is where the default SLO threshold
// comes from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "features/baseline.hpp"

namespace forumcast::obs::monitor {

class DriftDetector {
 public:
  /// `min_samples`: serving-side observations required before any PSI is
  /// reported — below that the live histogram is noise, not a distribution.
  explicit DriftDetector(std::size_t min_samples = 50)
      : min_samples_(min_samples) {}

  /// Installs the fit-time reference and clears the live window. Called on
  /// attach and again after every hot swap (the new model carries its own
  /// baseline).
  void set_baseline(features::FeatureBaseline baseline);
  bool has_baseline() const { return !baseline_.empty(); }
  const features::FeatureBaseline& baseline() const { return baseline_; }

  /// Folds one serving-time feature vector into the live histograms. The
  /// row dimension must match the baseline's.
  void observe(std::span<const double> row);

  std::uint64_t samples() const { return samples_; }

  /// PSI for one feature column; nullopt without a baseline or below
  /// min_samples.
  std::optional<double> psi(std::size_t column) const;

  /// Max PSI across all columns — the drift headline the SLO watches.
  std::optional<double> psi_max() const;

  /// Per-column PSI vector (empty under the same conditions psi() is null).
  std::vector<double> per_column_psi() const;

  /// Drops the live window, keeping the baseline: called after a refit so
  /// pre-swap traffic doesn't indict the new model.
  void reset_window();

  /// Smoothed PSI between two count histograms of equal size (exposed for
  /// tests).
  static double psi_between(std::span<const std::uint64_t> expected,
                            std::span<const std::uint64_t> actual);

 private:
  std::size_t min_samples_;
  features::FeatureBaseline baseline_;
  /// live_[column * kBins + bin]
  std::vector<std::uint64_t> live_;
  std::uint64_t samples_ = 0;
};

}  // namespace forumcast::obs::monitor
