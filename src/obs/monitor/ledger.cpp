#include "obs/monitor/ledger.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace forumcast::obs::monitor {

PredictionLedger::PredictionLedger(std::size_t capacity) {
  FORUMCAST_CHECK_MSG(capacity > 0, "PredictionLedger capacity must be > 0");
  ring_.resize(capacity);
}

void PredictionLedger::record(const LedgerEntry& entry) {
  Slot& slot = ring_[head_];
  if (slot.live) {
    ++evicted_;
    --live_;
  }
  ++recorded_;
  slot.entry = entry;
  slot.stamp = recorded_;
  slot.live = true;
  ++live_;
  by_question_[entry.question].emplace_back(head_, recorded_);
  ++indexed_;
  head_ = (head_ + 1) % ring_.size();
  if (indexed_ > 2 * ring_.size()) compact_index();
}

PredictionLedger::Resolution PredictionLedger::resolve_question(
    forum::QuestionId question, forum::UserId answerer) {
  Resolution resolution;
  const auto it = by_question_.find(question);
  if (it == by_question_.end()) return resolution;

  // Most recent entry per user wins; stamps are monotone, so iterating in
  // record order and overwriting keeps the freshest claim.
  std::unordered_map<forum::UserId, LedgerEntry> latest;
  for (const auto& [index, stamp] : it->second) {
    Slot& slot = ring_[index];
    if (!slot.live || slot.stamp != stamp) continue;  // recycled slot
    latest[slot.entry.user] = slot.entry;
    slot.live = false;
    --live_;
  }
  indexed_ -= it->second.size();
  by_question_.erase(it);

  resolution.entries.reserve(latest.size());
  for (auto& [user, entry] : latest) {
    if (user == answerer) {
      resolution.positive_index =
          static_cast<std::ptrdiff_t>(resolution.entries.size());
    }
    resolution.entries.push_back(std::move(entry));
  }
  return resolution;
}

void PredictionLedger::compact_index() {
  for (auto it = by_question_.begin(); it != by_question_.end();) {
    auto& pairs = it->second;
    std::erase_if(pairs, [this](const std::pair<std::size_t, std::uint64_t>& p) {
      const Slot& slot = ring_[p.first];
      return !slot.live || slot.stamp != p.second;
    });
    it = pairs.empty() ? by_question_.erase(it) : std::next(it);
  }
  indexed_ = 0;
  for (const auto& [q, pairs] : by_question_) indexed_ += pairs.size();
}

}  // namespace forumcast::obs::monitor
