// Prediction ledger: the bounded memory of what the model claimed.
//
// Every served prediction — batch or scalar path — is recorded here as one
// LedgerEntry; when ground truth arrives on the event stream (a NewAnswer),
// the label-join resolves the question's pending entries into labeled
// outcomes. The ring is bounded: a prediction whose outcome never arrives
// before the slot is recycled is simply evicted (counted, so the join rate
// is observable), which is exactly the behavior a production monitor needs
// under unbounded serving traffic.
//
// Not thread-safe by itself; QualityMonitor serializes access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "forum/post.hpp"

namespace forumcast::obs::monitor {

struct LedgerEntry {
  forum::QuestionId question = 0;
  forum::UserId user = 0;
  double answer_probability = 0.0;  ///< predicted â_{u,q}
  double votes = 0.0;               ///< predicted v̂_{u,q}
  double delay_hours = 0.0;         ///< predicted r̂_{u,q}
  std::uint64_t model_epoch = 0;    ///< serving sync token at record time
  double record_time_hours = 0.0;   ///< event-time clock when recorded
};

class PredictionLedger {
 public:
  explicit PredictionLedger(std::size_t capacity);

  /// Records one prediction, overwriting the oldest live slot when full.
  void record(const LedgerEntry& entry);

  /// First-answer label-join: consumes every pending entry for `question`
  /// and returns them with the answerer's entry (if any) at
  /// `positive_index`. When the same user was scored for the question more
  /// than once (periodic re-scoring), only the most recent entry per user is
  /// returned — the freshest claim is the one the model should be judged on.
  struct Resolution {
    std::vector<LedgerEntry> entries;
    std::ptrdiff_t positive_index = -1;  ///< index into entries, -1 = none
  };
  Resolution resolve_question(forum::QuestionId question,
                              forum::UserId answerer);

  std::size_t pending() const { return live_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t capacity() const { return ring_.size(); }

 private:
  struct Slot {
    LedgerEntry entry;
    std::uint64_t stamp = 0;  ///< recorded_ value at write; 0 = never used
    bool live = false;
  };

  void compact_index();

  std::vector<Slot> ring_;
  std::size_t head_ = 0;
  std::size_t live_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
  /// question → (slot index, stamp) of every entry recorded for it. Entries
  /// go stale when their slot is recycled; stale pairs are skipped on
  /// resolve and swept wholesale when the index outgrows the ring.
  std::unordered_map<forum::QuestionId,
                     std::vector<std::pair<std::size_t, std::uint64_t>>>
      by_question_;
  std::size_t indexed_ = 0;
};

}  // namespace forumcast::obs::monitor
