#include "obs/monitor/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "features/feature_layout.hpp"
#include "util/check.hpp"

namespace forumcast::obs::monitor {

namespace {

constexpr bool kEnabled = FORUMCAST_OBS_ENABLED != 0;

std::uint64_t watch_key(forum::QuestionId q, forum::UserId u) {
  return (static_cast<std::uint64_t>(q) << 32) | u;
}

void append_metric(std::ostringstream& out, const char* label,
                   const std::optional<double>& value,
                   const char* absent = "n/a (still warming up)") {
  out << "  " << label;
  if (value) {
    out << *value;
  } else {
    out << absent;
  }
  out << "\n";
}

}  // namespace

QualityMonitor::QualityMonitor(MonitorConfig config)
    : config_(config),
      ledger_(config.ledger_capacity),
      reservoir_(config.reservoir_capacity, config.seed),
      vote_errors_(config.window),
      timing_loglik_(config.window),
      drift_(config.drift_min_samples),
      latency_hist_({0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0}) {
  slo_.add_rule({.name = "auc_min",
                 .metric = "auc",
                 .lower_bound = true,
                 .threshold = config_.slo_auc_min,
                 .breach_after = config_.slo_breach_after,
                 .refit_trigger = true});
  slo_.add_rule({.name = "psi_max",
                 .metric = "psi_max",
                 .lower_bound = false,
                 .threshold = config_.slo_psi_max,
                 .breach_after = config_.slo_breach_after,
                 .refit_trigger = true});
  slo_.add_rule({.name = "p99_score_latency_ms",
                 .metric = "p99_score_latency_ms",
                 .lower_bound = false,
                 .threshold = config_.slo_p99_latency_ms,
                 .breach_after = config_.slo_breach_after,
                 .refit_trigger = false});
}

void QualityMonitor::set_baseline(features::FeatureBaseline baseline) {
  const std::lock_guard<std::mutex> lock(mutex_);
  drift_.set_baseline(std::move(baseline));
}

void QualityMonitor::set_feature_fn(core::FeatureFn fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  feature_fn_ = std::move(fn);
}

void QualityMonitor::advance_clock_locked(double event_time_hours) {
  clock_hours_ = std::max(clock_hours_, event_time_hours);
  if (!last_eval_hours_) last_eval_hours_ = clock_hours_;
}

void QualityMonitor::record(forum::UserId user, forum::QuestionId question,
                            const core::Prediction& prediction,
                            std::uint64_t model_epoch) {
  if constexpr (!kEnabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  ledger_.record({.question = question,
                  .user = user,
                  .answer_probability = prediction.answer_probability,
                  .votes = prediction.votes,
                  .delay_hours = prediction.delay_hours,
                  .model_epoch = model_epoch,
                  .record_time_hours = clock_hours_});
  if (feature_fn_ && drift_.has_baseline() &&
      ledger_.recorded() % config_.drift_sample_every == 0) {
    drift_.observe(feature_fn_(user, question));
  }
}

void QualityMonitor::record_batch(forum::QuestionId question,
                                  std::span<const forum::UserId> users,
                                  std::span<const core::Prediction> predictions,
                                  std::uint64_t model_epoch) {
  if constexpr (!kEnabled) return;
  FORUMCAST_CHECK(users.size() == predictions.size());
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < users.size(); ++i) {
    ledger_.record({.question = question,
                    .user = users[i],
                    .answer_probability = predictions[i].answer_probability,
                    .votes = predictions[i].votes,
                    .delay_hours = predictions[i].delay_hours,
                    .model_epoch = model_epoch,
                    .record_time_hours = clock_hours_});
    if (feature_fn_ && drift_.has_baseline() &&
        ledger_.recorded() % config_.drift_sample_every == 0) {
      drift_.observe(feature_fn_(users[i], question));
    }
  }
}

void QualityMonitor::observe_score_latency(double milliseconds,
                                           std::size_t pairs) {
  if constexpr (!kEnabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  latency_hist_.observe(milliseconds);
  (void)pairs;
}

void QualityMonitor::observe_question(forum::QuestionId question,
                                      double event_time_hours) {
  if constexpr (!kEnabled) return;
  (void)question;
  const std::lock_guard<std::mutex> lock(mutex_);
  advance_clock_locked(event_time_hours);
}

void QualityMonitor::observe_answer(forum::QuestionId question,
                                    forum::UserId answerer,
                                    double realized_delay_hours,
                                    double event_time_hours) {
  if constexpr (!kEnabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  advance_clock_locked(event_time_hours);

  const PredictionLedger::Resolution resolution =
      ledger_.resolve_question(question, answerer);
  if (resolution.entries.empty()) return;
  outcomes_joined_ += resolution.entries.size();

  for (std::size_t i = 0; i < resolution.entries.size(); ++i) {
    const LedgerEntry& entry = resolution.entries[i];
    const int label =
        static_cast<std::ptrdiff_t>(i) == resolution.positive_index ? 1 : 0;
    reservoir_.add(entry.answer_probability, label);
    calibration_.add(entry.answer_probability, label);
    if (label == 1) {
      timing_loglik_.add(
          timing_log_likelihood(entry.delay_hours, realized_delay_hours));
      // Watch the answer for vote outcomes; FIFO-bounded.
      const std::uint64_t key = watch_key(question, answerer);
      if (vote_watch_.emplace(key, entry.votes).second) {
        vote_watch_order_.push_back(key);
        if (vote_watch_order_.size() > config_.vote_watch_capacity) {
          vote_watch_.erase(vote_watch_order_.front());
          vote_watch_order_.pop_front();
        }
      }
    }
  }
}

void QualityMonitor::observe_vote(forum::QuestionId question,
                                  forum::UserId answer_creator,
                                  double net_votes, double event_time_hours) {
  if constexpr (!kEnabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  advance_clock_locked(event_time_hours);
  const auto it = vote_watch_.find(watch_key(question, answer_creator));
  if (it == vote_watch_.end()) return;
  // Each vote event re-samples the answer against its current net votes, so
  // the window tracks the freshest realized value without waiting for a
  // "final" count that never formally arrives.
  const double error = it->second - net_votes;
  vote_errors_.add(error * error);
}

void QualityMonitor::on_model_swap(features::FeatureBaseline baseline) {
  if constexpr (!kEnabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  drift_.set_baseline(std::move(baseline));
}

bool QualityMonitor::maybe_evaluate(double now_hours) {
  if constexpr (!kEnabled) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  advance_clock_locked(now_hours);
  if (clock_hours_ - *last_eval_hours_ < config_.eval_interval_hours) {
    return false;
  }
  last_report_ = build_report_locked(clock_hours_);
  return true;
}

MonitorReport QualityMonitor::evaluate_now(double now_hours) {
  if constexpr (!kEnabled) return {};
  const std::lock_guard<std::mutex> lock(mutex_);
  advance_clock_locked(now_hours);
  last_report_ = build_report_locked(clock_hours_);
  return last_report_;
}

MonitorReport QualityMonitor::last_report() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_report_;
}

std::uint64_t QualityMonitor::auc_reservoir_digest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reservoir_.digest();
}

MonitorReport QualityMonitor::build_report_locked(double now_hours) {
  last_eval_hours_ = now_hours;

  MonitorReport report;
  report.event_time_hours = now_hours;
  report.predictions_recorded = ledger_.recorded();
  report.outcomes_joined = outcomes_joined_;
  report.ledger_pending = ledger_.pending();
  report.ledger_evicted = ledger_.evicted();
  report.drift_samples = drift_.samples();
  report.auc = reservoir_.auc();
  report.vote_rmse = vote_errors_.root_mean();
  report.timing_loglik = timing_loglik_.mean();
  report.calibration_ece = calibration_.ece();
  report.psi_max = drift_.psi_max();

  // Per-feature PSI: max over each paper feature's columns, so the two
  // K-wide topic distributions collapse to one number each.
  const std::vector<double> column_psi = drift_.per_column_psi();
  if (!column_psi.empty() &&
      column_psi.size() >= 18) {  // dimension = 18 + 2K
    const std::size_t num_topics = (column_psi.size() - 18) / 2;
    const features::FeatureLayout layout(num_topics);
    if (layout.dimension() == column_psi.size()) {
      for (const features::FeatureId id : features::all_features()) {
        double feature_max = 0.0;
        const std::size_t offset = layout.offset(id);
        for (std::size_t c = 0; c < layout.width(id); ++c) {
          feature_max = std::max(feature_max, column_psi[offset + c]);
        }
        report.feature_psi.emplace_back(features::feature_name(id),
                                        feature_max);
      }
    }
  }

  const Histogram::Snapshot latency = latency_hist_.snapshot();
  if (latency.total_count > 0) {
    report.p50_latency_ms = latency.quantile(0.50);
    report.p99_latency_ms = latency.quantile(0.99);
  }

  std::map<std::string, double> values;
  if (report.auc) values["auc"] = *report.auc;
  if (report.vote_rmse) values["vote_rmse"] = *report.vote_rmse;
  if (report.timing_loglik) values["timing_loglik"] = *report.timing_loglik;
  if (report.calibration_ece) {
    values["calibration_ece"] = *report.calibration_ece;
  }
  if (report.psi_max) values["psi_max"] = *report.psi_max;
  if (report.p99_latency_ms) {
    values["p99_score_latency_ms"] = *report.p99_latency_ms;
  }
  slo_.evaluate(values);
  report.slos = slo_.statuses();
  report.refit_recommended = slo_.refit_recommended();
  report.evaluations = slo_.evaluations();

  export_metrics_locked(report);
  return report;
}

void QualityMonitor::export_metrics_locked(const MonitorReport& report) {
  MetricsRegistry& registry = MetricsRegistry::global();
  const auto set = [&registry](const char* name,
                               const std::optional<double>& value) {
    if (value) registry.gauge(name).set(*value);
  };
  set("monitor.auc", report.auc);
  set("monitor.vote_rmse", report.vote_rmse);
  set("monitor.timing_loglik", report.timing_loglik);
  set("monitor.calibration_ece", report.calibration_ece);
  set("monitor.psi_max", report.psi_max);
  set("monitor.p50_score_latency_ms", report.p50_latency_ms);
  set("monitor.p99_score_latency_ms", report.p99_latency_ms);
  for (const auto& [name, psi] : report.feature_psi) {
    registry.gauge("monitor.psi." + name).set(psi);
  }
  for (const SloStatus& status : report.slos) {
    registry.gauge("monitor.slo." + status.rule.name)
        .set(static_cast<double>(status.state));
  }
  registry.gauge("monitor.refit_recommended")
      .set(report.refit_recommended ? 1.0 : 0.0);
  registry.gauge("monitor.ledger_pending")
      .set(static_cast<double>(report.ledger_pending));
  registry.gauge("monitor.predictions_recorded")
      .set(static_cast<double>(report.predictions_recorded));
  registry.gauge("monitor.outcomes_joined")
      .set(static_cast<double>(report.outcomes_joined));
  registry.set_help("monitor.refit_recommended",
                    "1 when a refit-trigger SLO (auc_min, psi_max) is in "
                    "breach: the designed trip wire for the periodic "
                    "refit-plus-hot-swap loop.");
}

std::string MonitorReport::to_string() const {
  std::ostringstream out;
  out << "model-quality monitor @ t=" << event_time_hours << "h ("
      << evaluations << " evaluations)\n";
  out << "  predictions recorded:   " << predictions_recorded << " ("
      << ledger_pending << " pending, " << ledger_evicted << " evicted)\n";
  out << "  outcomes joined:        " << outcomes_joined << "\n";
  append_metric(out, "rolling AUC:            ", auc);
  append_metric(out, "vote RMSE:              ", vote_rmse);
  append_metric(out, "timing log-likelihood:  ", timing_loglik);
  append_metric(out, "calibration ECE:        ", calibration_ece);
  if (psi_max) {
    out << "  feature drift (PSI over " << drift_samples << " samples): max "
        << *psi_max << "\n";
    // Only the movers: a 20-line all-zeros table helps nobody.
    for (const auto& [name, psi] : feature_psi) {
      if (psi >= 0.1) out << "    " << name << ": " << psi << "\n";
    }
  } else {
    out << "  feature drift:          n/a (" << drift_samples
        << " samples, or no baseline)\n";
  }
  if (p99_latency_ms) {
    out << "  score latency:          p50 " << *p50_latency_ms << " ms, p99 "
        << *p99_latency_ms << " ms\n";
  }
  out << "  SLOs:\n";
  for (const SloStatus& status : slos) {
    out << "    " << status.rule.name << " ("
        << (status.rule.lower_bound ? ">= " : "<= ")
        << status.rule.threshold << "): " << slo_state_name(status.state);
    if (status.last_value) out << " [value " << *status.last_value << "]";
    out << "\n";
  }
  out << "  refit recommended:      " << (refit_recommended ? "YES" : "no")
      << "\n";
  return std::move(out).str();
}

}  // namespace forumcast::obs::monitor
