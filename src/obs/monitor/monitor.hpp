// QualityMonitor: the live model-quality layer tying the pieces together.
//
//   serving path ──record()/record_batch()──▶ PredictionLedger
//   event stream ──observe_answer()/observe_vote()──▶ label-join ──▶
//       ScoreReservoir (AUC) · CalibrationHistogram (ECE) ·
//       RollingWindow (vote RMSE, timing log-likelihood)
//   serving features (sampled) ──▶ DriftDetector (PSI vs fit-time baseline)
//   event-time timer ──maybe_evaluate()──▶ SloEngine ──▶ gauges + report
//
// The monitor sits below serve/ and stream/ in the layering: BatchScorer and
// LiveState call *into* it with plain ids, predictions, and outcome facts —
// it never touches their types, so core/serve/stream stay free of monitoring
// concerns beyond a pointer and a few calls.
//
// Label-join policy (first answer): when question q receives its first
// observed answer by user a, every pending ledger entry for q resolves at
// once — a's entry as the positive (with the realized delay scoring the
// timing model), everyone else's as negatives. Resolved positives are then
// watched for Vote events, each of which contributes a (predicted, realized
// net votes) RMSE sample.
//
// Thread safety: every public method locks one internal mutex. The serving
// hot path pays that lock plus O(users) ring writes per batch — measured
// against the < 5% ingest-overhead budget by bench/monitor.cpp.
//
// FORUMCAST_OBS=OFF: record/observe/evaluate return immediately (the
// acceptance-criteria no-op form); the pure components above stay fully
// functional for their own tests.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "features/baseline.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor/drift.hpp"
#include "obs/monitor/ledger.hpp"
#include "obs/monitor/quality.hpp"
#include "obs/monitor/slo.hpp"

namespace forumcast::obs::monitor {

struct MonitorConfig {
  std::size_t ledger_capacity = 4096;
  std::size_t reservoir_capacity = 2048;
  /// Rolling-window sample count for vote RMSE and timing log-likelihood.
  std::size_t window = 512;
  /// Every Nth recorded prediction has its feature vector folded into the
  /// drift detector (feature extraction costs ~the prediction itself, so
  /// sampling keeps the monitor inside its overhead budget).
  std::size_t drift_sample_every = 4;
  std::size_t drift_min_samples = 50;
  /// Resolved positives watched for vote outcomes (FIFO-bounded).
  std::size_t vote_watch_capacity = 1024;
  /// Event-time hours between SLO evaluations.
  double eval_interval_hours = 1.0;
  std::uint64_t seed = 2026;

  // Default SLO thresholds (CLI flags override).
  double slo_auc_min = 0.80;
  double slo_psi_max = 0.25;
  double slo_p99_latency_ms = 5.0;
  int slo_breach_after = 3;
};

struct MonitorReport {
  double event_time_hours = 0.0;
  std::size_t evaluations = 0;
  std::uint64_t predictions_recorded = 0;
  std::uint64_t outcomes_joined = 0;
  std::size_t ledger_pending = 0;
  std::uint64_t ledger_evicted = 0;
  std::uint64_t drift_samples = 0;
  std::optional<double> auc;
  std::optional<double> vote_rmse;
  std::optional<double> timing_loglik;
  std::optional<double> calibration_ece;
  std::optional<double> psi_max;
  /// Per-feature PSI, one entry per paper feature (max over its columns),
  /// named with the paper symbol ("a_u", "d_u", …).
  std::vector<std::pair<std::string, double>> feature_psi;
  std::optional<double> p50_latency_ms;
  std::optional<double> p99_latency_ms;
  std::vector<SloStatus> slos;
  bool refit_recommended = false;

  /// Human-readable summary for the CLI `ingest` report.
  std::string to_string() const;
};

class QualityMonitor {
 public:
  explicit QualityMonitor(MonitorConfig config = {});

  /// Installs the fit-time drift reference (from
  /// ForecastPipeline::feature_baseline()) and resets the live drift window.
  void set_baseline(features::FeatureBaseline baseline);

  /// Feature source for drift sampling, typically
  ///   [&p](u, q) { return p.extractor().features(u, q); }
  /// Called on the serving thread under the monitor lock, every
  /// drift_sample_every-th recorded prediction.
  void set_feature_fn(core::FeatureFn fn);

  /// Ledger one scalar-path prediction.
  void record(forum::UserId user, forum::QuestionId question,
              const core::Prediction& prediction, std::uint64_t model_epoch);

  /// Ledger one batch (BatchScorer::score output), entries in user order —
  /// insertion order into the AUC reservoir is the call order, independent
  /// of how many threads scored the batch internally.
  void record_batch(forum::QuestionId question,
                    std::span<const forum::UserId> users,
                    std::span<const core::Prediction> predictions,
                    std::uint64_t model_epoch);

  /// One batched score() call's wall time.
  void observe_score_latency(double milliseconds, std::size_t pairs);

  /// Stream facts, forwarded by stream::LiveState.
  void observe_question(forum::QuestionId question, double event_time_hours);
  void observe_answer(forum::QuestionId question, forum::UserId answerer,
                      double realized_delay_hours, double event_time_hours);
  void observe_vote(forum::QuestionId question, forum::UserId answer_creator,
                    double net_votes, double event_time_hours);

  /// Hot swap: adopt the incoming model's baseline and forget the outgoing
  /// model's drift window (its traffic must not indict the new model).
  void on_model_swap(features::FeatureBaseline baseline);

  /// Event-time SLO timer: runs an evaluation when `now_hours` has advanced
  /// at least eval_interval_hours past the last one. Returns true when an
  /// evaluation ran. Called by LiveState at the end of every ingest batch.
  bool maybe_evaluate(double now_hours);

  /// Unconditional evaluation tick (tests, end-of-run report).
  MonitorReport evaluate_now(double now_hours);

  /// The last evaluation's report (empty before the first evaluation).
  MonitorReport last_report() const;

  /// Reservoir content digest for the bit-determinism regression test.
  std::uint64_t auc_reservoir_digest() const;

  const MonitorConfig& config() const { return config_; }

 private:
  MonitorReport build_report_locked(double now_hours);
  void export_metrics_locked(const MonitorReport& report);
  void advance_clock_locked(double event_time_hours);

  MonitorConfig config_;
  mutable std::mutex mutex_;

  PredictionLedger ledger_;
  ScoreReservoir reservoir_;
  RollingWindow vote_errors_;    ///< squared errors
  RollingWindow timing_loglik_;  ///< per-outcome log-likelihoods
  CalibrationHistogram calibration_;
  DriftDetector drift_;
  SloEngine slo_;
  Histogram latency_hist_;  ///< score() wall ms, kept monitor-local

  core::FeatureFn feature_fn_;
  std::uint64_t outcomes_joined_ = 0;

  /// Resolved positives awaiting vote outcomes: (q, u) → predicted votes.
  std::unordered_map<std::uint64_t, double> vote_watch_;
  std::deque<std::uint64_t> vote_watch_order_;

  double clock_hours_ = 0.0;
  std::optional<double> last_eval_hours_;
  MonitorReport last_report_;
};

}  // namespace forumcast::obs::monitor
