#include "obs/monitor/quality.hpp"

#include <algorithm>
#include <cmath>

#include "eval/metrics.hpp"
#include "util/check.hpp"
#include "util/digest.hpp"
#include "util/rng.hpp"

namespace forumcast::obs::monitor {

ScoreReservoir::ScoreReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), seed_(seed) {
  FORUMCAST_CHECK_MSG(capacity > 0, "ScoreReservoir capacity must be > 0");
  scores_.reserve(capacity);
  labels_.reserve(capacity);
}

void ScoreReservoir::add(double score, int label) {
  ++seen_;
  if (scores_.size() < capacity_) {
    scores_.push_back(score);
    labels_.push_back(label);
    return;
  }
  // Algorithm R with a per-item derived stream: the replacement index is a
  // pure function of (seed, seen), not of any shared RNG state, so two runs
  // that insert the same sequence agree bit-for-bit.
  std::uint64_t state = seed_ ^ (seen_ * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t j = util::splitmix64(state) % seen_;
  if (j < capacity_) {
    scores_[static_cast<std::size_t>(j)] = score;
    labels_[static_cast<std::size_t>(j)] = label;
  }
}

std::optional<double> ScoreReservoir::auc() const {
  const bool has_positive = std::find(labels_.begin(), labels_.end(), 1) !=
                            labels_.end();
  const bool has_negative = std::find(labels_.begin(), labels_.end(), 0) !=
                            labels_.end();
  if (!has_positive || !has_negative) return std::nullopt;
  return eval::auc(scores_, labels_);
}

std::uint64_t ScoreReservoir::digest() const {
  util::Fnv1a hash;
  hash.u64(seen_);
  hash.f64s(scores_);
  for (const int label : labels_) hash.u64(static_cast<std::uint64_t>(label));
  return hash.value();
}

RollingWindow::RollingWindow(std::size_t capacity) {
  FORUMCAST_CHECK_MSG(capacity > 0, "RollingWindow capacity must be > 0");
  values_.resize(capacity);
}

void RollingWindow::add(double value) {
  if (size_ == values_.size()) {
    sum_ -= values_[head_];
  } else {
    ++size_;
  }
  values_[head_] = value;
  sum_ += value;
  head_ = (head_ + 1) % values_.size();
}

std::optional<double> RollingWindow::mean() const {
  if (size_ == 0) return std::nullopt;
  return sum_ / static_cast<double>(size_);
}

std::optional<double> RollingWindow::root_mean() const {
  const auto m = mean();
  if (!m) return std::nullopt;
  return std::sqrt(std::max(0.0, *m));
}

void CalibrationHistogram::add(double predicted_probability, int label) {
  const double p = std::clamp(predicted_probability, 0.0, 1.0);
  auto decile = static_cast<std::size_t>(p * kDeciles);
  decile = std::min(decile, kDeciles - 1);  // p == 1.0 joins the top decile
  ++counts_[decile];
  predicted_sum_[decile] += p;
  if (label != 0) ++positives_[decile];
  ++total_;
}

std::optional<double> CalibrationHistogram::ece() const {
  if (total_ == 0) return std::nullopt;
  double ece = 0.0;
  for (std::size_t d = 0; d < kDeciles; ++d) {
    if (counts_[d] == 0) continue;
    const auto n = static_cast<double>(counts_[d]);
    const double mean_predicted = predicted_sum_[d] / n;
    const double frac_positive = static_cast<double>(positives_[d]) / n;
    ece += (n / static_cast<double>(total_)) *
           std::abs(mean_predicted - frac_positive);
  }
  return ece;
}

std::optional<double> CalibrationHistogram::mean_predicted(
    std::size_t decile) const {
  if (counts_[decile] == 0) return std::nullopt;
  return predicted_sum_[decile] / static_cast<double>(counts_[decile]);
}

std::optional<double> CalibrationHistogram::positive_fraction(
    std::size_t decile) const {
  if (counts_[decile] == 0) return std::nullopt;
  return static_cast<double>(positives_[decile]) /
         static_cast<double>(counts_[decile]);
}

double timing_log_likelihood(double predicted_delay_hours,
                             double realized_delay_hours) {
  const double rate = 1.0 / std::max(predicted_delay_hours, 1e-3);
  return std::log(rate) - rate * std::max(realized_delay_hours, 0.0);
}

}  // namespace forumcast::obs::monitor
