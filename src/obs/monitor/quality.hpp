// Rolling model-quality estimators fed by the label-join.
//
// All three are plain bounded-memory accumulators with no dependency on the
// obs macro layer, so they work (and are unit-tested) in FORUMCAST_OBS=OFF
// builds too — only the QualityMonitor glue above them compiles away.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace forumcast::obs::monitor {

/// Uniform reservoir (Algorithm R) of (score, label) pairs with a streaming
/// AUC readout over the sample. Replacement decisions are a pure function of
/// (seed, number of items seen), so the reservoir contents — and the AUC —
/// are bit-deterministic for a given insertion order no matter how many
/// threads fed the serving path upstream (the monitor serializes inserts).
class ScoreReservoir {
 public:
  ScoreReservoir(std::size_t capacity, std::uint64_t seed);

  void add(double score, int label);

  /// Tie-aware rank-statistic AUC over the reservoir sample; nullopt until
  /// both classes are present.
  std::optional<double> auc() const;

  std::size_t size() const { return scores_.size(); }
  std::uint64_t seen() const { return seen_; }

  /// FNV-1a over the sample bits, for the determinism regression test.
  std::uint64_t digest() const;

 private:
  std::size_t capacity_;
  std::uint64_t seed_;
  std::uint64_t seen_ = 0;
  std::vector<double> scores_;
  std::vector<int> labels_;
};

/// Fixed-size ring of samples with mean / RMSE readouts: the rolling window
/// behind vote RMSE (feed squared errors) and timing log-likelihood (feed
/// per-outcome log-likelihoods).
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);

  void add(double value);
  std::size_t size() const { return size_; }
  std::optional<double> mean() const;
  /// sqrt(mean) — RMSE when the window holds squared errors.
  std::optional<double> root_mean() const;

 private:
  std::vector<double> values_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double sum_ = 0.0;
};

/// Decile calibration histogram of predicted answer probability against
/// realized outcomes, with an expected-calibration-error readout:
/// ECE = Σ_b (n_b / N) · |mean predicted_b − frac positive_b|.
class CalibrationHistogram {
 public:
  static constexpr std::size_t kDeciles = 10;

  void add(double predicted_probability, int label);

  std::optional<double> ece() const;
  std::uint64_t count(std::size_t decile) const { return counts_[decile]; }
  std::uint64_t total() const { return total_; }
  /// Mean predicted probability / positive fraction for one decile.
  std::optional<double> mean_predicted(std::size_t decile) const;
  std::optional<double> positive_fraction(std::size_t decile) const;

 private:
  std::array<std::uint64_t, kDeciles> counts_{};
  std::array<std::uint64_t, kDeciles> positives_{};
  std::array<double, kDeciles> predicted_sum_{};
  std::uint64_t total_ = 0;
};

/// Log-likelihood of a realized first-answer delay under the model's
/// predicted delay, scoring the timing model as an exponential with rate
/// λ = 1 / max(r̂, ε):  ll = log λ − λ·d. Higher is better; a model whose
/// predicted delays drift away from realized ones sinks this steadily.
double timing_log_likelihood(double predicted_delay_hours,
                             double realized_delay_hours);

}  // namespace forumcast::obs::monitor
