#include "obs/monitor/slo.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace forumcast::obs::monitor {

const char* slo_state_name(SloState state) {
  switch (state) {
    case SloState::kOk: return "ok";
    case SloState::kWarn: return "warn";
    case SloState::kBreach: return "breach";
  }
  return "unknown";
}

void SloEngine::add_rule(SloRule rule) {
  FORUMCAST_CHECK_MSG(!rule.name.empty() && !rule.metric.empty(),
                      "SloRule needs a name and a metric key");
  FORUMCAST_CHECK_MSG(rule.breach_after >= 1,
                      "SloRule breach_after must be >= 1");
  FORUMCAST_CHECK_MSG(find(rule.name) == nullptr,
                      "duplicate SLO rule '" << rule.name << "'");
  SloStatus status;
  status.rule = std::move(rule);
  statuses_.push_back(std::move(status));
}

void SloEngine::evaluate(const std::map<std::string, double>& values) {
  ++evaluations_;
  for (SloStatus& status : statuses_) {
    const auto it = values.find(status.rule.metric);
    if (it == values.end()) continue;  // metric still warming up
    status.last_value = it->second;
    const bool ok = status.rule.lower_bound
                        ? it->second >= status.rule.threshold
                        : it->second <= status.rule.threshold;
    if (ok) {
      status.consecutive_violations = 0;
      status.state = SloState::kOk;
    } else {
      ++status.consecutive_violations;
      status.state = status.consecutive_violations >= status.rule.breach_after
                         ? SloState::kBreach
                         : SloState::kWarn;
    }
  }
}

const SloStatus* SloEngine::find(const std::string& name) const {
  const auto it = std::find_if(
      statuses_.begin(), statuses_.end(),
      [&name](const SloStatus& status) { return status.rule.name == name; });
  return it == statuses_.end() ? nullptr : &*it;
}

bool SloEngine::refit_recommended() const {
  return std::any_of(statuses_.begin(), statuses_.end(),
                     [](const SloStatus& status) {
                       return status.rule.refit_trigger &&
                              status.state == SloState::kBreach;
                     });
}

}  // namespace forumcast::obs::monitor
