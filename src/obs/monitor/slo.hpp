// Declarative SLO rules with burn-rate state.
//
// A rule binds a metric key (as produced by the monitor's evaluation pass)
// to a threshold and direction. Each evaluation tick compares the current
// value and advances a consecutive-violation counter — one bad tick is a
// warn (could be noise in a small window), `breach_after` consecutive bad
// ticks is a breach (the window has genuinely moved). A passing tick resets
// to ok, and a tick where the metric has no value yet (label-join still
// warming up) leaves the state untouched rather than crying wolf.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace forumcast::obs::monitor {

enum class SloState { kOk = 0, kWarn = 1, kBreach = 2 };

const char* slo_state_name(SloState state);

struct SloRule {
  std::string name;    ///< e.g. "auc_min"
  std::string metric;  ///< key into the evaluation's value map, e.g. "auc"
  /// true: value must be >= threshold (quality floors like AUC);
  /// false: value must be <= threshold (ceilings like PSI, latency).
  bool lower_bound = true;
  double threshold = 0.0;
  /// Consecutive violating evaluations before warn escalates to breach.
  int breach_after = 3;
  /// Breaching this rule recommends a refit (model-quality rules), as
  /// opposed to e.g. latency rules which indict the serving stack instead.
  bool refit_trigger = false;
};

struct SloStatus {
  SloRule rule;
  SloState state = SloState::kOk;
  int consecutive_violations = 0;
  std::optional<double> last_value;  ///< metric value at the last evaluation
};

class SloEngine {
 public:
  void add_rule(SloRule rule);

  /// One evaluation tick over the current metric values. Missing keys leave
  /// that rule's state unchanged.
  void evaluate(const std::map<std::string, double>& values);

  const std::vector<SloStatus>& statuses() const { return statuses_; }
  const SloStatus* find(const std::string& name) const;

  /// Any refit_trigger rule currently in breach.
  bool refit_recommended() const;

  std::size_t evaluations() const { return evaluations_; }

 private:
  std::vector<SloStatus> statuses_;
  std::size_t evaluations_ = 0;
};

}  // namespace forumcast::obs::monitor
