// Umbrella header for instrumentation call sites.
//
//   FORUMCAST_SPAN("lda.fit");                       // scoped trace span
//   FORUMCAST_SPAN_NAMED(sweep, "lda.gibbs_sweep");  // span with a handle,
//   sweep.arg("tokens_per_sec", rate);               // for viewer args
//   FORUMCAST_COUNTER_ADD("lda.tokens_sampled", n);
//   FORUMCAST_GAUGE_SET("vote.train_loss", loss);
//   FORUMCAST_HISTOGRAM_OBSERVE("parallel.chunk_ms", ms, 0.1, 1, 10, 100);
//
// The metric macros cache the registry lookup in a function-local static, so
// the steady-state cost is one relaxed atomic op. Building with
// -DFORUMCAST_OBS=OFF compiles every macro in this header to nothing; the
// obs library API itself (registry, collector, exporters) remains available
// so surface code needs no #ifdefs.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define FORUMCAST_OBS_CONCAT_INNER(a, b) a##b
#define FORUMCAST_OBS_CONCAT(a, b) FORUMCAST_OBS_CONCAT_INNER(a, b)

#if FORUMCAST_OBS_ENABLED

#define FORUMCAST_SPAN(name)                                             \
  ::forumcast::obs::ScopedSpan FORUMCAST_OBS_CONCAT(forumcast_span_,     \
                                                    __LINE__)(name)

#define FORUMCAST_SPAN_NAMED(var, name) ::forumcast::obs::ScopedSpan var(name)

#define FORUMCAST_COUNTER_ADD(name, n)                                   \
  do {                                                                   \
    static ::forumcast::obs::Counter& forumcast_obs_counter =            \
        ::forumcast::obs::MetricsRegistry::global().counter(name);       \
    forumcast_obs_counter.add(                                           \
        static_cast<std::uint64_t>(n));                                  \
  } while (0)

#define FORUMCAST_GAUGE_SET(name, value)                                 \
  do {                                                                   \
    static ::forumcast::obs::Gauge& forumcast_obs_gauge =                \
        ::forumcast::obs::MetricsRegistry::global().gauge(name);         \
    forumcast_obs_gauge.set(static_cast<double>(value));                 \
  } while (0)

/// Trailing arguments are the histogram's finite bucket upper bounds,
/// consulted only the first time the name is registered.
#define FORUMCAST_HISTOGRAM_OBSERVE(name, value, ...)                    \
  do {                                                                   \
    static ::forumcast::obs::Histogram& forumcast_obs_histogram =        \
        ::forumcast::obs::MetricsRegistry::global().histogram(           \
            name, std::vector<double>{__VA_ARGS__});                     \
    forumcast_obs_histogram.observe(static_cast<double>(value));         \
  } while (0)

#else  // !FORUMCAST_OBS_ENABLED
// The disabled forms still evaluate (and discard) their arguments so that
// accumulators feeding a gauge don't trip -Wunused warnings; the values are
// trivially dead and the optimizer deletes them.

#define FORUMCAST_SPAN(name) ((void)(name))
#define FORUMCAST_SPAN_NAMED(var, name) ::forumcast::obs::ScopedSpan var(name)
#define FORUMCAST_COUNTER_ADD(name, n) ((void)(name), (void)(n))
#define FORUMCAST_GAUGE_SET(name, value) ((void)(name), (void)(value))
#define FORUMCAST_HISTOGRAM_OBSERVE(name, value, ...) \
  ((void)(name), (void)(value))

#endif  // FORUMCAST_OBS_ENABLED
