#include "obs/trace.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"

namespace forumcast::obs {

namespace {
thread_local std::uint32_t t_span_depth = 0;
}  // namespace

namespace detail {
std::uint32_t enter_span() { return t_span_depth++; }
void exit_span() {
  if (t_span_depth > 0) --t_span_depth;
}
}  // namespace detail

TraceCollector& TraceCollector::global() {
  static TraceCollector* collector = new TraceCollector();  // immortal
  return *collector;
}

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  // One buffer per (collector, thread). In practice only the global
  // collector exists; shared_ptr keeps buffers of exited threads alive until
  // the collector is done with them.
  static thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  static thread_local TraceCollector* t_owner = nullptr;
  if (t_owner != this || !t_buffer) {
    auto buffer = std::make_shared<ThreadBuffer>();
    {
      const std::lock_guard<std::mutex> lock(buffers_mutex_);
      buffer->tid = next_tid_++;
      buffers_.push_back(buffer);
    }
    t_buffer = std::move(buffer);
    t_owner = this;
  }
  return *t_buffer;
}

void TraceCollector::record(TraceEvent&& event) {
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<TraceEvent> merged;
  {
    const std::lock_guard<std::mutex> lock(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;  // parents before children
            });
  return merged;
}

std::uint64_t TraceCollector::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::string TraceCollector::chrome_trace_json() const {
  using detail::append_json_escaped;
  using detail::append_json_number;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_escaped(out, event.name);
    out += ",\"cat\":\"forumcast\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":" + std::to_string(event.start_us);
    out += ",\"dur\":" + std::to_string(event.dur_us);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out.push_back(',');
        first_arg = false;
        append_json_escaped(out, key);
        out.push_back(':');
        append_json_number(out, value);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  out << chrome_trace_json();
}

std::vector<TraceCollector::AggregateRow> TraceCollector::aggregate() const {
  std::map<std::string, AggregateRow> by_name;
  for (const TraceEvent& event : events()) {
    AggregateRow& row = by_name[event.name];
    const double ms = static_cast<double>(event.dur_us) / 1e3;
    if (row.count == 0) {
      row.name = event.name;
      row.min_ms = ms;
      row.max_ms = ms;
    }
    ++row.count;
    row.total_ms += ms;
    row.min_ms = std::min(row.min_ms, ms);
    row.max_ms = std::max(row.max_ms, ms);
  }
  std::vector<AggregateRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    row.mean_ms = row.total_ms / static_cast<double>(row.count);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const AggregateRow& a, const AggregateRow& b) {
              return a.total_ms > b.total_ms;
            });
  return rows;
}

#if FORUMCAST_OBS_ENABLED

void ScopedSpan::finish() {
  if (!active_) return;
  active_ = false;
  detail::exit_span();
  event_.dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  TraceCollector::global().record(std::move(event_));
}

#endif  // FORUMCAST_OBS_ENABLED

}  // namespace forumcast::obs
