// Scoped tracing spans with Chrome trace-event export.
//
// Usage: `FORUMCAST_SPAN("lda.gibbs_sweep");` (see obs/obs.hpp) opens a span
// that closes at scope exit. Spans form a tree per thread (tracked by a
// thread-local depth counter) and are recorded as complete ("ph":"X") events
// into per-thread buffers owned by the process-global TraceCollector;
// `write_chrome_trace()` merges them into a JSON file loadable by
// chrome://tracing or https://ui.perfetto.dev, and `aggregate()` folds them
// into a per-name timing table for text reports and bench metadata.
//
// Collection is OFF by default: a disabled span costs one relaxed atomic
// load. Building with -DFORUMCAST_OBS=OFF compiles spans out entirely
// (ScopedSpan becomes an empty object; the collector API stays linkable so
// export call sites need no #ifdefs — they just see zero events).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#if !defined(FORUMCAST_OBS_ENABLED)
#define FORUMCAST_OBS_ENABLED 1
#endif

namespace forumcast::obs {

struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;    ///< collector-assigned dense thread index
  std::uint32_t depth = 0;  ///< nesting depth at open time (0 = root span)
  std::uint64_t start_us = 0;  ///< microseconds since the collector epoch
  std::uint64_t dur_us = 0;
  std::vector<std::pair<std::string, double>> args;
};

class TraceCollector {
 public:
  /// The process-wide collector every span records into.
  static TraceCollector& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events (thread registrations survive).
  void clear();

  /// Merged copy of every thread's events, sorted by start time.
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}).
  std::string chrome_trace_json() const;
  void write_chrome_trace(std::ostream& out) const;

  struct AggregateRow {
    std::string name;
    std::size_t count = 0;
    double total_ms = 0.0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
  };
  /// Per-name rollup sorted by descending total time.
  std::vector<AggregateRow> aggregate() const;

  /// Microseconds since the collector's epoch (its construction).
  std::uint64_t now_us() const;

  /// Appends to the calling thread's buffer. Internal, used by ScopedSpan.
  void record(TraceEvent&& event);

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;  // owner thread appends; snapshots read
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

namespace detail {
/// Returns the current thread's span depth and increments it.
std::uint32_t enter_span();
void exit_span();
}  // namespace detail

#if FORUMCAST_OBS_ENABLED

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : active_(TraceCollector::global().enabled()) {
    if (active_) {
      event_.name = name;
      event_.depth = detail::enter_span();
      event_.start_us = TraceCollector::global().now_us();
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() { finish(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

  /// Seconds since the span opened (0 when tracing is disabled).
  double elapsed_seconds() const {
    if (!active_) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Attaches a numeric argument shown in the trace viewer's detail pane.
  void arg(const char* key, double value) {
    if (active_) event_.args.emplace_back(key, value);
  }

  /// Closes the span early (before scope exit). Idempotent.
  void end() { finish(); }

 private:
  void finish();

  bool active_;
  std::chrono::steady_clock::time_point start_{};
  TraceEvent event_;
};

#else  // !FORUMCAST_OBS_ENABLED — spans compile to nothing.

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  bool active() const { return false; }
  double elapsed_seconds() const { return 0.0; }
  void arg(const char*, double) {}
  void end() {}
};

#endif  // FORUMCAST_OBS_ENABLED

}  // namespace forumcast::obs
