#include "opt/lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace forumcast::opt {

namespace {

constexpr double kEps = 1e-9;

// Full-tableau simplex over columns [structural | slack/surplus | artificial].
class Tableau {
 public:
  Tableau(const LpProblem& problem) {
    const std::size_t n = problem.num_variables;
    FORUMCAST_CHECK(problem.objective.size() == n);
    for (const auto& c : problem.constraints) {
      FORUMCAST_CHECK(c.coefficients.size() == n);
    }
    const std::size_t m = problem.constraints.size();

    // Count auxiliary columns.
    std::size_t slack_count = 0;
    for (const auto& c : problem.constraints) {
      if (c.type != ConstraintType::Equal) ++slack_count;
    }
    num_structural_ = n;
    slack_begin_ = n;
    artificial_begin_ = n + slack_count;
    cols_ = artificial_begin_ + m;  // at most one artificial per row
    rows_ = m;

    a_.assign(rows_, std::vector<double>(cols_, 0.0));
    b_.assign(rows_, 0.0);
    basis_.assign(rows_, 0);
    artificial_in_row_.assign(rows_, false);

    std::size_t slack_idx = slack_begin_;
    for (std::size_t r = 0; r < m; ++r) {
      const Constraint& c = problem.constraints[r];
      double sign = 1.0;
      ConstraintType type = c.type;
      double rhs = c.rhs;
      // Normalize to rhs >= 0 by flipping the row.
      if (rhs < 0.0) {
        sign = -1.0;
        rhs = -rhs;
        if (type == ConstraintType::LessEqual) {
          type = ConstraintType::GreaterEqual;
        } else if (type == ConstraintType::GreaterEqual) {
          type = ConstraintType::LessEqual;
        }
      }
      for (std::size_t j = 0; j < n; ++j) a_[r][j] = sign * c.coefficients[j];
      b_[r] = rhs;

      switch (type) {
        case ConstraintType::LessEqual:
          a_[r][slack_idx] = 1.0;
          basis_[r] = slack_idx;
          ++slack_idx;
          break;
        case ConstraintType::GreaterEqual:
          a_[r][slack_idx] = -1.0;  // surplus
          ++slack_idx;
          a_[r][artificial_begin_ + r] = 1.0;
          basis_[r] = artificial_begin_ + r;
          artificial_in_row_[r] = true;
          break;
        case ConstraintType::Equal:
          a_[r][artificial_begin_ + r] = 1.0;
          basis_[r] = artificial_begin_ + r;
          artificial_in_row_[r] = true;
          break;
      }
    }
  }

  bool needs_phase1() const {
    return std::any_of(artificial_in_row_.begin(), artificial_in_row_.end(),
                       [](bool f) { return f; });
  }

  /// Minimizes the sum of artificial variables. Returns false if infeasible.
  bool phase1() {
    // Objective: minimize Σ artificials == maximize −Σ artificials.
    std::vector<double> cost(cols_, 0.0);
    for (std::size_t j = artificial_begin_; j < cols_; ++j) cost[j] = -1.0;
    const bool bounded = run(cost, /*restrict_artificials=*/false);
    FORUMCAST_CHECK_MSG(bounded, "phase-1 objective is always bounded");
    // Feasible iff all artificials are (numerically) zero.
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] >= artificial_begin_ && b_[r] > 1e-7) return false;
    }
    // Pivot any remaining degenerate artificial basics out if possible.
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < artificial_begin_) continue;
      for (std::size_t j = 0; j < artificial_begin_; ++j) {
        if (std::abs(a_[r][j]) > kEps) {
          pivot(r, j);
          break;
        }
      }
    }
    return true;
  }

  /// Maximizes the structural objective. Returns false if unbounded.
  bool phase2(const std::vector<double>& objective) {
    std::vector<double> cost(cols_, 0.0);
    std::copy(objective.begin(), objective.end(), cost.begin());
    return run(cost, /*restrict_artificials=*/true);
  }

  std::vector<double> extract(std::size_t n) const {
    std::vector<double> x(n, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < n) x[basis_[r]] = b_[r];
    }
    return x;
  }

 private:
  // Reduced cost of column j under basic costs implied by `cost`.
  // We recompute via the classic z_j − c_j using the current tableau, which
  // for the full-tableau method equals cᵦᵀ B⁻¹ A_j − c_j = Σ_r cost[basis_r]·a_[r][j] − cost[j].
  double reduced_cost(const std::vector<double>& cost, std::size_t j) const {
    double z = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) z += cost[basis_[r]] * a_[r][j];
    return z - cost[j];
  }

  bool run(const std::vector<double>& cost, bool restrict_artificials) {
    const std::size_t usable_cols =
        restrict_artificials ? artificial_begin_ : cols_;
    for (std::size_t iter = 0; iter < 10000; ++iter) {
      // Bland's rule: the lowest-index column with negative reduced cost.
      std::size_t entering = cols_;
      for (std::size_t j = 0; j < usable_cols; ++j) {
        if (reduced_cost(cost, j) < -kEps) {
          entering = j;
          break;
        }
      }
      if (entering == cols_) return true;  // optimal

      // Ratio test; ties broken by the lowest basis index (Bland).
      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        if (a_[r][entering] > kEps) {
          const double ratio = b_[r] / a_[r][entering];
          if (ratio < best_ratio - kEps ||
              (std::abs(ratio - best_ratio) <= kEps &&
               (leaving == rows_ || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == rows_) return false;  // unbounded
      pivot(leaving, entering);
    }
    FORUMCAST_CHECK_MSG(false, "simplex iteration limit exceeded");
    return false;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double pivot_value = a_[row][col];
    FORUMCAST_CHECK(std::abs(pivot_value) > kEps);
    const double inv = 1.0 / pivot_value;
    for (double& v : a_[row]) v *= inv;
    b_[row] *= inv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == row) continue;
      const double factor = a_[r][col];
      if (std::abs(factor) <= kEps) continue;
      for (std::size_t j = 0; j < cols_; ++j) a_[r][j] -= factor * a_[row][j];
      b_[r] -= factor * b_[row];
      a_[r][col] = 0.0;  // keep the column numerically clean
    }
    basis_[row] = col;
  }

  std::size_t rows_ = 0, cols_ = 0;
  std::size_t num_structural_ = 0, slack_begin_ = 0, artificial_begin_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<std::size_t> basis_;
  std::vector<bool> artificial_in_row_;
};

}  // namespace

LpSolution solve(const LpProblem& problem) {
  FORUMCAST_CHECK(problem.num_variables > 0);
  LpSolution solution;

  Tableau tableau(problem);
  if (tableau.needs_phase1() && !tableau.phase1()) {
    solution.status = LpStatus::Infeasible;
    return solution;
  }
  if (!tableau.phase2(problem.objective)) {
    solution.status = LpStatus::Unbounded;
    return solution;
  }
  solution.status = LpStatus::Optimal;
  solution.x = tableau.extract(problem.num_variables);
  solution.objective_value = 0.0;
  for (std::size_t j = 0; j < problem.num_variables; ++j) {
    solution.objective_value += problem.objective[j] * solution.x[j];
  }
  return solution;
}

}  // namespace forumcast::opt
