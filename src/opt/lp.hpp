// Dense two-phase primal simplex solver.
//
// Solves   maximize cᵀx   subject to   Ax {≤,=,≥} b,  x ≥ 0.
// Small and exact enough for the per-question routing LP of paper eq. (2)
// (a handful of variables and constraints); Bland's rule guards against
// cycling. Not intended for large sparse programs.
#pragma once

#include <cstddef>
#include <vector>

namespace forumcast::opt {

enum class ConstraintType { LessEqual, Equal, GreaterEqual };

struct Constraint {
  std::vector<double> coefficients;  ///< one per variable
  ConstraintType type = ConstraintType::LessEqual;
  double rhs = 0.0;
};

struct LpProblem {
  std::size_t num_variables = 0;
  std::vector<double> objective;  ///< maximize objectiveᵀ x
  std::vector<Constraint> constraints;
};

enum class LpStatus { Optimal, Infeasible, Unbounded };

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  std::vector<double> x;
  double objective_value = 0.0;
};

/// Solves the LP. Throws util::CheckError on malformed input
/// (dimension mismatches); infeasibility/unboundedness are reported in status.
LpSolution solve(const LpProblem& problem);

}  // namespace forumcast::opt
