#include "opt/routing_lp.hpp"

#include <algorithm>
#include <numeric>

#include "opt/lp.hpp"
#include "util/check.hpp"

namespace forumcast::opt {

namespace {
void validate(const RoutingProblem& problem) {
  FORUMCAST_CHECK(!problem.weights.empty());
  FORUMCAST_CHECK(problem.weights.size() == problem.capacities.size());
  for (double cap : problem.capacities) FORUMCAST_CHECK(cap >= 0.0);
}
}  // namespace

RoutingSolution solve_routing(const RoutingProblem& problem) {
  validate(problem);
  RoutingSolution solution;
  solution.probabilities.assign(problem.weights.size(), 0.0);

  const double total_capacity = std::accumulate(
      problem.capacities.begin(), problem.capacities.end(), 0.0);
  if (total_capacity < 1.0 - 1e-12) return solution;  // infeasible

  // Fill users in decreasing weight order until one unit of mass is placed.
  std::vector<std::size_t> order(problem.weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (problem.weights[a] != problem.weights[b]) {
      return problem.weights[a] > problem.weights[b];
    }
    return a < b;
  });
  double remaining = 1.0;
  for (std::size_t u : order) {
    const double take = std::min(remaining, problem.capacities[u]);
    solution.probabilities[u] = take;
    solution.objective_value += problem.weights[u] * take;
    remaining -= take;
    if (remaining <= 1e-15) break;
  }
  solution.feasible = true;
  return solution;
}

RoutingSolution solve_routing_simplex(const RoutingProblem& problem) {
  validate(problem);
  const std::size_t n = problem.weights.size();

  LpProblem lp;
  lp.num_variables = n;
  lp.objective = problem.weights;
  for (std::size_t u = 0; u < n; ++u) {
    Constraint upper;
    upper.coefficients.assign(n, 0.0);
    upper.coefficients[u] = 1.0;
    upper.type = ConstraintType::LessEqual;
    upper.rhs = problem.capacities[u];
    lp.constraints.push_back(std::move(upper));
  }
  Constraint mass;
  mass.coefficients.assign(n, 1.0);
  mass.type = ConstraintType::Equal;
  mass.rhs = 1.0;
  lp.constraints.push_back(std::move(mass));

  const LpSolution lp_solution = solve(lp);
  RoutingSolution solution;
  solution.probabilities.assign(n, 0.0);
  if (lp_solution.status != LpStatus::Optimal) return solution;
  solution.feasible = true;
  solution.probabilities = lp_solution.x;
  solution.objective_value = lp_solution.objective_value;
  return solution;
}

}  // namespace forumcast::opt
