// The question-routing optimization of paper eq. (2):
//
//   maximize_p  Σ_u (v̂_u − λ r̂_u) · p_u
//   subject to  0 ≤ p_u ≤ cap_u  for all eligible u,   Σ_u p_u = 1.
//
// `cap_u` is the user's remaining answering budget c_u minus answers given in
// the recent window. The box-plus-simplex structure has a closed-form greedy
// optimum (fill the highest-weight users first); `solve_routing` uses it and
// the general simplex solver is kept as an independent cross-check.
#pragma once

#include <cstddef>
#include <vector>

namespace forumcast::opt {

struct RoutingProblem {
  std::vector<double> weights;     ///< v̂_u − λ·r̂_u per eligible user
  std::vector<double> capacities;  ///< remaining budget per user, ≥ 0
};

struct RoutingSolution {
  bool feasible = false;
  std::vector<double> probabilities;  ///< p_u, sums to 1 when feasible
  double objective_value = 0.0;
};

/// Closed-form greedy optimum (O(n log n)). Infeasible iff Σ cap < 1.
RoutingSolution solve_routing(const RoutingProblem& problem);

/// The same problem through the general simplex solver (for verification).
RoutingSolution solve_routing_simplex(const RoutingProblem& problem);

}  // namespace forumcast::opt
