#include "replica/cluster.hpp"

#include <utility>

#include "util/check.hpp"

namespace forumcast::replica {

std::vector<Endpoint> parse_cluster(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    const std::size_t colon = entry.rfind(':');
    FORUMCAST_CHECK_MSG(
        eq != std::string::npos && colon != std::string::npos && colon > eq + 1,
        "bad cluster entry '" << entry << "' (want name=host:port)");
    Endpoint ep;
    ep.name = entry.substr(0, eq);
    ep.host = entry.substr(eq + 1, colon - eq - 1);
    FORUMCAST_CHECK_MSG(!ep.name.empty() && !ep.host.empty(),
                        "bad cluster entry '" << entry << "'");
    const std::string port_text = entry.substr(colon + 1);
    int port = 0;
    for (const char c : port_text) {
      FORUMCAST_CHECK_MSG(c >= '0' && c <= '9',
                          "bad port in cluster entry '" << entry << "'");
      port = port * 10 + (c - '0');
      FORUMCAST_CHECK_MSG(port <= 65535,
                          "bad port in cluster entry '" << entry << "'");
    }
    FORUMCAST_CHECK_MSG(!port_text.empty() && port > 0,
                        "bad port in cluster entry '" << entry << "'");
    ep.port = static_cast<std::uint16_t>(port);
    for (const Endpoint& existing : endpoints) {
      FORUMCAST_CHECK_MSG(existing.name != ep.name,
                          "duplicate cluster node name '" << ep.name << "'");
    }
    endpoints.push_back(std::move(ep));
  }
  FORUMCAST_CHECK_MSG(!endpoints.empty(), "empty cluster spec");
  return endpoints;
}

ClusterClient::ClusterClient(std::vector<Endpoint> endpoints,
                             net::ClientConfig config)
    : endpoints_(std::move(endpoints)), config_(config) {
  for (const Endpoint& ep : endpoints_) {
    ring_.add_node(ep.name);
    by_name_.emplace(ep.name, &ep);
  }
}

const Endpoint& ClusterClient::owner(forum::UserId user) const {
  return *by_name_.at(ring_.owner(user));
}

net::Client& ClusterClient::client_for(const std::string& name) {
  auto it = clients_.find(name);
  if (it == clients_.end()) {
    const Endpoint& ep = *by_name_.at(name);
    it = clients_
             .emplace(name, std::make_unique<net::Client>(ep.port, ep.host,
                                                          config_))
             .first;
  }
  return *it->second;
}

std::vector<core::Prediction> ClusterClient::score(
    forum::QuestionId question, std::span<const forum::UserId> users) {
  // Partition by owner, preserving each user's position so the reassembled
  // result is index-aligned with the input.
  std::map<std::string, std::vector<std::size_t>> shards;
  for (std::size_t i = 0; i < users.size(); ++i) {
    shards[ring_.owner(users[i])].push_back(i);
  }
  std::vector<core::Prediction> out(users.size());
  for (const auto& [name, indices] : shards) {
    std::vector<forum::UserId> shard_users;
    shard_users.reserve(indices.size());
    for (const std::size_t i : indices) shard_users.push_back(users[i]);
    const std::vector<core::Prediction> shard =
        client_for(name).score(question, shard_users);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      out[indices[j]] = shard[j];
    }
  }
  return out;
}

}  // namespace forumcast::replica
