// Cluster-aware addressing: a named set of serving endpoints plus the
// consistent-hash ring that routes each user to its owner.
//
// The spec string is what `forumcast-netctl --cluster` and the smoke test
// pass on the command line:
//
//   name=host:port[,name=host:port...]
//
// Node *names* (not host:port) are the ring identities, so moving a node
// to another port does not reshuffle ownership.
//
// ClusterClient fans a score request out: it partitions the candidate users
// by ring owner, asks each owning node for its slice, and reassembles the
// predictions in input order — the caller sees one response bit-identical
// to any single node that holds the full model (every replica serves every
// user; sharding is a load-spreading policy, not a data partition).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "net/client.hpp"
#include "replica/ring.hpp"

namespace forumcast::replica {

struct Endpoint {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "name=host:port,..." (throws util::CheckError on malformed or
/// duplicate names).
std::vector<Endpoint> parse_cluster(const std::string& spec);

class ClusterClient {
 public:
  /// Connects lazily: a node's TCP connection is opened on first use.
  explicit ClusterClient(std::vector<Endpoint> endpoints,
                         net::ClientConfig config = {});

  /// Scores question × users, each user answered by its ring owner.
  std::vector<core::Prediction> score(forum::QuestionId question,
                                      std::span<const forum::UserId> users);

  const Ring& ring() const { return ring_; }
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  /// The endpoint owning `user` under the ring.
  const Endpoint& owner(forum::UserId user) const;

 private:
  net::Client& client_for(const std::string& name);

  std::vector<Endpoint> endpoints_;
  net::ClientConfig config_;
  Ring ring_;
  std::map<std::string, const Endpoint*> by_name_;
  std::map<std::string, std::unique_ptr<net::Client>> clients_;
};

}  // namespace forumcast::replica
