#include "replica/follower.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "stream/event.hpp"
#include "stream/wal.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace forumcast::replica {

namespace {

std::string fault_text(std::uint64_t seq, std::uint64_t expected,
                       std::uint64_t actual) {
  std::ostringstream out;
  out << "replica state divergence at seq " << seq << ": primary digest "
      << expected << ", local digest " << actual;
  return std::move(out).str();
}

}  // namespace

DivergenceFault::DivergenceFault(std::uint64_t seq, std::uint64_t expected,
                                 std::uint64_t actual)
    : std::runtime_error(fault_text(seq, expected, actual)),
      seq_(seq),
      expected_(expected),
      actual_(actual) {}

Follower::Follower(const forum::Dataset& base, FollowerConfig config)
    : base_(base), config_(std::move(config)) {
  FORUMCAST_CHECK_MSG(!config_.wal_dir.empty(),
                      "follower requires a --wal-dir for local durability");
  caught_up_time_ = std::chrono::steady_clock::now();
  bootstrap_local();
}

Follower::~Follower() {
  stop();
  std::shared_ptr<Serving> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    old = std::move(serving_);
  }
  if (old && scorer_) old->live->detach(scorer_.get());
}

void Follower::stop() noexcept { stop_.store(true, std::memory_order_release); }

void Follower::bootstrap_local() {
  // A restart finds the previously fetched bundle + the follower's own WAL
  // in wal_dir; rebuilding from them restores the pre-crash state without
  // touching the network (the tail then resumes from applied_seq).
  std::ifstream in(stream::model_bundle_path(config_.wal_dir),
                   std::ios::binary);
  if (!in.good()) return;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  install(build_serving(std::move(buffer).str()));
  FORUMCAST_LOG_INFO << "follower recovered locally to seq " << applied_seq();
}

std::shared_ptr<Follower::Serving> Follower::build_serving(
    const std::string& bundle_bytes) {
  auto next = std::make_shared<Serving>();
  next->dataset = base_;
  std::istringstream in(bundle_bytes);
  next->pipeline = core::ForecastPipeline::load(in, next->dataset);
  stream::LiveStateConfig live_config;
  live_config.wal_dir = config_.wal_dir;
  live_config.snapshot_every = config_.snapshot_every;
  next->live = std::make_unique<stream::LiveState>(next->pipeline,
                                                   next->dataset, live_config);
  return next;
}

void Follower::install(std::shared_ptr<Serving> next) {
  std::shared_ptr<Serving> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    old = serving_;
    serving_ = next;
    // Aliasing pointer: holders of the pipeline keep the whole Serving
    // (dataset + live state) alive, which is the zero-dropped-reads
    // guarantee across installs.
    std::shared_ptr<const core::ForecastPipeline> alias(next,
                                                        &next->pipeline);
    if (!scorer_) {
      scorer_ = std::make_unique<serve::BatchScorer>(std::move(alias));
    } else {
      scorer_->swap_model(std::move(alias));
    }
    next->live->attach(scorer_.get());
  }
  if (old) old->live->detach(scorer_.get());
}

std::shared_ptr<Follower::Serving> Follower::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return serving_;
}

bool Follower::has_serving() const { return current() != nullptr; }

bool Follower::wait_serving(double timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(timeout_ms);
  while (!has_serving()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

bool Follower::wait_applied(std::uint64_t seq, double timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(timeout_ms);
  while (applied_seq() < seq) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

serve::BatchScorer& Follower::scorer() {
  FORUMCAST_CHECK_MSG(scorer_ != nullptr,
                      "follower has no serving state yet (bootstrap pending)");
  return *scorer_;
}

std::uint64_t Follower::applied_seq() const {
  const std::shared_ptr<Serving> s = current();
  return s ? s->live->last_seq() : 0;
}

std::function<std::shared_ptr<void>()> Follower::read_guard_fn() {
  return [this]() -> std::shared_ptr<void> {
    std::shared_ptr<Serving> s = current();
    if (!s) return nullptr;
    // The token pins both the Serving (so an install can't free it) and
    // the LiveState reader lock (so the tail thread can't mutate under
    // the read).
    struct Token {
      std::shared_ptr<Serving> serving;
      std::shared_ptr<void> guard;
    };
    auto token = std::make_shared<Token>();
    token->guard = s->live->read_guard();
    token->serving = std::move(s);
    return token;
  };
}

std::function<net::ReplicaStatusInfo()> Follower::status_fn() {
  return [this] { return status(); };
}

net::ReplicaStatusInfo Follower::status() const {
  net::ReplicaStatusInfo info;
  info.role = 2;
  std::shared_ptr<Serving> s;
  std::chrono::steady_clock::time_point caught;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s = serving_;
    info.head_seq = head_seq_;
    caught = caught_up_time_;
  }
  if (s) {
    info.applied_seq = s->live->last_seq();
    info.digest = s->live->digest();
  }
  if (info.head_seq > info.applied_seq) {
    info.lag_events = info.head_seq - info.applied_seq;
    info.lag_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - caught)
                      .count();
  }
  return info;
}

void Follower::export_gauges() {
  std::uint64_t head;
  std::chrono::steady_clock::time_point caught;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    head = head_seq_;
    caught = caught_up_time_;
  }
  const std::uint64_t applied = applied_seq();
  const std::uint64_t lag_events = head > applied ? head - applied : 0;
  const double lag_ms =
      lag_events == 0 ? 0.0
                      : std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - caught)
                            .count();
  FORUMCAST_GAUGE_SET("replica.applied_seq", static_cast<double>(applied));
  FORUMCAST_GAUGE_SET("replica.lag_events", static_cast<double>(lag_events));
  FORUMCAST_GAUGE_SET("replica.lag_ms", lag_ms);
}

void Follower::subscribe(net::Client& client, std::uint64_t from_seq,
                         bool want_bundle) {
  net::Message request;
  request.kind = net::MessageKind::kSubscribeRequest;
  request.from_seq = from_seq;
  request.want_bundle = want_bundle;
  client.send_message(request);
}

void Follower::begin_resync(net::Client& client) {
  resyncs_.fetch_add(1, std::memory_order_acq_rel);
  fetch_ = Fetch{};
  fetch_.active = true;
  fetch_.wipe = true;
  subscribe(client, 0, /*want_bundle=*/true);
}

void Follower::complete_fetch() {
  if (fetch_.wipe) {
    // Resync: the local log diverged from the primary's; drop it and
    // rebuild from (bundle, stream from 0). The current serving state
    // keeps answering reads until install().
    std::error_code ec;
    std::filesystem::remove(stream::wal_path(config_.wal_dir), ec);
    std::filesystem::remove(stream::snapshot_path(config_.wal_dir), ec);
  }
  install(build_serving(fetch_.bundle));
  if (fetch_.swap) {
    swaps_applied_.fetch_add(1, std::memory_order_acq_rel);
    FORUMCAST_COUNTER_ADD("replica.swaps_applied", 1);
    FORUMCAST_LOG_INFO << "follower applied model swap; serving generation "
                       << scorer_->pipeline()->generation();
  } else if (fetch_.wipe) {
    FORUMCAST_LOG_INFO << "follower resynced from primary snapshot";
  } else {
    FORUMCAST_LOG_INFO << "follower bootstrapped from primary bundle ("
                       << fetch_.bundle.size() << " bytes)";
  }
  fetch_ = Fetch{};
}

void Follower::handle_batch(net::Client& client, const net::Message& batch) {
  if (fetch_.active && fetch_.wipe) return;  // stale stream during resync
  const std::shared_ptr<Serving> s = current();
  if (!s) return;  // bundle fetch still in flight

  std::vector<stream::ForumEvent> events;
  events.reserve(batch.event_count);
  std::string_view rest = batch.text;
  while (!rest.empty()) {
    const stream::DecodeResult decoded = stream::decode_event_record(rest);
    FORUMCAST_CHECK_MSG(decoded.bytes_consumed > 0 && !decoded.corrupt,
                        "undecodable record inside a wal batch");
    events.push_back(std::move(decoded.event));
    rest.remove_prefix(decoded.bytes_consumed);
  }
  FORUMCAST_CHECK_MSG(events.size() == batch.event_count,
                      "wal batch count mismatch");

  // A re-subscription (swap fetch, reconnect) can re-send a prefix we
  // already applied; drop anything at or below our durable position.
  const std::uint64_t applied_before = s->live->last_seq();
  std::vector<stream::ForumEvent> fresh;
  fresh.reserve(events.size());
  for (stream::ForumEvent& event : events) {
    if (event.seq > applied_before) fresh.push_back(std::move(event));
  }
  if (!fresh.empty()) {
    s->live->ingest(fresh);
    FORUMCAST_COUNTER_ADD("replica.events_applied", fresh.size());
  }

  const std::uint64_t applied = s->live->last_seq();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (batch.last_seq > head_seq_) head_seq_ = batch.last_seq;
    if (applied >= head_seq_) {
      caught_up_time_ = std::chrono::steady_clock::now();
    }
  }
  export_gauges();

  if (batch.has_digest && applied == batch.last_seq) {
    const std::uint64_t local = s->live->digest();
    if (local != batch.digest) {
      divergences_.fetch_add(1, std::memory_order_acq_rel);
      FORUMCAST_COUNTER_ADD("replica.divergences", 1);
      const DivergenceFault fault(batch.last_seq, batch.digest, local);
      FORUMCAST_LOG_WARN << fault.what() << "; resyncing from snapshot";
      begin_resync(client);
    }
  }
}

bool Follower::session(net::Client& client) {
  fetch_ = Fetch{};
  const std::shared_ptr<Serving> s = current();
  if (s) {
    subscribe(client, s->live->last_seq(), /*want_bundle=*/false);
  } else {
    fetch_.active = true;
    subscribe(client, 0, /*want_bundle=*/true);
  }

  while (!stop_.load(std::memory_order_acquire)) {
    net::Message m;
    const net::Client::PollResult result =
        client.poll_frame(m, config_.heartbeat_ms);
    if (result == net::Client::PollResult::kTimeout) {
      net::Message heartbeat;
      heartbeat.kind = net::MessageKind::kReplicaHeartbeat;
      heartbeat.replica.applied_seq = applied_seq();
      client.send_message(heartbeat);
      export_gauges();
      continue;
    }
    if (result == net::Client::PollResult::kClosed) return true;

    switch (m.kind) {
      case net::MessageKind::kSnapshotOffer: {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (m.head_seq > head_seq_) head_seq_ = m.head_seq;
        }
        if (fetch_.active) {
          FORUMCAST_CHECK_MSG(
              m.bundle_bytes > 0,
              "primary offered no model bundle; cannot bootstrap");
          fetch_.offer_seen = true;
          fetch_.expected_bytes = m.bundle_bytes;
        }
        break;
      }
      case net::MessageKind::kSnapshotChunk: {
        if (!fetch_.active || !fetch_.offer_seen) break;
        FORUMCAST_CHECK_MSG(m.offset == fetch_.bundle.size(),
                            "snapshot chunk out of order");
        fetch_.bundle += m.text;
        FORUMCAST_CHECK_MSG(fetch_.bundle.size() <= fetch_.expected_bytes,
                            "snapshot chunks exceed the offered size");
        if (fetch_.bundle.size() == fetch_.expected_bytes) complete_fetch();
        break;
      }
      case net::MessageKind::kWalBatch:
        handle_batch(client, m);
        break;
      case net::MessageKind::kReplicaStatusResponse: {
        const std::uint64_t applied = applied_seq();
        std::lock_guard<std::mutex> lock(mutex_);
        if (m.replica.head_seq > head_seq_) head_seq_ = m.replica.head_seq;
        if (applied >= head_seq_) {
          caught_up_time_ = std::chrono::steady_clock::now();
        }
        break;
      }
      case net::MessageKind::kModelSwap: {
        // The primary hot-swapped; its bundle file changed. Re-fetch over
        // the wire and rebuild (base + new bundle + local log replay).
        fetch_ = Fetch{};
        fetch_.active = true;
        fetch_.swap = true;
        subscribe(client, applied_seq(), /*want_bundle=*/true);
        break;
      }
      case net::MessageKind::kErrorResponse:
        FORUMCAST_CHECK_MSG(false,
                            "primary rejected replication traffic: " << m.text);
        break;
      default:
        break;  // tolerate unknown pushes from a newer primary
    }
  }
  return false;
}

void Follower::run() {
  double backoff_ms = config_.reconnect_backoff_ms;
  while (!stop_.load(std::memory_order_acquire)) {
    try {
      net::Client client(config_.primary_port, config_.primary_host,
                         config_.client);
      backoff_ms = config_.reconnect_backoff_ms;
      if (!session(client)) return;  // stop() requested
      FORUMCAST_LOG_WARN << "primary connection closed; reconnecting";
    } catch (const std::exception& error) {
      FORUMCAST_LOG_WARN << "replication link error: " << error.what();
      FORUMCAST_COUNTER_ADD("replica.link_errors", 1);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, config_.max_backoff_ms);
  }
}

}  // namespace forumcast::replica
