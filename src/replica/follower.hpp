// Follower replica: bootstraps from the primary, tails its WAL stream, and
// serves reads from its own LiveState + BatchScorer.
//
// Lifecycle:
//
//   construct ──► local bootstrap (bundle + WAL in wal_dir, if present)
//   run() ──► connect to the primary's replication port (bounded retry)
//         ──► subscribe from applied_seq; fetch the model bundle over the
//             wire when no local state exists (kSnapshotOffer + chunks)
//         ──► apply kWalBatch spans into LiveState (each also lands in the
//             follower's own WAL, so a kill -9 recovers locally)
//         ──► heartbeat on idle; track the primary's head for lag metrics
//
// Divergence: when a span carries the primary's digest at its last seq and
// the follower's digest disagrees, that is a DivergenceFault — the follower
// wipes its local log, re-fetches the bundle, and replays from 0 (resync).
// The serving state stays readable throughout; reads only move to the
// rebuilt state at the atomic install.
//
// Model swap: a kModelSwap broadcast makes the follower re-fetch the bundle
// and rebuild (base dataset + new bundle + local event log), then
// BatchScorer::swap_model installs it — the same zero-dropped-reads path the
// primary uses. Exports replica.applied_seq / replica.lag_events /
// replica.lag_ms gauges.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/pipeline.hpp"
#include "forum/dataset.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "serve/batch_scorer.hpp"
#include "stream/live_state.hpp"

namespace forumcast::replica {

/// State divergence detected by the digest exchange: the follower applied
/// the same event sequence as the primary but its feature state digests
/// differently. Handled internally by resync; exposed for tests and logs.
class DivergenceFault : public std::runtime_error {
 public:
  DivergenceFault(std::uint64_t seq, std::uint64_t expected,
                  std::uint64_t actual);
  std::uint64_t seq() const { return seq_; }
  std::uint64_t expected_digest() const { return expected_; }
  std::uint64_t actual_digest() const { return actual_; }

 private:
  std::uint64_t seq_;
  std::uint64_t expected_;
  std::uint64_t actual_;
};

struct FollowerConfig {
  std::string primary_host = "127.0.0.1";
  /// The primary's *replication* port (not its serving port).
  std::uint16_t primary_port = 0;
  /// Local durability directory (required): the follower's own WAL +
  /// snapshots + fetched model bundle live here.
  std::string wal_dir;
  std::size_t snapshot_every = 0;
  /// Idle wait per poll; on expiry a heartbeat (applied_seq) goes out.
  double heartbeat_ms = 250.0;
  /// Reconnect backoff after a lost primary; doubles up to max.
  double reconnect_backoff_ms = 100.0;
  double max_backoff_ms = 2000.0;
  /// Transport bounds for the primary connection.
  net::ClientConfig client;
};

class Follower {
 public:
  /// `base` is the shared raw base dataset (the same snapshot the primary
  /// ingests on top of); it must outlive the follower. If wal_dir already
  /// holds a bundle + log (a restart), serving state is rebuilt locally
  /// before any network traffic.
  Follower(const forum::Dataset& base, FollowerConfig config);
  ~Follower();
  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Tails the primary until stop(); run on a dedicated thread. Connection
  /// loss reconnects with doubling backoff and re-subscribes from
  /// applied_seq.
  void run();
  void stop() noexcept;

  /// True once serving state exists (local bootstrap or wire fetch done).
  bool has_serving() const;
  /// Blocks (polling) until serving state exists; false on timeout.
  bool wait_serving(double timeout_ms) const;
  /// Blocks until applied_seq() >= seq; false on timeout.
  bool wait_applied(std::uint64_t seq, double timeout_ms) const;

  /// The scorer to build a net::Server over. Valid once has_serving().
  serve::BatchScorer& scorer();

  /// Hooks for ServerConfig / BatcherConfig: the read guard pins the
  /// current serving state + LiveState reader lock; status answers
  /// kReplicaStatusRequest with role/lag/digest.
  std::function<std::shared_ptr<void>()> read_guard_fn();
  std::function<net::ReplicaStatusInfo()> status_fn();
  net::ReplicaStatusInfo status() const;

  std::uint64_t applied_seq() const;
  std::uint64_t divergences() const {
    return divergences_.load(std::memory_order_acquire);
  }
  std::uint64_t resyncs() const {
    return resyncs_.load(std::memory_order_acquire);
  }
  std::uint64_t swaps_applied() const {
    return swaps_applied_.load(std::memory_order_acquire);
  }

 private:
  /// One rebuildable unit of serving state. The pipeline references the
  /// dataset *member*, so the whole struct lives on the heap behind a
  /// shared_ptr; aliasing pointers into `pipeline` keep it alive for every
  /// in-flight read across installs.
  struct Serving {
    forum::Dataset dataset;
    core::ForecastPipeline pipeline;
    std::unique_ptr<stream::LiveState> live;
  };

  /// In-flight bundle fetch over the replication connection.
  struct Fetch {
    bool active = false;
    /// Resync: wipe the local log before installing; stream restarts at 0.
    bool wipe = false;
    /// kModelSwap-triggered: counts toward swaps_applied().
    bool swap = false;
    bool offer_seen = false;
    std::uint64_t expected_bytes = 0;
    std::string bundle;
  };

  std::shared_ptr<Serving> build_serving(const std::string& bundle_bytes);
  void install(std::shared_ptr<Serving> next);
  std::shared_ptr<Serving> current() const;
  void bootstrap_local();
  /// One connection's lifetime; true = reconnect, false = stopping.
  bool session(net::Client& client);
  void subscribe(net::Client& client, std::uint64_t from_seq,
                 bool want_bundle);
  void handle_batch(net::Client& client, const net::Message& batch);
  void complete_fetch();
  void begin_resync(net::Client& client);
  void export_gauges();

  const forum::Dataset& base_;
  FollowerConfig config_;

  mutable std::mutex mutex_;
  std::shared_ptr<Serving> serving_;
  std::unique_ptr<serve::BatchScorer> scorer_;
  std::uint64_t head_seq_ = 0;  ///< primary's head, as last reported
  /// Last instant applied_seq covered the known head; lag_ms measures from
  /// here while behind (0 while caught up).
  std::chrono::steady_clock::time_point caught_up_time_;

  Fetch fetch_;  ///< touched only by the run() thread

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> divergences_{0};
  std::atomic<std::uint64_t> resyncs_{0};
  std::atomic<std::uint64_t> swaps_applied_{0};
};

}  // namespace forumcast::replica
