#include "replica/publisher.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace forumcast::replica {

namespace {

stream::WalReader make_tail_reader(const std::string& dir,
                                   const stream::RecoveredLog& recovered) {
  // The recovery read consumed the WAL's valid prefix; the tail reader
  // starts where it stopped so no record is decoded twice.
  return stream::WalReader(stream::wal_path(dir), recovered.wal_valid_bytes);
}

}  // namespace

Publisher::Publisher(std::string wal_dir, PublisherHooks hooks)
    : dir_(std::move(wal_dir)),
      hooks_(std::move(hooks)),
      reader_([this] {
        stream::RecoveredLog recovered = stream::recover_log(dir_);
        events_ = std::move(recovered.events);
        return make_tail_reader(dir_, recovered);
      }()) {
  // LiveState seqs are contiguous from 1; the shipping index below (seq N
  // at index N-1) depends on it.
  for (std::size_t i = 0; i < events_.size(); ++i) {
    FORUMCAST_CHECK_MSG(events_[i].seq == i + 1,
                        "non-contiguous WAL seq " << events_[i].seq
                                                  << " at index " << i);
  }
}

void Publisher::refresh() {
  const std::size_t before = events_.size();
  reader_.poll(events_);
  for (std::size_t i = before; i < events_.size(); ++i) {
    FORUMCAST_CHECK_MSG(events_[i].seq == i + 1,
                        "non-contiguous WAL seq " << events_[i].seq
                                                  << " at index " << i);
  }
}

std::uint64_t Publisher::head_seq() {
  refresh();
  return events_.empty() ? 0 : events_.back().seq;
}

std::string Publisher::bundle_bytes() {
  std::ifstream in(stream::model_bundle_path(dir_), std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

net::WalSpan Publisher::events_after(std::uint64_t after_seq,
                                     std::size_t max_bytes) {
  refresh();
  net::WalSpan span;
  if (after_seq >= events_.size()) return span;  // caught up
  for (std::size_t i = after_seq; i < events_.size(); ++i) {
    std::string record;
    stream::append_event_record(record, events_[i]);
    if (span.count > 0 && span.records.size() + record.size() > max_bytes) {
      break;
    }
    span.records += record;
    if (span.count == 0) span.first_seq = events_[i].seq;
    span.last_seq = events_[i].seq;
    ++span.count;
  }
  if (span.count > 0 && span.last_seq == events_.back().seq &&
      hooks_.digest_at) {
    // Only a span reaching the durable head can carry a digest — the live
    // state's digest describes its *current* position, nothing earlier.
    std::uint64_t digest = 0;
    if (hooks_.digest_at(span.last_seq, &digest)) {
      span.has_digest = true;
      span.digest = digest;
    }
  }
  return span;
}

}  // namespace forumcast::replica
