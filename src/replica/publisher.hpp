// Primary-side replication source over a WAL directory.
//
// Implements net::ReplicationSource by tailing the primary's own wal.bin
// with a stream::WalReader: the reader only ever sees bytes the ingest
// path has already flushed+fsynced (LiveState writes through a user-space
// buffer that hits the file at sync()), so "visible to the reader" and
// "durable" are the same boundary — a follower can never receive an event
// the primary could lose in a crash.
//
// Construction recovers the existing log (snapshot + WAL tail) so a
// follower subscribing from 0 gets history, then poll() extends the
// in-memory log as ingest appends. The digest hook lets the server attach
// LiveState::digest() to a span that reaches the live head — the periodic
// divergence check followers verify against.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/replication.hpp"
#include "stream/event.hpp"
#include "stream/wal.hpp"

namespace forumcast::replica {

struct PublisherHooks {
  /// Fills *digest with the live feature-state digest iff the state sits at
  /// exactly `seq` right now; returns false when ingest has moved past it
  /// (the span then ships without a digest — a later one will carry it).
  std::function<bool(std::uint64_t seq, std::uint64_t* digest)> digest_at;
};

class Publisher : public net::ReplicationSource {
 public:
  /// `wal_dir` is the primary LiveState's directory; the constructor loads
  /// the recovered log and positions the tail reader after it.
  Publisher(std::string wal_dir, PublisherHooks hooks = {});

  std::uint64_t head_seq() override;
  std::string bundle_bytes() override;
  net::WalSpan events_after(std::uint64_t after_seq,
                            std::size_t max_bytes) override;

  std::size_t events_loaded() const { return events_.size(); }

 private:
  /// Pulls newly durable records off the WAL into the in-memory log.
  void refresh();

  std::string dir_;
  PublisherHooks hooks_;
  std::vector<stream::ForumEvent> events_;  ///< seq i+1 at index i
  stream::WalReader reader_;
};

}  // namespace forumcast::replica
