#include "replica/ring.hpp"

#include "util/check.hpp"
#include "util/digest.hpp"

namespace forumcast::replica {

namespace {

/// splitmix64 finalizer: a cheap full-avalanche mix so nearby FNV outputs
/// (sequential user ids, "node-1"/"node-2") land far apart on the ring.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t vnode_point(const std::string& name, std::uint64_t index) {
  util::Fnv1a hash;
  hash.str(name);
  hash.u64(index);
  return mix64(hash.value());
}

}  // namespace

Ring::Ring(std::size_t vnodes) : vnodes_(vnodes) {
  FORUMCAST_CHECK_MSG(vnodes_ >= 1, "ring needs at least one vnode per node");
}

void Ring::add_node(const std::string& name) {
  FORUMCAST_CHECK_MSG(!name.empty(), "ring node name must be non-empty");
  if (!nodes_.insert(name).second) return;
  for (std::uint64_t i = 0; i < vnodes_; ++i) {
    // Collisions resolve by name order so insertion order never matters —
    // two processes with the same member set agree point for point.
    auto [it, inserted] = points_.emplace(vnode_point(name, i), name);
    if (!inserted && name < it->second) it->second = name;
  }
}

void Ring::remove_node(const std::string& name) {
  if (nodes_.erase(name) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == name) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
  // Re-add surviving nodes' points that a collision may have suppressed.
  for (const std::string& survivor : nodes_) {
    for (std::uint64_t i = 0; i < vnodes_; ++i) {
      auto [it, inserted] = points_.emplace(vnode_point(survivor, i), survivor);
      if (!inserted && survivor < it->second) it->second = survivor;
    }
  }
}

std::uint64_t Ring::key_point(forum::UserId user) {
  util::Fnv1a hash;
  hash.u64(static_cast<std::uint64_t>(user));
  return mix64(hash.value());
}

const std::string& Ring::owner(forum::UserId user) const {
  FORUMCAST_CHECK_MSG(!points_.empty(), "ring has no nodes");
  const auto it = points_.lower_bound(key_point(user));
  return it == points_.end() ? points_.begin()->second : it->second;
}

std::vector<std::string> Ring::nodes() const {
  return std::vector<std::string>(nodes_.begin(), nodes_.end());
}

}  // namespace forumcast::replica
