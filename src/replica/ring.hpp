// Consistent-hash ring for sharding users across read replicas.
//
// Every node is placed on a 64-bit ring at `vnodes` pseudo-random points
// (virtual nodes); a user id hashes to a point and is owned by the first
// node clockwise from it. Properties the tests pin down:
//
//  - Determinism: placement depends only on (node name, vnode index) and
//    the key only on the user id — no process state, no RNG — so every
//    process (the router in forumcast-netctl, each daemon, the tests)
//    computes identical ownership from the same member list.
//  - Minimal movement: adding or removing one of N nodes reassigns about
//    1/N of the keys (only those whose ring segment changed hands), which
//    is what makes follower join/leave cheap.
//  - Balance: per-node key share concentrates around 1/N like
//    1/sqrt(vnodes) — within ~20% at the default 160 vnodes, within 10%
//    at 1024 (the property test pins both bounds).
//
// Hashing is FNV-1a over the identity bytes finished with the splitmix64
// mixer — FNV alone clusters sequential ids; the mix spreads them.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "forum/post.hpp"

namespace forumcast::replica {

class Ring {
 public:
  /// `vnodes` points per node; higher = smoother balance, larger ring map.
  explicit Ring(std::size_t vnodes = 160);

  /// Adds `name` (idempotent). Names are node identities; two processes
  /// building rings from the same name set agree on every owner.
  void add_node(const std::string& name);
  /// Removes `name` (idempotent); only its segments change hands.
  void remove_node(const std::string& name);

  /// The owning node's name. Requires at least one node.
  const std::string& owner(forum::UserId user) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  /// Member names in sorted order.
  std::vector<std::string> nodes() const;

  /// The ring position a user id hashes to (exposed for balance tests).
  static std::uint64_t key_point(forum::UserId user);

 private:
  std::size_t vnodes_;
  std::set<std::string> nodes_;
  /// ring position -> owning node name
  std::map<std::uint64_t, std::string> points_;
};

}  // namespace forumcast::replica
