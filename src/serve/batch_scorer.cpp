#include "serve/batch_scorer.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "ml/matrix.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace forumcast::serve {

BatchScorer::BatchScorer(const core::ForecastPipeline& pipeline,
                         BatchScorerConfig config)
    : pipeline_(pipeline),
      config_(config),
      cache_(config.max_cached_questions) {
  FORUMCAST_CHECK_MSG(pipeline_.fitted(),
                      "BatchScorer requires a fitted pipeline");
  config_.block_rows = std::max<std::size_t>(1, config_.block_rows);
}

std::vector<core::Prediction> BatchScorer::score(
    forum::QuestionId question, std::span<const forum::UserId> users) const {
  FORUMCAST_CHECK(pipeline_.fitted());
  std::vector<core::Prediction> predictions(users.size());
  if (users.empty()) return predictions;

  FORUMCAST_SPAN_NAMED(span, "serve.batch_score");

  // Fill phase (writer side): bind to the current pipeline generation and
  // materialize any missing blocks. The shared_ptr pins the question block
  // against eviction by a concurrent score() of a different question.
  std::shared_ptr<const FeatureCache::QuestionBlock> block;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    cache_.sync(pipeline_.extractor(), pipeline_.dataset(),
                pipeline_.generation());
    cache_.warm_users(users);
    block = cache_.question_block(question);
  }

  const double open_duration = pipeline_.question_open_duration(question);
  const std::size_t dim = cache_.dimension();
  const std::size_t block_rows = config_.block_rows;
  const std::size_t num_blocks = (users.size() + block_rows - 1) / block_rows;

  // Scoring phase (reader side): assemble each row block and run all three
  // predictors on it. Blocks are independent, so they shard cleanly.
  std::shared_lock<std::shared_mutex> read_lock(mutex_);
  util::parallel_for(
      num_blocks,
      [&](std::size_t b) {
        const std::size_t begin = b * block_rows;
        const std::size_t end = std::min(users.size(), begin + block_rows);
        const std::size_t rows = end - begin;

        // Scratch is reused across blocks and score() calls: assemble writes
        // every element of its row and the predictors fill every output slot,
        // so resize() leftovers are never read.
        thread_local ml::Matrix x;
        thread_local std::vector<double> answer, votes, delay;
        x.resize(rows, dim);
        for (std::size_t r = 0; r < rows; ++r) {
          cache_.assemble(users[begin + r], *block, x.row(r));
        }

        answer.resize(rows);
        votes.resize(rows);
        delay.resize(rows);
        pipeline_.answer_predictor().predict_probability_batch(x, answer);
        pipeline_.vote_predictor().predict_batch(x, votes);
        pipeline_.timing_predictor().predict_delay_batch(x, open_duration,
                                                         delay);
        for (std::size_t r = 0; r < rows; ++r) {
          predictions[begin + r] = {answer[r], votes[r], delay[r]};
        }
      },
      config_.threads);

  FORUMCAST_COUNTER_ADD("serve.pairs_scored", users.size());
  FORUMCAST_COUNTER_ADD("serve.batches", 1);
  if (span.active()) {
    span.arg("pairs", static_cast<double>(users.size()));
    span.arg("blocks", static_cast<double>(num_blocks));
  }
  return predictions;
}

core::BatchPredictFn BatchScorer::predict_fn() const {
  return [this](forum::QuestionId question,
                std::span<const forum::UserId> users) {
    return score(question, users);
  };
}

void BatchScorer::invalidate(const CacheInvalidation& invalidation) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  cache_.invalidate(invalidation);
}

FeatureCacheStats BatchScorer::cache_stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return cache_.stats();
}

}  // namespace forumcast::serve
