#include "serve/batch_scorer.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include <chrono>

#include "ml/matrix.hpp"
#include "ml/workspace.hpp"
#include "obs/monitor/monitor.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace forumcast::serve {

BatchScorer::BatchScorer(const core::ForecastPipeline& pipeline,
                         BatchScorerConfig config)
    // Aliasing, non-owning shared_ptr: the caller keeps ownership, exactly
    // the pre-hot-swap contract ("must outlive the scorer").
    : BatchScorer(std::shared_ptr<const core::ForecastPipeline>(
                      std::shared_ptr<const core::ForecastPipeline>(),
                      &pipeline),
                  config) {}

BatchScorer::BatchScorer(std::shared_ptr<const core::ForecastPipeline> pipeline,
                         BatchScorerConfig config)
    : pipeline_(std::move(pipeline)),
      config_(config),
      cache_(config.max_cached_questions) {
  FORUMCAST_CHECK_MSG(pipeline_ != nullptr && pipeline_->fitted(),
                      "BatchScorer requires a fitted pipeline");
  config_.block_rows = std::max<std::size_t>(1, config_.block_rows);
}

std::vector<core::Prediction> BatchScorer::score(
    forum::QuestionId question, std::span<const forum::UserId> users) const {
  std::vector<core::Prediction> predictions(users.size());
  if (users.empty()) return predictions;

  FORUMCAST_SPAN_NAMED(span, "serve.batch_score");
  const auto score_start = std::chrono::steady_clock::now();

  std::size_t num_blocks = 0;
  std::uint64_t ledger_token = 0;
  bool quantized_votes = false;
  obs::monitor::QualityMonitor* monitor = nullptr;
  for (;;) {
    // Fill phase (writer side): snapshot the served model, bind the cache to
    // its (swap epoch, generation) token, and materialize any missing
    // blocks. The block shared_ptr pins it against eviction by a concurrent
    // score() of a different question; the pipeline shared_ptr pins the
    // model itself against a concurrent hot swap.
    std::shared_ptr<const core::ForecastPipeline> pipeline;
    std::uint64_t epoch = 0;
    std::shared_ptr<const FeatureCache::QuestionBlock> block;
    {
      std::unique_lock<std::shared_mutex> lock(mutex_);
      pipeline = pipeline_;
      epoch = swap_epoch_;
      FORUMCAST_CHECK(pipeline->fitted());
      cache_.sync(pipeline->extractor(), pipeline->dataset(),
                  sync_token(epoch, pipeline->generation()));
      cache_.warm_users(users);
      block = cache_.question_block(question);
      ledger_token = sync_token(epoch, pipeline->generation());
      monitor = monitor_;  // snapshot under the lock (set_monitor races)
    }

    const double open_duration = pipeline->question_open_duration(question);
    const std::size_t dim = pipeline->extractor().dimension();
    const std::size_t block_rows = config_.block_rows;
    num_blocks = (users.size() + block_rows - 1) / block_rows;

    // Scoring phase (reader side): assemble each row block and run all three
    // predictors on it. Blocks are independent, so they shard cleanly.
    std::shared_lock<std::shared_mutex> read_lock(mutex_);
    if (epoch != swap_epoch_) {
      // A hot swap landed in the fill→score lock gap: the warmed cache now
      // belongs to the new model. Rebuild on it rather than mixing models.
      FORUMCAST_COUNTER_ADD("serve.swap_retries", 1);
      continue;
    }
    util::parallel_for(
        num_blocks,
        [&](std::size_t b) {
          const std::size_t begin = b * block_rows;
          const std::size_t end = std::min(users.size(), begin + block_rows);
          const std::size_t rows = end - begin;

          // Scratch lives in the worker thread's workspace arena — reused
          // across blocks and score() calls once the arena hits its
          // high-water mark. assemble writes every element of its row and
          // the predictors fill every output slot, so the unspecified arena
          // contents are never read.
          ml::Workspace::Frame frame;
          ml::Workspace& ws = frame.workspace();
          ml::Tensor<double> x = ws.tensor<double>(rows, dim);
          for (std::size_t r = 0; r < rows; ++r) {
            cache_.assemble(users[begin + r], *block, x.row(r));
          }

          std::span<double> answer{ws.alloc<double>(rows), rows};
          std::span<double> votes{ws.alloc<double>(rows), rows};
          std::span<double> delay{ws.alloc<double>(rows), rows};
          pipeline->answer_predictor().predict_probability_batch(x, answer);
          pipeline->vote_predictor().predict_batch(x, votes);
          pipeline->timing_predictor().predict_delay_batch(x, open_duration,
                                                           delay);
          for (std::size_t r = 0; r < rows; ++r) {
            predictions[begin + r] = {answer[r], votes[r], delay[r]};
          }
        },
        config_.threads);
    quantized_votes = pipeline->vote_predictor().quantized();
    break;
  }

  FORUMCAST_COUNTER_ADD("serve.pairs_scored", users.size());
  FORUMCAST_COUNTER_ADD("serve.batches", 1);
  if (quantized_votes) {
    FORUMCAST_COUNTER_ADD("serve.quantized_scores", users.size());
  }
  if (monitor != nullptr) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - score_start)
                          .count();
    monitor->record_batch(question, users, predictions, ledger_token);
    monitor->observe_score_latency(ms, users.size());
  }
  if (span.active()) {
    span.arg("pairs", static_cast<double>(users.size()));
    span.arg("blocks", static_cast<double>(num_blocks));
  }
  return predictions;
}

core::BatchPredictFn BatchScorer::predict_fn() const {
  return [this](forum::QuestionId question,
                std::span<const forum::UserId> users) {
    return score(question, users);
  };
}

void BatchScorer::invalidate(const CacheInvalidation& invalidation) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  cache_.invalidate(invalidation);
}

void BatchScorer::swap_model(
    std::shared_ptr<const core::ForecastPipeline> next) {
  FORUMCAST_CHECK_MSG(next != nullptr && next->fitted(),
                      "swap_model requires a fitted pipeline");
  obs::monitor::QualityMonitor* monitor = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    pipeline_ = std::move(next);
    ++swap_epoch_;
    monitor = monitor_;
    if (monitor != nullptr) next = pipeline_;  // keep alive for the baseline
  }
  FORUMCAST_COUNTER_ADD("serve.model_swaps", 1);
  // Outside the scorer lock (monitor → scorer calls don't exist, but there
  // is no reason to serialize serving behind a baseline copy either): the
  // incoming model's fit-time baseline becomes the drift reference and the
  // old model's live drift window is dropped.
  if (monitor != nullptr) monitor->on_model_swap(next->feature_baseline());
}

void BatchScorer::set_monitor(obs::monitor::QualityMonitor* monitor) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  monitor_ = monitor;
}

std::uint64_t BatchScorer::swap_epoch() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return swap_epoch_;
}

std::shared_ptr<const core::ForecastPipeline> BatchScorer::pipeline() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return pipeline_;
}

FeatureCacheStats BatchScorer::cache_stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return cache_.stats();
}

}  // namespace forumcast::serve
