// Batched scoring engine: one question × N candidate users in one pass.
//
// The scalar reference path (ForecastPipeline::predict) pays, per pair, a
// feature rebuild, three scaler allocations, and four per-sample MLP
// forwards. BatchScorer instead assembles the N × (18 + 2K) feature matrix
// from a FeatureCache and pushes whole row blocks through each predictor's
// batch entry point — the MLP forwards become blocked GEMMs
// (ml::gemm_nt) — sharded across util::parallel_for. Scores are
// bit-identical to the scalar path; it is purely an execution-layout change.
//
// Thread safety: concurrent score() calls are safe. Cache fills run under a
// writer lock, matrix assembly and model forwards under a reader lock; the
// only contract (shared with ForecastPipeline::predict) is that fit() must
// not run concurrently with score().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/feature_cache.hpp"

namespace forumcast::obs::monitor {
class QualityMonitor;
}  // namespace forumcast::obs::monitor

namespace forumcast::serve {

struct BatchScorerConfig {
  /// Rows per assembled feature block: the GEMM tile height and the
  /// parallel_for work unit. Sized so a block's activations stay cache
  /// resident (256 × 34 doubles ≈ 68 KB).
  std::size_t block_rows = 256;
  /// Worker threads for block sharding; 0 = util::default_thread_count().
  std::size_t threads = 0;
  /// Question blocks kept warm in the FeatureCache.
  std::size_t max_cached_questions = 64;
};

class BatchScorer {
 public:
  /// The pipeline must be fitted and outlive the scorer. Refitting the
  /// pipeline is detected via its generation counter and invalidates the
  /// cache on the next score() call.
  explicit BatchScorer(const core::ForecastPipeline& pipeline,
                       BatchScorerConfig config = {});

  /// Owning form: the scorer shares the pipeline's lifetime, which is what
  /// hot swapping needs (the outgoing model must stay alive until every
  /// in-flight score() drops its snapshot).
  explicit BatchScorer(std::shared_ptr<const core::ForecastPipeline> pipeline,
                       BatchScorerConfig config = {});

  /// Scores question `question` against every user in `users`, returning one
  /// Prediction per user in order. Equals pipeline.predict(u, question) for
  /// each u.
  std::vector<core::Prediction> score(
      forum::QuestionId question, std::span<const forum::UserId> users) const;

  /// Adapter for consumers taking a core::BatchPredictFn (Recommender,
  /// RoutingSimulator). The returned callable references *this.
  core::BatchPredictFn predict_fn() const;

  /// Fine-grained invalidation from the streaming layer: drops exactly the
  /// cached state a batch of live events made stale (see
  /// FeatureCache::invalidate) under the writer lock, instead of waiting
  /// for a generation bump to drop everything.
  void invalidate(const CacheInvalidation& invalidation);

  /// Atomic hot swap: replaces the served model with `next` (fitted, e.g. a
  /// freshly loaded bundle) under the writer lock and bumps the swap epoch.
  /// The next score() sees a changed cache token and drops every cached
  /// block, exactly as a refit generation bump does; in-flight score()
  /// calls that snapshotted the old model before the swap either finish on
  /// a consistent old-model cache or detect the epoch change and rebuild.
  void swap_model(std::shared_ptr<const core::ForecastPipeline> next);

  /// Bumped by every swap_model(). Starts at 0.
  std::uint64_t swap_epoch() const;

  /// The currently served model.
  std::shared_ptr<const core::ForecastPipeline> pipeline() const;

  /// Attaches the model-quality monitor: every score() call is ledgered
  /// (question, users, predictions, serving sync token) and its wall time
  /// observed, and swap_model() hands the monitor the incoming model's
  /// fit-time feature baseline. Install before serving starts (same
  /// discipline as attach()/detach() on LiveState); nullptr detaches.
  void set_monitor(obs::monitor::QualityMonitor* monitor);

  FeatureCacheStats cache_stats() const;
  const BatchScorerConfig& config() const { return config_; }

 private:
  /// Cache sync token: swap epoch in the high half, fit generation in the
  /// low half, so both a refit and a hot swap (which may carry the same
  /// generation) invalidate every cached block.
  static std::uint64_t sync_token(std::uint64_t epoch, std::uint64_t generation) {
    return (epoch << 32) | (generation & 0xffffffffu);
  }

  std::shared_ptr<const core::ForecastPipeline> pipeline_;
  BatchScorerConfig config_;
  mutable std::shared_mutex mutex_;
  mutable FeatureCache cache_;
  std::uint64_t swap_epoch_ = 0;
  obs::monitor::QualityMonitor* monitor_ = nullptr;
};

}  // namespace forumcast::serve
