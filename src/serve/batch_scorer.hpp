// Batched scoring engine: one question × N candidate users in one pass.
//
// The scalar reference path (ForecastPipeline::predict) pays, per pair, a
// feature rebuild, three scaler allocations, and four per-sample MLP
// forwards. BatchScorer instead assembles the N × (18 + 2K) feature matrix
// from a FeatureCache and pushes whole row blocks through each predictor's
// batch entry point — the MLP forwards become blocked GEMMs
// (ml::gemm_nt) — sharded across util::parallel_for. Scores are
// bit-identical to the scalar path; it is purely an execution-layout change.
//
// Thread safety: concurrent score() calls are safe. Cache fills run under a
// writer lock, matrix assembly and model forwards under a reader lock; the
// only contract (shared with ForecastPipeline::predict) is that fit() must
// not run concurrently with score().
#pragma once

#include <cstddef>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/feature_cache.hpp"

namespace forumcast::serve {

struct BatchScorerConfig {
  /// Rows per assembled feature block: the GEMM tile height and the
  /// parallel_for work unit. Sized so a block's activations stay cache
  /// resident (256 × 34 doubles ≈ 68 KB).
  std::size_t block_rows = 256;
  /// Worker threads for block sharding; 0 = util::default_thread_count().
  std::size_t threads = 0;
  /// Question blocks kept warm in the FeatureCache.
  std::size_t max_cached_questions = 64;
};

class BatchScorer {
 public:
  /// The pipeline must be fitted and outlive the scorer. Refitting the
  /// pipeline is detected via its generation counter and invalidates the
  /// cache on the next score() call.
  explicit BatchScorer(const core::ForecastPipeline& pipeline,
                       BatchScorerConfig config = {});

  /// Scores question `question` against every user in `users`, returning one
  /// Prediction per user in order. Equals pipeline.predict(u, question) for
  /// each u.
  std::vector<core::Prediction> score(
      forum::QuestionId question, std::span<const forum::UserId> users) const;

  /// Adapter for consumers taking a core::BatchPredictFn (Recommender,
  /// RoutingSimulator). The returned callable references *this.
  core::BatchPredictFn predict_fn() const;

  /// Fine-grained invalidation from the streaming layer: drops exactly the
  /// cached state a batch of live events made stale (see
  /// FeatureCache::invalidate) under the writer lock, instead of waiting
  /// for a generation bump to drop everything.
  void invalidate(const CacheInvalidation& invalidation);

  FeatureCacheStats cache_stats() const;
  const BatchScorerConfig& config() const { return config_; }

 private:
  const core::ForecastPipeline& pipeline_;
  BatchScorerConfig config_;
  mutable std::shared_mutex mutex_;
  mutable FeatureCache cache_;
};

}  // namespace forumcast::serve
