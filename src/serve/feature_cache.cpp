#include "serve/feature_cache.hpp"

#include <algorithm>

#include "graph/link_features.hpp"
#include "obs/obs.hpp"
#include "topics/topic_math.hpp"
#include "util/check.hpp"

namespace forumcast::serve {

namespace {
// Scalar slots of a user block; the K entries of d_u follow.
enum UserSlot : std::size_t {
  kAnswersProvided = 0,
  kAnswerRatio,
  kNetAnswerVotes,
  kMedianResponseTime,
  kQaCloseness,
  kQaBetweenness,
  kDenseCloseness,
  kDenseBetweenness,
  kUserScalarSlots,
};
}  // namespace

FeatureCache::FeatureCache(std::size_t max_cached_questions)
    : max_cached_questions_(std::max<std::size_t>(1, max_cached_questions)) {}

std::size_t FeatureCache::user_stride() const {
  return kUserScalarSlots + extractor_->num_topics();
}

std::size_t FeatureCache::dimension() const {
  FORUMCAST_CHECK(bound_);
  return extractor_->dimension();
}

void FeatureCache::sync(const features::FeatureExtractor& extractor,
                        const forum::Dataset& dataset,
                        std::uint64_t generation) {
  if (bound_ && generation == generation_ && extractor_ == &extractor) return;
  if (bound_) {
    const std::uint64_t dropped =
        static_cast<std::uint64_t>(
            std::count(user_ready_.begin(), user_ready_.end(), 1)) +
        question_blocks_.size();
    ++stats_.invalidations;
    stats_.blocks_dropped += dropped;
    FORUMCAST_COUNTER_ADD("serve.cache.invalidations", 1);
    FORUMCAST_COUNTER_ADD("serve.cache.blocks_dropped", dropped);
  }
  extractor_ = &extractor;
  dataset_ = &dataset;
  generation_ = generation;
  bound_ = true;
  user_blocks_.assign(dataset.num_users() * user_stride(), 0.0);
  user_ready_.assign(dataset.num_users(), 0);
  question_blocks_.clear();
}

void FeatureCache::warm_users(std::span<const forum::UserId> users) {
  FORUMCAST_CHECK(bound_);
  const std::size_t stride = user_stride();
  const std::size_t num_topics = extractor_->num_topics();
  std::uint64_t hits = 0, misses = 0;
  for (forum::UserId u : users) {
    FORUMCAST_CHECK(u < user_ready_.size());
    if (user_ready_[u]) {
      ++hits;
      continue;
    }
    ++misses;
    const auto& stats = extractor_->user_stats(u);
    double* block = user_blocks_.data() + u * stride;
    block[kAnswersProvided] = static_cast<double>(stats.answers_provided);
    block[kAnswerRatio] = static_cast<double>(stats.answers_provided) /
                          (1.0 + static_cast<double>(stats.questions_asked));
    block[kNetAnswerVotes] = stats.net_answer_votes;
    block[kMedianResponseTime] = extractor_->median_response_time(u);
    block[kQaCloseness] = extractor_->qa_closeness()[u];
    block[kQaBetweenness] = extractor_->qa_betweenness()[u];
    block[kDenseCloseness] = extractor_->dense_closeness()[u];
    block[kDenseBetweenness] = extractor_->dense_betweenness()[u];
    for (std::size_t k = 0; k < num_topics; ++k) {
      block[kUserScalarSlots + k] = stats.topic_distribution[k];
    }
    user_ready_[u] = 1;
  }
  stats_.user_hits += hits;
  stats_.user_misses += misses;
  FORUMCAST_COUNTER_ADD("serve.cache.user_hits", hits);
  FORUMCAST_COUNTER_ADD("serve.cache.user_misses", misses);
}

std::shared_ptr<const FeatureCache::QuestionBlock> FeatureCache::question_block(
    forum::QuestionId q) {
  FORUMCAST_CHECK(bound_);
  if (const auto it = question_blocks_.find(q); it != question_blocks_.end()) {
    ++stats_.question_hits;
    FORUMCAST_COUNTER_ADD("serve.cache.question_hits", 1);
    return it->second;
  }
  ++stats_.question_misses;
  FORUMCAST_COUNTER_ADD("serve.cache.question_misses", 1);
  if (question_blocks_.size() >= max_cached_questions_) {
    stats_.question_evictions += question_blocks_.size();
    FORUMCAST_COUNTER_ADD("serve.cache.question_evictions",
                          question_blocks_.size());
    question_blocks_.clear();
  }

  auto block = std::make_shared<QuestionBlock>();
  const forum::Thread& thread = dataset_->thread(q);
  block->question = q;
  block->asker = thread.question.creator;
  block->net_votes = static_cast<double>(thread.question.net_votes);
  block->word_length = extractor_->question_word_length(q);
  block->code_length = extractor_->question_code_length(q);
  block->topics = extractor_->question_topics(q);
  block->asker_topics = extractor_->user_stats(block->asker).topic_distribution;
  // Similarity of every dataset question's topic mix against d_q: the
  // TopicWeighted* pair features only ever look these up, so one O(Q·K) pass
  // here replaces an O(K) recomputation per (answered question, candidate).
  const std::size_t num_questions = dataset_->num_questions();
  block->similarity.resize(num_questions);
  for (forum::QuestionId r = 0; r < num_questions; ++r) {
    block->similarity[r] = topics::total_variation_similarity(
        extractor_->question_topics(r), block->topics);
  }

  // Per-user pair-feature tables (fill_pair_entries): every pair feature is
  // computed once here — with exactly the calls and accumulation order
  // FeatureExtractor::features uses, so the values are bit-identical — and
  // assemble() degrades to plain lookups.
  const std::size_t num_users = dataset_->num_users();
  const auto& asker_participated =
      extractor_->user_stats(block->asker).participated;
  block->asker_in_thread = std::binary_search(
      asker_participated.begin(), asker_participated.end(), q);
  block->user_question_sim.resize(num_users);
  block->user_asker_sim.resize(num_users);
  block->weighted_answers.resize(num_users);
  block->weighted_votes.resize(num_users);
  block->cooccurrence.resize(num_users);
  block->ra_qa.resize(num_users);
  block->ra_dense.resize(num_users);
  for (forum::UserId u = 0; u < num_users; ++u) {
    fill_pair_entries(*block, u);
  }
  question_blocks_.emplace(q, block);
  return block;
}

void FeatureCache::fill_pair_entries(QuestionBlock& block,
                                     forum::UserId u) const {
  // The arithmetic below is lifted verbatim from FeatureExtractor::features
  // (same calls, same answered-list accumulation order, same −1
  // co-occurrence correction), so each table entry is the exact double the
  // reference path would produce.
  const forum::QuestionId q = block.question;
  const auto& stats = extractor_->user_stats(u);
  const std::span<const double> d_u = stats.topic_distribution;
  block.user_question_sim[u] =
      topics::total_variation_similarity(d_u, block.topics);
  block.user_asker_sim[u] =
      topics::total_variation_similarity(d_u, block.asker_topics);
  double topic_weighted_answers = 0.0;
  double topic_weighted_votes = 0.0;
  for (std::size_t i = 0; i < stats.answered.size(); ++i) {
    const forum::QuestionId r = stats.answered[i];
    if (r == q) continue;
    const double sim = block.similarity[r];
    topic_weighted_answers += sim;
    topic_weighted_votes += stats.answered_votes[i] * sim;
  }
  block.weighted_answers[u] = topic_weighted_answers;
  block.weighted_votes[u] = topic_weighted_votes;
  double cooccurrence = extractor_->thread_cooccurrence(u, block.asker);
  if (block.asker_in_thread &&
      std::binary_search(stats.participated.begin(),
                         stats.participated.end(), q)) {
    cooccurrence -= 1.0;
  }
  block.cooccurrence[u] = cooccurrence;
  block.ra_qa[u] =
      graph::resource_allocation_index(extractor_->qa_graph(), u, block.asker);
  block.ra_dense[u] = graph::resource_allocation_index(
      extractor_->dense_graph(), u, block.asker);
}

void FeatureCache::invalidate(const CacheInvalidation& invalidation) {
  if (!bound_) return;
  ++stats_.invalidations;
  FORUMCAST_COUNTER_ADD("serve.cache.invalidations", 1);
  std::uint64_t dropped = 0;

  if (invalidation.drop_all) {
    dropped = static_cast<std::uint64_t>(
                  std::count(user_ready_.begin(), user_ready_.end(), 1)) +
              question_blocks_.size();
    std::fill(user_ready_.begin(), user_ready_.end(), 0);
    question_blocks_.clear();
    stats_.blocks_dropped += dropped;
    FORUMCAST_COUNTER_ADD("serve.cache.blocks_dropped", dropped);
    return;
  }

  std::vector<forum::UserId> users = invalidation.users;
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  std::vector<forum::QuestionId> questions = invalidation.questions;
  std::sort(questions.begin(), questions.end());

  // Question blocks: drop the listed questions and anything asked by a
  // pair-dirty user (the asker's topic profile / participation feeds whole
  // columns); repair survivors copy-on-write — concurrent scorers may still
  // hold the old shared_ptr, which stays internally consistent.
  const std::size_t num_questions = dataset_->num_questions();
  for (auto it = question_blocks_.begin(); it != question_blocks_.end();) {
    const auto& old_block = it->second;
    if (std::binary_search(questions.begin(), questions.end(),
                           old_block->question) ||
        std::binary_search(users.begin(), users.end(), old_block->asker)) {
      ++dropped;
      it = question_blocks_.erase(it);
      continue;
    }
    const bool grow = old_block->similarity.size() < num_questions;
    if (grow || !users.empty()) {
      auto fresh = std::make_shared<QuestionBlock>(*old_block);
      if (grow) {
        const auto old_size =
            static_cast<forum::QuestionId>(fresh->similarity.size());
        fresh->similarity.resize(num_questions);
        for (forum::QuestionId r = old_size; r < num_questions; ++r) {
          fresh->similarity[r] = topics::total_variation_similarity(
              extractor_->question_topics(r), fresh->topics);
        }
      }
      for (const forum::UserId u : users) {
        fill_pair_entries(*fresh, u);
      }
      it->second = std::move(fresh);
    }
    ++it;
  }

  // User blocks: a cleared ready bit is a drop — warm_users rebuilds from
  // the refreshed extractor on next use.
  for (const forum::UserId u : users) {
    if (u < user_ready_.size() && user_ready_[u]) {
      user_ready_[u] = 0;
      ++dropped;
    }
  }
  for (const forum::UserId u : invalidation.scalar_users) {
    if (u < user_ready_.size() && user_ready_[u]) {
      user_ready_[u] = 0;
      ++dropped;
    }
  }
  stats_.blocks_dropped += dropped;
  FORUMCAST_COUNTER_ADD("serve.cache.blocks_dropped", dropped);
}

void FeatureCache::assemble(forum::UserId u, const QuestionBlock& block,
                            std::span<double> row) const {
  using features::FeatureId;
  const auto& layout = extractor_->layout();
  FORUMCAST_CHECK(row.size() == layout.dimension());
  FORUMCAST_CHECK(u < user_ready_.size() && user_ready_[u]);
  const std::size_t num_topics = extractor_->num_topics();
  const double* user = user_blocks_.data() + u * user_stride();
  const std::span<const double> d_u(user + kUserScalarSlots, num_topics);

  auto put = [&](FeatureId id, double value) { row[layout.offset(id)] = value; };
  auto put_dist = [&](FeatureId id, std::span<const double> dist) {
    const std::size_t start = layout.offset(id);
    for (std::size_t k = 0; k < num_topics; ++k) row[start + k] = dist[k];
  };

  // User features (i)-(v), straight from the cached block.
  put(FeatureId::AnswersProvided, user[kAnswersProvided]);
  put(FeatureId::AnswerRatio, user[kAnswerRatio]);
  put(FeatureId::NetAnswerVotes, user[kNetAnswerVotes]);
  put(FeatureId::MedianResponseTime, user[kMedianResponseTime]);
  put_dist(FeatureId::TopicsAnswered, d_u);

  // Question features (vi)-(ix), from the cached block.
  put(FeatureId::NetQuestionVotes, block.net_votes);
  put(FeatureId::QuestionWordLength, block.word_length);
  put(FeatureId::QuestionCodeLength, block.code_length);
  put_dist(FeatureId::TopicsAsked, block.topics);

  // User-question features (x)-(xii) and social features (xiii)-(xx): every
  // pair term was tabled at block build with the reference arithmetic (see
  // question_block), so this is pure lookups — no per-row topic loops, graph
  // walks, or binary searches left on the hot path.
  put(FeatureId::UserQuestionTopicSimilarity, block.user_question_sim[u]);
  put(FeatureId::TopicWeightedQuestionsAnswered, block.weighted_answers[u]);
  put(FeatureId::TopicWeightedAnswerVotes, block.weighted_votes[u]);
  put(FeatureId::UserUserTopicSimilarity, block.user_asker_sim[u]);
  put(FeatureId::ThreadCooccurrence, block.cooccurrence[u]);
  put(FeatureId::QaCloseness, user[kQaCloseness]);
  put(FeatureId::QaBetweenness, user[kQaBetweenness]);
  put(FeatureId::QaResourceAllocation, block.ra_qa[u]);
  put(FeatureId::DenseCloseness, user[kDenseCloseness]);
  put(FeatureId::DenseBetweenness, user[kDenseBetweenness]);
  put(FeatureId::DenseResourceAllocation, block.ra_dense[u]);
}

}  // namespace forumcast::serve
