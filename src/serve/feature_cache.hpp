// Per-user / per-question feature caching for the serving hot path.
//
// FeatureExtractor::features(u, q) rebuilds the full x_{u,q} vector from
// scratch on every call: it recomputes the user's median response time
// (a copy + nth_element per pair), re-reads per-user aggregates, and — the
// expensive part — evaluates a topic-similarity term against every question
// the user ever answered. Bulk scoring hits the same users and the same
// question over and over, so FeatureCache materializes
//   * one block per user   — a_u, o_u, v_u, r_u, d_u plus the four
//     centrality scores (everything that depends only on u), and
//   * one block per question — v_q, word/code lengths, d_q, the asker's
//     topic profile, and a table of topic similarities sim(d_r, d_q) for
//     every dataset question r, which turns the per-pair
//     TopicWeighted{QuestionsAnswered,AnswerVotes} loops from O(|answered|·K)
//     into O(|answered|) lookups.
// assemble() then writes x_{u,q} into a caller-provided row using exactly the
// arithmetic (and accumulation order) of FeatureExtractor::features, so the
// cached path is bit-identical to the reference implementation.
//
// Invalidation is generation based: sync() compares the pipeline's fit
// generation against the one the cache was built for and drops every block
// when they differ (the extractor object itself is replaced on refit, so
// stale blocks would dangle, not just mislead).
//
// FeatureCache itself is not synchronized; serve::BatchScorer wraps it in a
// reader/writer lock (fills take the writer side, assembly the reader side).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "features/extractor.hpp"
#include "forum/dataset.hpp"

namespace forumcast::serve {

struct FeatureCacheStats {
  std::uint64_t user_hits = 0;
  std::uint64_t user_misses = 0;
  std::uint64_t question_hits = 0;
  std::uint64_t question_misses = 0;
  std::uint64_t question_evictions = 0;
  /// Invalidation *events*: generation changes observed by sync() plus
  /// explicit invalidate() calls. One event may drop many blocks.
  std::uint64_t invalidations = 0;
  /// Blocks actually discarded by invalidation events: warmed user blocks
  /// plus question blocks (capacity evictions count separately above).
  std::uint64_t blocks_dropped = 0;
};

/// Which cached state a batch of live events made stale. Produced by
/// stream::DirtySet, consumed by FeatureCache::invalidate — see the contract
/// there.
struct CacheInvalidation {
  /// Graph structure changed: centralities and resource-allocation terms
  /// moved for everyone, so every block is stale.
  bool drop_all = false;
  /// Users whose aggregates, topic profile, or graph position changed. Their
  /// user block is dropped, their rows in surviving question blocks are
  /// repatched, and question blocks they asked are dropped (the asker's
  /// topic profile/participation feeds whole columns).
  std::vector<forum::UserId> users;
  /// Users whose cached *scalars* went stale without any pair-level change
  /// (e.g. the global median fallback moved for answerless users). Only the
  /// user block is dropped.
  std::vector<forum::UserId> scalar_users;
  /// Question blocks to drop outright (e.g. the thread that received the
  /// event, whose net votes / exclusion terms changed).
  std::vector<forum::QuestionId> questions;
};

class FeatureCache {
 public:
  /// `max_cached_questions` bounds the per-question block map; the map is
  /// cleared wholesale when it would exceed the cap (bulk scoring touches one
  /// question at a time, so anything beyond a small working set is cold).
  explicit FeatureCache(std::size_t max_cached_questions = 64);

  /// Binds the cache to the extractor of pipeline generation `generation`.
  /// A generation change invalidates every cached block.
  void sync(const features::FeatureExtractor& extractor,
            const forum::Dataset& dataset, std::uint64_t generation);

  /// Materializes blocks for any of `users` that miss. Requires sync().
  void warm_users(std::span<const forum::UserId> users);

  struct QuestionBlock {
    forum::QuestionId question = 0;
    forum::UserId asker = 0;
    double net_votes = 0.0;
    double word_length = 0.0;
    double code_length = 0.0;
    std::span<const double> topics;        ///< d_q (owned by the extractor)
    std::span<const double> asker_topics;  ///< d_v of the asker
    bool asker_in_thread = false;  ///< asker participates in thread q
    std::vector<double> similarity;        ///< sim(d_r, d_q) per question r

    // Per-user tables, indexed by UserId. Every pair feature that depends
    // only on (u, q) is computed once here — with exactly the calls and
    // accumulation order FeatureExtractor::features uses, so the values are
    // bit-identical — and assemble() degrades to plain lookups. One block
    // build costs a single scoring pass over all users; every cache hit
    // afterwards gets the pair features for free.
    std::vector<double> user_question_sim;  ///< sim(d_u, d_q)
    std::vector<double> user_asker_sim;     ///< sim(d_u, d_v)
    std::vector<double> weighted_answers;   ///< Σ sim over u's answered r≠q
    std::vector<double> weighted_votes;     ///< Σ votes·sim over answered r≠q
    std::vector<double> cooccurrence;       ///< corrected thread co-occurrence
    std::vector<double> ra_qa;              ///< QA-graph resource allocation
    std::vector<double> ra_dense;           ///< dense-graph resource allocation
  };

  /// Returns the block for `q`, building it on first use. The shared_ptr
  /// keeps the block alive across a later eviction. Requires sync().
  std::shared_ptr<const QuestionBlock> question_block(forum::QuestionId q);

  /// Fine-grained invalidation after in-place streamed updates (same
  /// extractor object, same generation). Contract, assuming the extractor
  /// has been stream_refresh()ed:
  ///   * drop_all — every warmed block is discarded;
  ///   * otherwise user blocks of `users` ∪ `scalar_users` are discarded,
  ///     question blocks of `questions` or asked by a user in `users` are
  ///     discarded, and every surviving question block is repaired
  ///     copy-on-write: its similarity table is extended to newly appended
  ///     dataset questions and the rows of `users` are recomputed with the
  ///     reference arithmetic.
  /// Afterwards assemble() via warm_users()/question_block() is again
  /// bit-identical to a cold cache over the updated extractor. No-op when
  /// the cache was never bound. Writer-side: callers synchronize like sync().
  void invalidate(const CacheInvalidation& invalidation);

  /// Writes x_{u,q} into `row` (`dimension()` wide). The user must have been
  /// warmed and `block` obtained from this cache since the last sync().
  /// Read-only: safe to call concurrently with other assemble() calls.
  void assemble(forum::UserId u, const QuestionBlock& block,
                std::span<double> row) const;

  std::size_t dimension() const;
  std::uint64_t generation() const { return generation_; }
  const FeatureCacheStats& stats() const { return stats_; }

 private:
  std::size_t user_stride() const;
  /// Recomputes every per-user pair-feature table entry of `block` for `u`
  /// with exactly the reference arithmetic (shared by the block build and
  /// invalidation repair paths).
  void fill_pair_entries(QuestionBlock& block, forum::UserId u) const;

  const features::FeatureExtractor* extractor_ = nullptr;
  const forum::Dataset* dataset_ = nullptr;
  std::uint64_t generation_ = 0;
  bool bound_ = false;
  std::size_t max_cached_questions_;

  // User blocks live in one flat rows × stride array (stride = 8 scalars
  // followed by the K entries of d_u); user_ready_ marks filled rows.
  std::vector<double> user_blocks_;
  std::vector<std::uint8_t> user_ready_;
  std::unordered_map<forum::QuestionId, std::shared_ptr<const QuestionBlock>>
      question_blocks_;

  FeatureCacheStats stats_;
};

}  // namespace forumcast::serve
