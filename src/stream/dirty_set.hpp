// DirtySet: the precise record of which cached serving state a batch of
// live events touched.
//
// Every LiveState apply marks exactly the users / questions whose feature
// state moved (the contract is documented per event type in live_state.cpp);
// drain() folds the marks into one serve::CacheInvalidation that
// serve::FeatureCache repairs fine-grained instead of dropping everything.
#pragma once

#include <algorithm>
#include <vector>

#include "forum/post.hpp"
#include "serve/feature_cache.hpp"

namespace forumcast::stream {

class DirtySet {
 public:
  /// Pair-level damage: u's user block, its rows in cached question blocks,
  /// and question blocks asked by u are all stale.
  void mark_user(forum::UserId u) { users_.push_back(u); }

  /// Scalar-only damage: only u's user block is stale (e.g. the global
  /// median fallback under an answerless user moved).
  void mark_user_scalars(forum::UserId u) { scalar_users_.push_back(u); }

  /// The cached block of question q is stale.
  void mark_question(forum::QuestionId q) { questions_.push_back(q); }

  /// Global damage (graph structure changed): everything is stale.
  void mark_all() { drop_all_ = true; }

  bool empty() const {
    return !drop_all_ && users_.empty() && scalar_users_.empty() &&
           questions_.empty();
  }

  std::size_t user_count() const { return users_.size(); }
  std::size_t question_count() const { return questions_.size(); }

  /// Deduplicates the marks into a CacheInvalidation and resets the set.
  serve::CacheInvalidation drain() {
    serve::CacheInvalidation invalidation;
    invalidation.drop_all = drop_all_;
    if (!drop_all_) {
      sort_unique(users_);
      sort_unique(scalar_users_);
      sort_unique(questions_);
      // A user marked pair-level supersedes a scalar mark.
      std::erase_if(scalar_users_, [&](forum::UserId u) {
        return std::binary_search(users_.begin(), users_.end(), u);
      });
      invalidation.users = std::move(users_);
      invalidation.scalar_users = std::move(scalar_users_);
      invalidation.questions = std::move(questions_);
    }
    drop_all_ = false;
    users_.clear();
    scalar_users_.clear();
    questions_.clear();
    return invalidation;
  }

 private:
  template <typename T>
  static void sort_unique(std::vector<T>& values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }

  bool drop_all_ = false;
  std::vector<forum::UserId> users_;
  std::vector<forum::UserId> scalar_users_;
  std::vector<forum::QuestionId> questions_;
};

}  // namespace forumcast::stream
