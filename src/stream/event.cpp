#include "stream/event.hpp"

#include <cstring>
#include <type_traits>

#include "artifact/artifact.hpp"

namespace forumcast::stream {

namespace {

template <typename T>
void append_raw(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));  // x86-64/aarch64: little-endian
}

template <typename T>
bool read_raw(std::string_view& data, T& value) {
  if (data.size() < sizeof(T)) return false;
  std::memcpy(&value, data.data(), sizeof(T));
  data.remove_prefix(sizeof(T));
  return true;
}

std::string encode_payload(const ForumEvent& event) {
  std::string payload;
  payload.reserve(40 + event.body.size());
  append_raw(payload, static_cast<std::uint8_t>(event.type));
  append_raw(payload, event.seq);
  append_raw(payload, event.timestamp_hours);
  append_raw(payload, event.user);
  append_raw(payload, event.question);
  append_raw(payload, event.answer_index);
  append_raw(payload, event.vote_delta);
  append_raw(payload, event.net_votes);
  append_raw(payload, static_cast<std::uint32_t>(event.body.size()));
  payload.append(event.body);
  return payload;
}

bool decode_payload(std::string_view payload, ForumEvent& event) {
  std::uint8_t type = 0;
  std::uint32_t body_len = 0;
  if (!read_raw(payload, type) || type > 2) return false;
  event.type = static_cast<EventType>(type);
  if (!read_raw(payload, event.seq) ||
      !read_raw(payload, event.timestamp_hours) ||
      !read_raw(payload, event.user) || !read_raw(payload, event.question) ||
      !read_raw(payload, event.answer_index) ||
      !read_raw(payload, event.vote_delta) ||
      !read_raw(payload, event.net_votes) || !read_raw(payload, body_len)) {
    return false;
  }
  if (payload.size() != body_len) return false;
  event.body.assign(payload.data(), payload.size());
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  // One checksum for every durable byte: the WAL and the model-artifact
  // bundle share the artifact-layer implementation.
  return artifact::crc32(data);
}

void append_event_record(std::string& out, const ForumEvent& event) {
  const std::string payload = encode_payload(event);
  append_raw(out, static_cast<std::uint32_t>(payload.size()));
  append_raw(out, crc32(payload));
  out.append(payload);
}

DecodeResult decode_event_record(std::string_view data) {
  DecodeResult result;
  std::string_view cursor = data;
  std::uint32_t length = 0;
  std::uint32_t checksum = 0;
  if (!read_raw(cursor, length)) return result;  // clean end
  if (!read_raw(cursor, checksum)) return result;
  if (cursor.size() < length) return result;  // torn tail: record cut short
  const std::string_view payload = cursor.substr(0, length);
  if (crc32(payload) != checksum || !decode_payload(payload, result.event)) {
    result.corrupt = true;
    return result;
  }
  result.bytes_consumed = sizeof(std::uint32_t) * 2 + length;
  return result;
}

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kNewQuestion: return "question";
    case EventType::kNewAnswer: return "answer";
    case EventType::kVote: return "vote";
  }
  return "unknown";
}

}  // namespace forumcast::stream
