// The append-only forum event log: the unit of live ingestion.
//
// A ForumEvent is one observed change to the forum — a new question thread,
// a new answer, or a vote — stamped with a monotonic sequence number and the
// event time in hours. stream::LiveState applies events incrementally; the
// same records are what the WAL persists and the snapshot compacts, so one
// binary codec (below) serves the whole durability path.
//
// Encoding: every record is [u32 payload_len][u32 crc32(payload)][payload],
// little-endian, with a fixed-layout payload (type, seq, timestamp, ids,
// vote fields, length-prefixed body). The CRC lets replay distinguish a
// torn tail write (crash mid-append) from a clean end of log.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "forum/post.hpp"

namespace forumcast::stream {

enum class EventType : std::uint8_t {
  kNewQuestion = 0,
  kNewAnswer = 1,
  kVote = 2,
};

struct ForumEvent {
  std::uint64_t seq = 0;  ///< monotonic id; 0 = unassigned (LiveState assigns)
  EventType type = EventType::kNewQuestion;
  double timestamp_hours = 0.0;
  /// Post creator for kNewQuestion / kNewAnswer; unused for kVote.
  forum::UserId user = 0;
  /// Target question. For kNewQuestion this is the id LiveState assigned
  /// (recorded after apply so replay is deterministic).
  forum::QuestionId question = 0;
  /// kVote: answer index within the thread, −1 for a vote on the question
  /// post. kNewAnswer: the index assigned on apply.
  std::int32_t answer_index = -1;
  /// kVote: signed vote delta.
  std::int32_t vote_delta = 0;
  /// Initial net votes carried by a new post (generators emit snapshots
  /// whose posts already hold votes; live platforms would send 0 + deltas).
  std::int32_t net_votes = 0;
  /// Post body HTML for new posts.
  std::string body;
};

/// IEEE CRC-32 (the zlib polynomial), table-driven.
std::uint32_t crc32(std::string_view data);

/// Appends one length+CRC framed record for `event` to `out`.
void append_event_record(std::string& out, const ForumEvent& event);

/// Result of pulling one record off a byte stream.
struct DecodeResult {
  ForumEvent event;
  std::size_t bytes_consumed = 0;  ///< 0 = no complete, valid record
  bool corrupt = false;            ///< framing/CRC failure (torn tail)
};

/// Decodes the record at the front of `data`. A short buffer yields
/// bytes_consumed = 0 with corrupt = false (clean end of log); a framing or
/// CRC mismatch yields corrupt = true.
DecodeResult decode_event_record(std::string_view data);

const char* event_type_name(EventType type);

}  // namespace forumcast::stream
