#include "stream/event_json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace forumcast::stream {

namespace {

// Minimal scanner for one flat JSON object of string/number values — the
// whole event schema. Strings support the standard escapes (\" \\ \/ \b \f
// \n \r \t \uXXXX, the latter emitted as UTF-8).
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(std::string_view text) : text_(text) {}

  void fail(const std::string& why) const {
    FORUMCAST_CHECK_MSG(false, "malformed event JSON at byte " +
                                   std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // post bodies in this pipeline are generated ASCII/UTF-8).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number: " + token);
    return value;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::int64_t as_integer(double value, const char* key) {
  const double rounded = std::nearbyint(value);
  FORUMCAST_CHECK_MSG(rounded == value, std::string("event field '") + key +
                                            "' must be an integer");
  return static_cast<std::int64_t>(rounded);
}

}  // namespace

ForumEvent parse_event_json(std::string_view line) {
  FlatJsonScanner scanner(line);
  ForumEvent event;
  std::string type_name;
  bool saw_type = false, saw_time = false, saw_user = false;
  bool saw_question = false, saw_delta = false;

  scanner.skip_ws();
  scanner.expect('{');
  if (!scanner.consume('}')) {
    do {
      const std::string key = scanner.parse_string();
      scanner.skip_ws();
      scanner.expect(':');
      if (key == "type") {
        type_name = scanner.parse_string();
        saw_type = true;
      } else if (key == "body") {
        event.body = scanner.parse_string();
      } else if (key == "time") {
        event.timestamp_hours = scanner.parse_number();
        saw_time = true;
      } else if (key == "seq") {
        event.seq = static_cast<std::uint64_t>(
            as_integer(scanner.parse_number(), "seq"));
      } else if (key == "user") {
        event.user = static_cast<forum::UserId>(
            as_integer(scanner.parse_number(), "user"));
        saw_user = true;
      } else if (key == "question") {
        event.question = static_cast<forum::QuestionId>(
            as_integer(scanner.parse_number(), "question"));
        saw_question = true;
      } else if (key == "answer") {
        event.answer_index = static_cast<std::int32_t>(
            as_integer(scanner.parse_number(), "answer"));
      } else if (key == "votes") {
        event.net_votes = static_cast<std::int32_t>(
            as_integer(scanner.parse_number(), "votes"));
      } else if (key == "delta") {
        event.vote_delta = static_cast<std::int32_t>(
            as_integer(scanner.parse_number(), "delta"));
        saw_delta = true;
      } else {
        scanner.fail("unknown key '" + key + "'");
      }
    } while (scanner.consume(','));
    scanner.skip_ws();
    scanner.expect('}');
  }
  FORUMCAST_CHECK_MSG(scanner.at_end(), "trailing bytes after event object");

  FORUMCAST_CHECK_MSG(saw_type, "event missing 'type'");
  FORUMCAST_CHECK_MSG(saw_time, "event missing 'time'");
  if (type_name == "question") {
    event.type = EventType::kNewQuestion;
    FORUMCAST_CHECK_MSG(saw_user, "question event missing 'user'");
  } else if (type_name == "answer") {
    event.type = EventType::kNewAnswer;
    FORUMCAST_CHECK_MSG(saw_user, "answer event missing 'user'");
    FORUMCAST_CHECK_MSG(saw_question, "answer event missing 'question'");
    event.answer_index = -1;  // assigned on apply
  } else if (type_name == "vote") {
    event.type = EventType::kVote;
    FORUMCAST_CHECK_MSG(saw_question, "vote event missing 'question'");
    FORUMCAST_CHECK_MSG(saw_delta, "vote event missing 'delta'");
  } else {
    FORUMCAST_CHECK_MSG(false, "unknown event type '" + type_name + "'");
  }
  return event;
}

std::string event_to_json(const ForumEvent& event) {
  std::string out = "{\"type\":\"";
  out += event_type_name(event.type);
  out += "\"";
  if (event.seq != 0) {
    out += ",\"seq\":" + std::to_string(event.seq);
  }
  out += ",\"time\":";
  obs::detail::append_json_number(out, event.timestamp_hours);
  switch (event.type) {
    case EventType::kNewQuestion:
      out += ",\"user\":" + std::to_string(event.user);
      out += ",\"votes\":" + std::to_string(event.net_votes);
      out += ",\"body\":";
      obs::detail::append_json_escaped(out, event.body);
      break;
    case EventType::kNewAnswer:
      out += ",\"user\":" + std::to_string(event.user);
      out += ",\"question\":" + std::to_string(event.question);
      out += ",\"votes\":" + std::to_string(event.net_votes);
      out += ",\"body\":";
      obs::detail::append_json_escaped(out, event.body);
      break;
    case EventType::kVote:
      out += ",\"question\":" + std::to_string(event.question);
      out += ",\"answer\":" + std::to_string(event.answer_index);
      out += ",\"delta\":" + std::to_string(event.vote_delta);
      break;
  }
  out += "}";
  return out;
}

std::vector<ForumEvent> load_events_jsonl(const std::string& path) {
  std::ifstream in(path);
  FORUMCAST_CHECK_MSG(in.good(), "cannot open events file: " + path);
  std::vector<ForumEvent> events;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      events.push_back(parse_event_json(line));
    } catch (const util::CheckError& error) {
      FORUMCAST_CHECK_MSG(false, path + ":" + std::to_string(line_number) +
                                     ": " + error.what());
    }
  }
  return events;
}

void save_events_jsonl(const std::string& path,
                       std::span<const ForumEvent> events) {
  std::ofstream out(path);
  FORUMCAST_CHECK_MSG(out.good(), "cannot write events file: " + path);
  for (const ForumEvent& event : events) {
    out << event_to_json(event) << '\n';
  }
  FORUMCAST_CHECK_MSG(out.good(), "failed writing events file: " + path);
}

}  // namespace forumcast::stream
