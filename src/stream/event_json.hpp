// JSONL (one JSON object per line) codec for ForumEvent — the CLI ingest
// format. obs/json.hpp is emission-only by design, so the tiny flat-object
// parser the ingest path needs lives here.
//
// Schema (unknown keys are rejected; `seq` is optional and usually omitted —
// LiveState assigns sequence numbers on apply):
//   {"type":"question","user":12,"time":725.5,"votes":0,"body":"..."}
//   {"type":"answer","user":9,"question":140,"time":726.0,"votes":1,"body":"..."}
//   {"type":"vote","question":140,"answer":0,"time":726.5,"delta":1}
// A vote with "answer":-1 (or without "answer") targets the question post.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stream/event.hpp"

namespace forumcast::stream {

/// Parses one JSONL line. Throws util::CheckError with context on malformed
/// input (bad JSON, unknown type/key, missing required field).
ForumEvent parse_event_json(std::string_view line);

/// The inverse: one JSON object, no trailing newline.
std::string event_to_json(const ForumEvent& event);

/// Loads every non-empty line of a JSONL file. Throws on unreadable file or
/// malformed line (the error names the line number).
std::vector<ForumEvent> load_events_jsonl(const std::string& path);

void save_events_jsonl(const std::string& path,
                       std::span<const ForumEvent> events);

}  // namespace forumcast::stream
