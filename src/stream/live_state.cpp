#include "stream/live_state.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "features/extractor.hpp"
#include "obs/monitor/monitor.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/digest.hpp"

namespace forumcast::stream {

namespace {

forum::Post post_from_event(const ForumEvent& event) {
  forum::Post post;
  post.creator = event.user;
  post.timestamp_hours = event.timestamp_hours;
  post.net_votes = event.net_votes;
  post.body_html = event.body;
  return post;
}

}  // namespace

LiveState::LiveState(core::ForecastPipeline& pipeline, forum::Dataset& dataset,
                     LiveStateConfig config)
    : pipeline_(pipeline), dataset_(dataset), config_(std::move(config)) {
  FORUMCAST_CHECK_MSG(pipeline_.fitted(),
                      "LiveState requires a fitted pipeline");
  FORUMCAST_CHECK_MSG(&pipeline_.dataset() == &dataset_,
                      "LiveState dataset must be the pipeline's dataset "
                      "object — ingestion mutates it in place");
  last_event_time_ = dataset_.last_post_time();

  if (!config_.wal_dir.empty()) {
    std::filesystem::create_directories(config_.wal_dir);
    if (config_.save_model_bundle) {
      // Written *before* replay: the bundle must capture the fit-time model
      // — recovery re-applies every streamed event on top of it, so a
      // bundle written after replay would double-apply the streamed state.
      std::ostringstream bundle;
      pipeline_.save(bundle);
      write_file_atomic(model_bundle_path(config_.wal_dir),
                        std::move(bundle).str());
      model_ref_ = "model.fcm";
    }
    const RecoveredLog recovered = recover_log(config_.wal_dir);
    recovered_truncated_tail_ = recovered.truncated_tail;
    if (!recovered.events.empty()) {
      FORUMCAST_SPAN("stream.recover");
      const double median_before =
          pipeline_.extractor().global_median_response();
      for (const ForumEvent& event : recovered.events) {
        apply_locked(event, /*durable=*/false);
      }
      events_recovered_ = recovered.events.size();
      finish_batch_locked(median_before);  // no scorers attached yet
      FORUMCAST_COUNTER_ADD("stream.events.recovered", events_recovered_);
    }
    if (recovered.truncated_tail) {
      // Drop the torn record before appending again — O_APPEND would put
      // new records after the garbage, unreachable on the next recovery.
      std::filesystem::resize_file(wal_path(config_.wal_dir),
                                   recovered.wal_valid_bytes);
    }
    // Open for append only after replay so a recovery failure leaves the
    // log untouched.
    wal_ = std::make_unique<WalWriter>(wal_path(config_.wal_dir));
  }
}

LiveState::~LiveState() = default;

std::unique_lock<std::shared_mutex> LiveState::writer_lock() const {
  writers_waiting_.fetch_add(1, std::memory_order_acq_rel);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  writers_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  return lock;
}

std::shared_lock<std::shared_mutex> LiveState::reader_lock() const {
  // The hold-off is advisory (a writer may register right after the check);
  // it only needs to keep a steady reader stream from starving writers.
  while (writers_waiting_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  return std::shared_lock<std::shared_mutex>(mutex_);
}

std::shared_ptr<void> LiveState::read_guard() const {
  return std::make_shared<std::shared_lock<std::shared_mutex>>(reader_lock());
}

std::size_t LiveState::ingest(std::span<const ForumEvent> events) {
  if (events.empty()) return 0;
  FORUMCAST_SPAN("stream.ingest");
  auto lock = writer_lock();
  const double median_before = pipeline_.extractor().global_median_response();
  std::size_t applied = 0;
  try {
    for (const ForumEvent& event : events) {
      apply_locked(event, /*durable=*/true);
      ++applied;
    }
  } catch (...) {
    // Events before the bad one are applied and logged; derived state must
    // still be made consistent before rethrowing.
    finish_batch_locked(median_before);
    throw;
  }
  finish_batch_locked(median_before);
  FORUMCAST_COUNTER_ADD("stream.events.applied", applied);
  FORUMCAST_GAUGE_SET("stream.last_seq", static_cast<double>(last_seq_));
  return applied;
}

std::size_t LiveState::apply_locked(ForumEvent event, bool durable) {
  if (event.seq == 0) event.seq = last_seq_ + 1;
  FORUMCAST_CHECK_MSG(event.seq == last_seq_ + 1,
                      "event sequence gap: expected " << (last_seq_ + 1)
                                                      << ", got " << event.seq);
  FORUMCAST_CHECK_MSG(
      event.timestamp_hours >= last_event_time_,
      "events must be time-ordered: " << event.timestamp_hours << " < "
                                      << last_event_time_);

  features::FeatureExtractor& extractor = pipeline_.extractor_mutable();
  const auto start = std::chrono::steady_clock::now();
  switch (event.type) {
    case EventType::kNewQuestion: {
      const forum::QuestionId q = dataset_.append_thread(post_from_event(event));
      event.question = q;  // recorded in the log so replay is deterministic
      extractor.stream_add_question(q);
      // o_u and participation moved; blocks asked by u are dropped and u's
      // rows repatched via the `users` category. Surviving blocks grow their
      // similarity tables inside FeatureCache::invalidate.
      dirty_.mark_user(event.user);
      if (monitor_ != nullptr) {
        monitor_->observe_question(q, event.timestamp_hours);
      }
      FORUMCAST_COUNTER_ADD("stream.events.question", 1);
      break;
    }
    case EventType::kNewAnswer: {
      FORUMCAST_CHECK_MSG(event.question < dataset_.num_questions(),
                          "answer to unknown question " << event.question);
      const std::size_t index =
          dataset_.append_answer(event.question, post_from_event(event));
      event.answer_index = static_cast<std::int32_t>(index);
      const bool edges_added =
          extractor.stream_add_answer(event.question, index);
      // a_u, v_u, r_u, d_u and the answered list all moved → pair-level; the
      // receiving thread's cached block is stale (participants changed); a
      // new graph edge shifts centralities for every node.
      dirty_.mark_user(event.user);
      dirty_.mark_question(event.question);
      if (edges_added) dirty_.mark_all();
      if (monitor_ != nullptr) {
        // Realized response delay = answer time − the question's post time,
        // the quantity the timing model predicts (paper Sec. III-B).
        const double delay =
            event.timestamp_hours -
            dataset_.thread(event.question).question.timestamp_hours;
        monitor_->observe_answer(event.question, event.user, delay,
                                 event.timestamp_hours);
      }
      FORUMCAST_COUNTER_ADD("stream.events.answer", 1);
      break;
    }
    case EventType::kVote: {
      FORUMCAST_CHECK_MSG(event.question < dataset_.num_questions(),
                          "vote on unknown question " << event.question);
      dataset_.apply_vote(event.question, event.answer_index,
                          event.vote_delta);
      if (event.answer_index < 0) {
        // v_q lives in the question block only.
        dirty_.mark_question(event.question);
      } else {
        const forum::UserId creator =
            dataset_.thread(event.question)
                .answers[static_cast<std::size_t>(event.answer_index)]
                .creator;
        extractor.stream_apply_answer_vote(
            event.question, static_cast<std::size_t>(event.answer_index),
            event.vote_delta);
        // v_u and the creator's answered_votes feed its rows everywhere.
        dirty_.mark_user(creator);
        if (monitor_ != nullptr) {
          // Re-sample the RMSE join against the answer's *running total*:
          // the predicted score targets the net votes the answer settles at,
          // so each vote refreshes the realized side.
          const double net = static_cast<double>(
              dataset_.thread(event.question)
                  .answers[static_cast<std::size_t>(event.answer_index)]
                  .net_votes);
          monitor_->observe_vote(event.question, creator, net,
                                 event.timestamp_hours);
        }
      }
      FORUMCAST_COUNTER_ADD("stream.events.vote", 1);
      break;
    }
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  FORUMCAST_HISTOGRAM_OBSERVE("stream.apply_ms", ms, 0.01, 0.1, 1, 10, 100);

  last_seq_ = event.seq;
  last_event_time_ = event.timestamp_hours;
  ++events_since_snapshot_;
  if (durable && wal_) wal_->append(event);
  applied_.push_back(std::move(event));
  return 1;
}

void LiveState::finish_batch_locked(double global_median_before) {
  // Durability first: the batch must be on disk before any observer (an
  // attached scorer, a returning caller) can act on it.
  if (wal_ && wal_->records_appended() > 0) wal_->sync();

  features::FeatureExtractor& extractor = pipeline_.extractor_mutable();
  extractor.stream_refresh();

  // A moved global median shifts the r_u fallback under every user with no
  // window answers — scalar-only damage (their pair tables don't read r_u).
  if (extractor.global_median_response() != global_median_before) {
    for (forum::UserId u = 0;
         u < static_cast<forum::UserId>(dataset_.num_users()); ++u) {
      if (extractor.user_stats(u).answers_provided == 0) {
        dirty_.mark_user_scalars(u);
      }
    }
  }

  if (!dirty_.empty()) {
    FORUMCAST_GAUGE_SET("stream.dirty.users",
                        static_cast<double>(dirty_.user_count()));
    FORUMCAST_GAUGE_SET("stream.dirty.questions",
                        static_cast<double>(dirty_.question_count()));
    const serve::CacheInvalidation invalidation = dirty_.drain();
    // Still under our writer lock: lock order LiveState → scorer matches
    // score(), so a concurrent scorer either sees the old cache before this
    // batch or the repaired one after it — never a half-applied mix.
    for (serve::BatchScorer* scorer : scorers_) {
      scorer->invalidate(invalidation);
    }
  }
  // Event time, not wall time, drives SLO evaluation — replayed history and
  // live traffic behave identically. Our writer lock and the scorer path's
  // reader lock are mutually exclusive, so monitor calls can't interleave
  // with record_batch() from the same LiveState's traffic.
  if (monitor_ != nullptr) monitor_->maybe_evaluate(last_event_time_);
  maybe_snapshot_locked();
}

void LiveState::maybe_snapshot_locked() {
  if (config_.wal_dir.empty() || config_.snapshot_every == 0) return;
  if (events_since_snapshot_ < config_.snapshot_every) return;
  write_snapshot(snapshot_path(config_.wal_dir), applied_, last_seq_,
                 model_ref_);
  events_since_snapshot_ = 0;
}

void LiveState::snapshot_now() {
  auto lock = writer_lock();
  if (config_.wal_dir.empty()) return;
  write_snapshot(snapshot_path(config_.wal_dir), applied_, last_seq_,
                 model_ref_);
  events_since_snapshot_ = 0;
}

void LiveState::attach(serve::BatchScorer* scorer) {
  FORUMCAST_CHECK(scorer != nullptr);
  auto lock = writer_lock();
  if (std::find(scorers_.begin(), scorers_.end(), scorer) == scorers_.end()) {
    scorers_.push_back(scorer);
  }
}

void LiveState::detach(serve::BatchScorer* scorer) {
  auto lock = writer_lock();
  std::erase(scorers_, scorer);
}

void LiveState::attach_monitor(obs::monitor::QualityMonitor* monitor) {
  auto lock = writer_lock();
  monitor_ = monitor;
}

core::Prediction LiveState::predict(forum::UserId u,
                                    forum::QuestionId q) const {
  auto lock = reader_lock();
  return pipeline_.predict(u, q);
}

std::vector<core::Prediction> LiveState::score(
    const serve::BatchScorer& scorer, forum::QuestionId question,
    std::span<const forum::UserId> users) const {
  auto lock = reader_lock();
  return scorer.score(question, users);
}

std::uint64_t LiveState::last_seq() const {
  auto lock = reader_lock();
  return last_seq_;
}

std::size_t LiveState::events_applied() const {
  auto lock = reader_lock();
  return applied_.size();
}

std::vector<ForumEvent> LiveState::event_log() const {
  auto lock = reader_lock();
  return applied_;
}

std::uint64_t LiveState::digest() const {
  auto lock = reader_lock();
  return digest_locked();
}

std::uint64_t LiveState::digest_locked() const {
  const features::FeatureExtractor& extractor = pipeline_.extractor();
  util::Fnv1a hash;

  const std::size_t num_users = dataset_.num_users();
  const std::size_t num_questions = dataset_.num_questions();
  hash.u64(num_users);
  hash.u64(num_questions);
  hash.f64(extractor.global_median_response());

  for (forum::UserId u = 0; u < num_users; ++u) {
    const auto& stats = extractor.user_stats(u);
    hash.u64(stats.answers_provided);
    hash.u64(stats.questions_asked);
    hash.f64(stats.net_answer_votes);
    hash.f64s(stats.answer_votes);
    hash.f64s(stats.response_times);
    hash.f64s(stats.topic_distribution);
    hash.f64s(stats.answered_votes);
    hash.u64(stats.answered.size());
    for (const forum::QuestionId q : stats.answered) hash.u64(q);
    hash.u64(stats.participated.size());
    for (const forum::QuestionId q : stats.participated) hash.u64(q);
  }

  for (forum::QuestionId q = 0; q < num_questions; ++q) {
    hash.f64s(extractor.question_topics(q));
    hash.f64(extractor.question_word_length(q));
    hash.f64(extractor.question_code_length(q));
    hash.f64(static_cast<double>(dataset_.thread(q).question.net_votes));
    hash.u64(dataset_.thread(q).answers.size());
  }

  for (const graph::Graph* g :
       {&extractor.qa_graph(), &extractor.dense_graph()}) {
    hash.u64(g->edge_count());
    for (graph::NodeId n = 0; n < g->node_count(); ++n) {
      for (const graph::NodeId v : g->neighbors(n)) hash.u64(v);
    }
  }
  hash.f64s(extractor.qa_closeness());
  hash.f64s(extractor.qa_betweenness());
  hash.f64s(extractor.dense_closeness());
  hash.f64s(extractor.dense_betweenness());
  return hash.value();
}

forum::Dataset dataset_from_events(const forum::Dataset& base,
                                   std::span<const ForumEvent> events) {
  forum::Dataset dataset = base;
  for (const ForumEvent& event : events) {
    switch (event.type) {
      case EventType::kNewQuestion: {
        const forum::QuestionId q = dataset.append_thread(post_from_event(event));
        FORUMCAST_CHECK_MSG(q == event.question,
                            "event log question id mismatch: " << q << " vs "
                                                               << event.question);
        break;
      }
      case EventType::kNewAnswer: {
        const std::size_t index =
            dataset.append_answer(event.question, post_from_event(event));
        FORUMCAST_CHECK_MSG(
            event.answer_index < 0 ||
                static_cast<std::int32_t>(index) == event.answer_index,
            "event log answer index mismatch");
        break;
      }
      case EventType::kVote:
        dataset.apply_vote(event.question, event.answer_index,
                           event.vote_delta);
        break;
    }
  }
  return dataset;
}

}  // namespace forumcast::stream
