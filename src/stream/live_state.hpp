// LiveState: the streaming ingestion core.
//
// A fitted ForecastPipeline is a function of a forum snapshot. LiveState
// keeps that snapshot *live*: ingest() applies ForumEvents (new questions,
// new answers, votes) incrementally — mutating the shared forum::Dataset,
// updating the FeatureExtractor's aggregates / topic fold-ins / SLN graphs
// in place, and handing attached serve::BatchScorers a fine-grained
// CacheInvalidation describing exactly which users and questions each batch
// touched. The predictors themselves stay frozen at their fit (that is the
// serving model of the paper's Sec. IV: fit on a history window, score live
// arrivals), so after every ingest the system's predictions are bit-identical
// to rebuilding the dataset from (base + events) and re-deriving feature
// state from scratch — the replay-equivalence property the tests enforce.
//
// Durability: with a wal_dir configured, every applied event is appended to a
// write-ahead log and fsynced once per ingest batch before ingest() returns;
// every `snapshot_every` events the full applied sequence is compacted into
// an atomic snapshot. Constructing a LiveState over the same wal_dir replays
// snapshot + WAL tail, reconstructing the exact pre-crash state (same
// digest()). See wal.hpp for the on-disk format.
//
// Thread safety: ingest() takes a writer lock; predict()/score() take a
// reader lock, so scoring runs concurrently with other scoring and is
// serialized against mutation. Scorer invalidation happens while the writer
// lock is still held (lock order LiveState → scorer everywhere), so a scorer
// can never assemble features from a half-applied batch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "forum/dataset.hpp"
#include "serve/batch_scorer.hpp"
#include "stream/dirty_set.hpp"
#include "stream/event.hpp"
#include "stream/wal.hpp"

namespace forumcast::obs::monitor {
class QualityMonitor;
}  // namespace forumcast::obs::monitor

namespace forumcast::stream {

struct LiveStateConfig {
  /// Directory for WAL + snapshots; empty disables durability. If the
  /// directory already holds a log, the constructor recovers from it.
  std::string wal_dir;
  /// Write a compacted snapshot every N applied events (0 = never).
  std::size_t snapshot_every = 0;
  /// Write the fitted pipeline as a model bundle (<wal_dir>/model.fcm)
  /// before replaying recovery, and reference it from every snapshot —
  /// one directory then restores both models and events: load the bundle
  /// against the base dataset, construct a LiveState over it, and the
  /// snapshot + WAL replay reproduces the pre-crash serving state. The
  /// bundle must capture the *fit-time* model (replay re-applies every
  /// streamed event on top), which is why it is written before recovery.
  bool save_model_bundle = true;
};

class LiveState {
 public:
  /// `pipeline` must be fitted on `dataset` (the same object — LiveState
  /// mutates it in place) with its inference window covering every dataset
  /// question. Both must outlive the LiveState. If config.wal_dir holds a
  /// previous log, it is replayed before the constructor returns.
  LiveState(core::ForecastPipeline& pipeline, forum::Dataset& dataset,
            LiveStateConfig config = {});
  ~LiveState();
  LiveState(const LiveState&) = delete;
  LiveState& operator=(const LiveState&) = delete;

  /// Applies `events` in order under the writer lock: mutate dataset →
  /// update extractor → refresh derived state → invalidate attached scorers
  /// → append + fsync WAL. Returns the number of events applied. Throws
  /// util::CheckError on an invalid event (unknown user, out-of-range
  /// question, non-monotonic timestamp); events before the bad one stay
  /// applied and logged.
  std::size_t ingest(std::span<const ForumEvent> events);

  /// Registers a scorer for fine-grained invalidation on every ingest. The
  /// scorer must be built over this LiveState's pipeline and outlive it (or
  /// be detached). Score through it only via this->score() — the reader
  /// lock is what keeps assembly off half-applied batches.
  void attach(serve::BatchScorer* scorer);
  void detach(serve::BatchScorer* scorer);

  /// Registers the model-quality monitor: every applied event becomes a
  /// typed outcome fact — NewAnswer resolves the question's ledgered
  /// predictions (with the realized first-answer delay), Vote feeds the
  /// vote-RMSE join — and the end of each ingest batch drives the monitor's
  /// event-time SLO timer. Attached after construction, so WAL recovery
  /// replay is never observed (those outcomes predate the ledger). The
  /// monitor must outlive the LiveState or be detached (nullptr detaches).
  void attach_monitor(obs::monitor::QualityMonitor* monitor);

  /// pipeline.predict(u, q) under the reader lock.
  core::Prediction predict(forum::UserId u, forum::QuestionId q) const;

  /// scorer.score(question, users) under the reader lock.
  std::vector<core::Prediction> score(
      const serve::BatchScorer& scorer, forum::QuestionId question,
      std::span<const forum::UserId> users) const;

  /// Sequence number of the last applied event (0 before any).
  std::uint64_t last_seq() const;
  std::size_t events_applied() const;
  /// Events replayed from the WAL/snapshot by the constructor.
  std::size_t events_recovered() const { return events_recovered_; }
  /// True if recovery hit a torn WAL tail (crash during append).
  bool recovered_truncated_tail() const { return recovered_truncated_tail_; }

  /// The applied event log, with assigned seq / question ids / answer
  /// indices — replaying it into a copy of the base dataset reproduces the
  /// live one exactly.
  std::vector<ForumEvent> event_log() const;

  /// FNV-1a digest over the observable feature state (per-user aggregates,
  /// topic profiles, graphs, centralities, question topics, global median):
  /// equal digests ⇒ bit-identical serving state. Used by the crash-recovery
  /// and replay-equivalence tests.
  std::uint64_t digest() const;

  /// Forces a snapshot of the full applied log (no-op without a wal_dir).
  void snapshot_now();

  /// The model bundle reference snapshots carry ("model.fcm" when the
  /// constructor wrote one, empty otherwise).
  const std::string& model_ref() const { return model_ref_; }

  /// An opaque token holding the reader lock — the hook the serving layer's
  /// BatcherConfig::read_guard wants: net code scores safely against
  /// concurrent ingest without depending on stream types. Release by
  /// dropping the pointer.
  std::shared_ptr<void> read_guard() const;

 private:
  // Writer-priority locking. pthread's rwlock (behind std::shared_mutex on
  // glibc) prefers readers, so a continuous scoring load would starve ingest
  // forever. Writers announce themselves; new readers hold off while any
  // writer is waiting.
  std::unique_lock<std::shared_mutex> writer_lock() const;
  std::shared_lock<std::shared_mutex> reader_lock() const;

  std::size_t apply_locked(ForumEvent event, bool durable);
  void finish_batch_locked(double global_median_before);
  void maybe_snapshot_locked();
  std::uint64_t digest_locked() const;

  core::ForecastPipeline& pipeline_;
  forum::Dataset& dataset_;
  LiveStateConfig config_;

  mutable std::shared_mutex mutex_;
  mutable std::atomic<int> writers_waiting_{0};
  DirtySet dirty_;
  std::vector<serve::BatchScorer*> scorers_;
  obs::monitor::QualityMonitor* monitor_ = nullptr;

  std::vector<ForumEvent> applied_;  ///< the durable log, seq-stamped
  std::string model_ref_;            ///< bundle file name snapshots reference
  std::uint64_t last_seq_ = 0;
  double last_event_time_ = 0.0;
  std::size_t events_since_snapshot_ = 0;
  std::size_t events_recovered_ = 0;
  bool recovered_truncated_tail_ = false;

  std::unique_ptr<WalWriter> wal_;
};

/// Replays `events` (an applied log: seq-stamped, question ids and answer
/// indices assigned) into a copy of `base`, returning the dataset LiveState
/// would have produced — the reference side of the replay-equivalence tests.
forum::Dataset dataset_from_events(const forum::Dataset& base,
                                   std::span<const ForumEvent> events);

}  // namespace forumcast::stream
