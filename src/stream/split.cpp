#include "stream/split.hpp"

#include <algorithm>
#include <cstddef>

namespace forumcast::stream {

namespace {

ForumEvent question_event(const forum::Post& post) {
  ForumEvent event;
  event.type = EventType::kNewQuestion;
  event.timestamp_hours = post.timestamp_hours;
  event.user = post.creator;
  event.net_votes = 0;  // final votes arrive as a Vote event
  event.body = post.body_html;
  return event;
}

ForumEvent answer_event(forum::QuestionId question, const forum::Post& post) {
  ForumEvent event;
  event.type = EventType::kNewAnswer;
  event.timestamp_hours = post.timestamp_hours;
  event.user = post.creator;
  event.question = question;
  event.net_votes = 0;
  event.body = post.body_html;
  return event;
}

ForumEvent vote_event(forum::QuestionId question, std::int32_t answer_index,
                      int delta, double time) {
  ForumEvent event;
  event.type = EventType::kVote;
  event.timestamp_hours = time;
  event.question = question;
  event.answer_index = answer_index;
  event.vote_delta = delta;
  return event;
}

}  // namespace

EventSplit split_events_after(const forum::Dataset& dataset,
                              double cutoff_hours, double vote_delay_hours) {
  const auto& threads = dataset.threads();

  // Pass 1: base thread ids. Kept threads keep their relative order (so the
  // base id is the count of kept threads before them); streamed questions
  // get contiguous ids past the base in question-timestamp order — exactly
  // the order their NewQuestion events replay in.
  std::vector<forum::QuestionId> base_id(threads.size(), 0);
  std::vector<std::size_t> streamed;  // original thread indices, t_q > cutoff
  forum::QuestionId next_base = 0;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (threads[i].question.timestamp_hours <= cutoff_hours) {
      base_id[i] = next_base++;
    } else {
      streamed.push_back(i);
    }
  }
  std::stable_sort(streamed.begin(), streamed.end(),
                   [&](std::size_t a, std::size_t b) {
                     return threads[a].question.timestamp_hours <
                            threads[b].question.timestamp_hours;
                   });
  for (std::size_t rank = 0; rank < streamed.size(); ++rank) {
    base_id[streamed[rank]] = next_base + static_cast<forum::QuestionId>(rank);
  }

  // Pass 2: base threads (answers ≤ cutoff) and the event stream.
  EventSplit split;
  std::vector<forum::Thread> base_threads;
  base_threads.reserve(next_base);
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const forum::Thread& thread = threads[i];
    const forum::QuestionId id = base_id[i];
    const bool thread_streamed =
        thread.question.timestamp_hours > cutoff_hours;
    std::size_t answer_index = 0;
    if (thread_streamed) {
      split.events.push_back(question_event(thread.question));
      split.events.back().question = id;  // the id LiveState will assign
      if (thread.question.net_votes != 0) {
        split.events.push_back(vote_event(
            id, -1, thread.question.net_votes,
            thread.question.timestamp_hours + vote_delay_hours));
      }
    } else {
      forum::Thread base_thread;
      base_thread.question = thread.question;
      for (const forum::Post& answer : thread.answers) {
        if (answer.timestamp_hours <= cutoff_hours) {
          base_thread.answers.push_back(answer);
          ++answer_index;
        }
      }
      base_threads.push_back(std::move(base_thread));
    }
    for (const forum::Post& answer : thread.answers) {
      if (answer.timestamp_hours <= cutoff_hours) continue;
      split.events.push_back(answer_event(id, answer));
      // The index append_answer will assign — lets the raw stream replay
      // through dataset_from_events without first passing through LiveState.
      split.events.back().answer_index = static_cast<std::int32_t>(answer_index);
      if (answer.net_votes != 0) {
        split.events.push_back(
            vote_event(id, static_cast<std::int32_t>(answer_index),
                       answer.net_votes,
                       answer.timestamp_hours + vote_delay_hours));
      }
      ++answer_index;
    }
  }

  // Stable by time: construction order already respects causality (question
  // before its answers, post before its vote), so ties replay correctly.
  std::stable_sort(split.events.begin(), split.events.end(),
                   [](const ForumEvent& a, const ForumEvent& b) {
                     return a.timestamp_hours < b.timestamp_hours;
                   });
  split.base = forum::Dataset(std::move(base_threads), dataset.num_users());
  return split;
}

}  // namespace forumcast::stream
