// Splits a complete forum dataset into (base snapshot, event stream).
//
// Everything posted at or before the cutoff becomes the base dataset a
// pipeline fits on; everything after becomes a time-ordered ForumEvent
// stream whose replay into the base reproduces the original forum's
// activity: new questions and answers arrive with zero votes, and each
// post's final net votes land as a separate Vote event shortly after the
// post. Ids in the event stream anticipate LiveState's assignment rule
// (next contiguous question id, next answer index in the thread), so the
// stream applies cleanly to the base in order.
//
// This is both the `generate --events-out` implementation and the fixture
// the replay-equivalence tests stream from.
#pragma once

#include <vector>

#include "forum/dataset.hpp"
#include "stream/event.hpp"

namespace forumcast::stream {

struct EventSplit {
  forum::Dataset base;
  std::vector<ForumEvent> events;  ///< sorted by timestamp, causally ordered
};

/// Splits `dataset` at `cutoff_hours`. Questions posted after the cutoff are
/// removed from the base along with every answer posted after it; the
/// removed activity returns as events. Vote events are offset
/// `vote_delay_hours` after their post so they replay strictly later.
EventSplit split_events_after(const forum::Dataset& dataset,
                              double cutoff_hours,
                              double vote_delay_hours = 1e-3);

}  // namespace forumcast::stream
