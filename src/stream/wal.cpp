#include "stream/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace forumcast::stream {

namespace {

constexpr char kSnapshotMagic[4] = {'F', 'C', 'S', 'N'};
// v1: header + event records. v2 appends a model-bundle reference (u64
// length + bytes) between the header and the records; v1 files still read.
constexpr std::uint32_t kSnapshotVersion = 2;

std::string read_file(const std::string& path, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    exists = false;
    return {};
  }
  exists = true;
  std::ostringstream contents;
  contents << in.rdbuf();
  return std::move(contents).str();
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  while (size > 0) {
    const ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      FORUMCAST_CHECK_MSG(false, "write failed: " + path + ": " +
                                     std::strerror(errno));
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
}

}  // namespace

std::string wal_path(const std::string& dir) { return dir + "/wal.bin"; }
std::string snapshot_path(const std::string& dir) {
  return dir + "/snapshot.bin";
}
std::string model_bundle_path(const std::string& dir) {
  return dir + "/model.fcm";
}

WalWriter::WalWriter(const std::string& path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  FORUMCAST_CHECK_MSG(fd_ >= 0, "cannot open WAL for append: " + path + ": " +
                                    std::strerror(errno));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    sync();
    ::close(fd_);
  }
}

void WalWriter::append(const ForumEvent& event) {
  append_event_record(buffer_, event);
  ++records_appended_;
  FORUMCAST_COUNTER_ADD("stream.wal.records", 1);
}

void WalWriter::sync() {
  const auto start = std::chrono::steady_clock::now();
  if (!buffer_.empty()) {
    write_all(fd_, buffer_.data(), buffer_.size(), "wal");
    FORUMCAST_COUNTER_ADD("stream.wal.bytes", buffer_.size());
    buffer_.clear();
  }
  FORUMCAST_CHECK_MSG(::fsync(fd_) == 0,
                      std::string("WAL fsync failed: ") + std::strerror(errno));
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  FORUMCAST_HISTOGRAM_OBSERVE("stream.wal.fsync_ms", ms, 0.01, 0.1, 1, 10,
                              100);
  FORUMCAST_COUNTER_ADD("stream.wal.fsyncs", 1);
}

WalReader::WalReader(std::string path, std::uint64_t start_offset)
    : path_(std::move(path)), offset_(start_offset) {}

std::size_t WalReader::poll(std::vector<ForumEvent>& out,
                            std::size_t max_records) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;  // not written yet; the writer may create it later
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in.good()) return 0;
  std::ostringstream tail;
  tail << in.rdbuf();
  const std::string bytes = std::move(tail).str();

  std::string_view cursor(bytes);
  std::size_t added = 0;
  while (added < max_records && !cursor.empty()) {
    DecodeResult decoded = decode_event_record(cursor);
    if (decoded.bytes_consumed == 0) {
      // Torn tail: the writer is mid-append (or a crash left a partial
      // record that recovery will truncate). Hold position and retry on
      // the next poll — this is "wait", never "corrupt".
      break;
    }
    cursor.remove_prefix(decoded.bytes_consumed);
    offset_ += decoded.bytes_consumed;
    last_seq_ = decoded.event.seq;
    if (skip_through_seq_ != 0) {
      if (decoded.event.seq <= skip_through_seq_) continue;  // still seeking
      skip_through_seq_ = 0;
    }
    out.push_back(std::move(decoded.event));
    ++added;
  }
  return added;
}

void WalReader::seek_after(std::uint64_t seq) {
  if (seq <= last_seq_) return;  // already past it
  // Lazy: the next poll() decodes and discards records up to the target
  // (they do not count toward its max_records), surviving torn tails the
  // same way normal reads do.
  skip_through_seq_ = seq;
}

ReplayResult replay_wal(const std::string& path) {
  ReplayResult result;
  bool exists = false;
  const std::string contents = read_file(path, exists);
  if (!exists) return result;
  std::string_view cursor(contents);
  while (!cursor.empty()) {
    DecodeResult decoded = decode_event_record(cursor);
    if (decoded.bytes_consumed == 0) {
      // Torn tail (record cut short by a crash) or CRC failure: the log is
      // usable up to here.
      result.truncated_tail = true;
      break;
    }
    result.events.push_back(std::move(decoded.event));
    cursor.remove_prefix(decoded.bytes_consumed);
    result.valid_bytes += decoded.bytes_consumed;
  }
  return result;
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  FORUMCAST_CHECK_MSG(fd >= 0, "cannot write " + tmp + ": " +
                                   std::strerror(errno));
  write_all(fd, contents.data(), contents.size(), tmp);
  FORUMCAST_CHECK_MSG(::fsync(fd) == 0, "fsync failed: " + tmp + ": " +
                                            std::strerror(errno));
  ::close(fd);
  FORUMCAST_CHECK_MSG(::rename(tmp.c_str(), path.c_str()) == 0,
                      "rename failed: " + path + ": " + std::strerror(errno));
}

void write_snapshot(const std::string& path, std::span<const ForumEvent> events,
                    std::uint64_t last_seq, std::string_view model_ref) {
  std::string blob;
  blob.append(kSnapshotMagic, sizeof kSnapshotMagic);
  const std::uint32_t version = kSnapshotVersion;
  const std::uint64_t count = events.size();
  const std::uint64_t ref_length = model_ref.size();
  blob.append(reinterpret_cast<const char*>(&version), sizeof version);
  blob.append(reinterpret_cast<const char*>(&last_seq), sizeof last_seq);
  blob.append(reinterpret_cast<const char*>(&count), sizeof count);
  blob.append(reinterpret_cast<const char*>(&ref_length), sizeof ref_length);
  blob.append(model_ref.data(), model_ref.size());
  for (const ForumEvent& event : events) {
    append_event_record(blob, event);
  }

  write_file_atomic(path, blob);
  FORUMCAST_COUNTER_ADD("stream.snapshots_written", 1);
  FORUMCAST_GAUGE_SET("stream.snapshot_events", static_cast<double>(count));
}

SnapshotData read_snapshot(const std::string& path) {
  SnapshotData snapshot;
  bool exists = false;
  const std::string contents = read_file(path, exists);
  if (!exists) return snapshot;
  snapshot.present = true;
  const std::size_t header_size =
      sizeof kSnapshotMagic + sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
  FORUMCAST_CHECK_MSG(contents.size() >= header_size &&
                          std::memcmp(contents.data(), kSnapshotMagic,
                                      sizeof kSnapshotMagic) == 0,
                      "malformed snapshot header: " + path);
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  std::size_t off = sizeof kSnapshotMagic;
  std::memcpy(&version, contents.data() + off, sizeof version);
  off += sizeof version;
  FORUMCAST_CHECK_MSG(version == 1 || version == kSnapshotVersion,
                      "unsupported snapshot version: " + path);
  std::memcpy(&snapshot.last_seq, contents.data() + off,
              sizeof snapshot.last_seq);
  off += sizeof snapshot.last_seq;
  std::memcpy(&count, contents.data() + off, sizeof count);
  off += sizeof count;
  if (version >= 2) {
    std::uint64_t ref_length = 0;
    FORUMCAST_CHECK_MSG(contents.size() - off >= sizeof ref_length,
                        "truncated snapshot model ref: " + path);
    std::memcpy(&ref_length, contents.data() + off, sizeof ref_length);
    off += sizeof ref_length;
    FORUMCAST_CHECK_MSG(contents.size() - off >= ref_length,
                        "truncated snapshot model ref: " + path);
    snapshot.model_ref.assign(contents.data() + off, ref_length);
    off += ref_length;
  }

  std::string_view cursor(contents.data() + off, contents.size() - off);
  snapshot.events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DecodeResult decoded = decode_event_record(cursor);
    FORUMCAST_CHECK_MSG(decoded.bytes_consumed != 0,
                        "truncated snapshot record: " + path);
    snapshot.events.push_back(std::move(decoded.event));
    cursor.remove_prefix(decoded.bytes_consumed);
  }
  return snapshot;
}

RecoveredLog recover_log(const std::string& dir) {
  RecoveredLog recovered;
  const SnapshotData snapshot = read_snapshot(snapshot_path(dir));
  recovered.events = snapshot.events;
  recovered.from_snapshot = snapshot.events.size();
  recovered.last_seq = snapshot.last_seq;
  recovered.model_ref = snapshot.model_ref;

  ReplayResult wal = replay_wal(wal_path(dir));
  recovered.truncated_tail = wal.truncated_tail;
  recovered.wal_valid_bytes = wal.valid_bytes;
  for (ForumEvent& event : wal.events) {
    if (event.seq <= snapshot.last_seq) continue;  // already compacted
    recovered.last_seq = event.seq;
    recovered.events.push_back(std::move(event));
  }
  if (!recovered.events.empty()) {
    recovered.last_seq = recovered.events.back().seq;
  }
  return recovered;
}

}  // namespace forumcast::stream
