// Write-ahead log + snapshots for the streaming ingestion path.
//
// Durability model: every applied event is appended to `<dir>/wal.bin`
// before it is acknowledged; sync() fsyncs the fd (timed into the
// stream.wal.fsync_ms histogram). A snapshot is a *compacted log* — the
// full applied-event sequence re-encoded into `<dir>/snapshot.bin` behind a
// header carrying the last covered sequence number — written to a temp file
// and renamed, so a crash never leaves a half snapshot in place. LiveState
// is a deterministic function of (base fit, event sequence), so replaying
// snapshot events + the WAL records with seq beyond the snapshot
// reconstructs the exact pre-crash state (same digest).
//
// Replay is tolerant of a torn tail: a record cut short by a crash, or one
// failing its CRC, ends the usable log; everything before it is applied.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stream/event.hpp"

namespace forumcast::stream {

/// Appends framed event records to a WAL file (created if missing, opened
/// for append otherwise). Writes go through a small user-space buffer;
/// sync() flushes it and fsyncs.
class WalWriter {
 public:
  explicit WalWriter(const std::string& path);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void append(const ForumEvent& event);
  /// Flush + fsync. Called automatically by the destructor.
  void sync();

  std::uint64_t records_appended() const { return records_appended_; }

 private:
  int fd_ = -1;
  std::string buffer_;
  std::uint64_t records_appended_ = 0;
};

/// Incremental reader over a WAL that a live WalWriter may still be
/// appending to — the replication shipping path tails the primary's log
/// through one of these. poll() decodes whatever *complete* records lie
/// past the current offset; a torn tail (a record cut short, or one whose
/// bytes are only partially visible because the writer is mid-append) means
/// "wait, try again after the next sync" — the position holds at the last
/// valid record boundary and is retried on the next poll, never treated as
/// corruption. A reader that stops advancing while the file keeps growing
/// is the caller's signal of real (persistent) corruption.
class WalReader {
 public:
  /// `start_offset` positions past an already-consumed prefix (for example
  /// RecoveredLog::wal_valid_bytes after a recovery read). A missing file
  /// is an empty log; it may appear later.
  explicit WalReader(std::string path, std::uint64_t start_offset = 0);

  /// Appends newly durable records to `out` (at most `max_records`) and
  /// returns how many were added. Returns 0 when nothing new is complete.
  std::size_t poll(std::vector<ForumEvent>& out,
                   std::size_t max_records = SIZE_MAX);

  /// Advances the position so the next poll() returns only records with
  /// seq > `seq`, scanning (and discarding) from the current offset. Stops
  /// early at a torn tail; poll() resumes the scan.
  void seek_after(std::uint64_t seq);

  /// Byte offset of the consumed valid prefix.
  std::uint64_t offset() const { return offset_; }
  /// Sequence number of the last record consumed (0 before any).
  std::uint64_t last_seq() const { return last_seq_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t skip_through_seq_ = 0;  ///< seek_after target still pending
};

struct ReplayResult {
  std::vector<ForumEvent> events;
  /// True when the file ended mid-record or a record failed its CRC — the
  /// expected signature of a crash during append. Events up to that point
  /// are valid.
  bool truncated_tail = false;
  /// Byte length of the valid prefix (everything before the torn record).
  /// Truncate the file to this before appending again, or the new records
  /// land after the garbage and are unreachable on the next recovery.
  std::size_t valid_bytes = 0;
};

/// Reads every valid record of a WAL file. A missing file is an empty log.
ReplayResult replay_wal(const std::string& path);

/// Atomically (write temp + rename) writes a snapshot covering `events`,
/// whose greatest sequence number is `last_seq`. `model_ref` optionally
/// names the model bundle (a file name relative to the WAL directory) the
/// event log applies on top of, so recovery can restore models + events
/// from one directory; empty means "no bundle" (format v1 compatible).
void write_snapshot(const std::string& path, std::span<const ForumEvent> events,
                    std::uint64_t last_seq, std::string_view model_ref = {});

struct SnapshotData {
  bool present = false;
  std::uint64_t last_seq = 0;
  std::vector<ForumEvent> events;
  /// Model bundle reference (empty for v1 snapshots or none recorded).
  std::string model_ref;
};

/// Reads a snapshot; `present` is false for a missing file. Throws
/// util::CheckError on a malformed file (snapshots are written atomically,
/// so corruption is a real error, not a crash artifact).
SnapshotData read_snapshot(const std::string& path);

/// The combined recovery read over a WAL directory: snapshot events plus
/// the WAL records with seq greater than the snapshot's horizon.
struct RecoveredLog {
  std::vector<ForumEvent> events;
  std::uint64_t last_seq = 0;        ///< greatest seq in `events` (0 if none)
  std::size_t from_snapshot = 0;     ///< leading events that came compacted
  bool truncated_tail = false;       ///< WAL ended in a torn record
  std::size_t wal_valid_bytes = 0;   ///< valid prefix length of wal.bin
  std::string model_ref;             ///< snapshot's model bundle ref, if any
};

/// Standard file names inside a --wal-dir.
std::string wal_path(const std::string& dir);
std::string snapshot_path(const std::string& dir);
/// The model bundle LiveState writes next to the log, so one directory
/// restores both the fitted models and the streamed events.
std::string model_bundle_path(const std::string& dir);

/// Atomically (write temp + fsync + rename) writes `contents` to `path`.
/// Shared by snapshots and the model bundle.
void write_file_atomic(const std::string& path, std::string_view contents);

RecoveredLog recover_log(const std::string& dir);

}  // namespace forumcast::stream
