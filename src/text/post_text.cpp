#include "text/post_text.hpp"

#include <algorithm>
#include <cctype>

namespace forumcast::text {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

// Returns the tag name (lowercased) if `html[pos]` starts a tag, and sets
// `end` to one past the closing '>'. Returns empty if malformed.
std::string parse_tag(std::string_view html, std::size_t pos, std::size_t& end,
                      bool& is_closing) {
  is_closing = false;
  std::size_t i = pos + 1;
  if (i < html.size() && html[i] == '/') {
    is_closing = true;
    ++i;
  }
  std::string name;
  while (i < html.size() && (std::isalnum(static_cast<unsigned char>(html[i])))) {
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(html[i])));
    ++i;
  }
  // Skip attributes until '>'.
  while (i < html.size() && html[i] != '>') ++i;
  if (i >= html.size()) return {};  // malformed: no closing '>'
  end = i + 1;
  return name;
}

bool is_code_tag(std::string_view name) {
  return iequals(name, "code") || iequals(name, "pre");
}

void decode_entity(std::string_view html, std::size_t pos, std::string& out,
                   std::size_t& consumed) {
  struct Entity {
    std::string_view name;
    char replacement;
  };
  static constexpr Entity kEntities[] = {
      {"&amp;", '&'}, {"&lt;", '<'},   {"&gt;", '>'},
      {"&quot;", '"'}, {"&#39;", '\''}, {"&nbsp;", ' '},
  };
  for (const auto& entity : kEntities) {
    if (html.substr(pos, entity.name.size()) == entity.name) {
      out += entity.replacement;
      consumed = entity.name.size();
      return;
    }
  }
  out += '&';
  consumed = 1;
}

}  // namespace

SplitBody split_post_body(std::string_view html) {
  SplitBody split;
  std::size_t depth = 0;  // nesting depth inside code/pre blocks
  std::size_t i = 0;
  while (i < html.size()) {
    const char ch = html[i];
    if (ch == '<') {
      std::size_t tag_end = 0;
      bool closing = false;
      const std::string name = parse_tag(html, i, tag_end, closing);
      if (name.empty() && tag_end == 0) {
        // Malformed tag: treat the '<' literally.
        (depth > 0 ? split.code : split.words) += ch;
        ++i;
        continue;
      }
      if (is_code_tag(name)) {
        if (closing) {
          if (depth > 0) --depth;
        } else {
          ++depth;
        }
      } else if (depth == 0) {
        // Non-code tags outside code act as word separators.
        split.words += ' ';
      } else {
        split.code += ' ';
      }
      i = tag_end;
      continue;
    }
    if (ch == '&' && depth == 0) {
      std::size_t consumed = 0;
      decode_entity(html, i, split.words, consumed);
      i += consumed;
      continue;
    }
    (depth > 0 ? split.code : split.words) += ch;
    ++i;
  }
  return split;
}

std::string strip_tags(std::string_view html) {
  const SplitBody split = split_post_body(html);
  // strip_tags keeps everything as prose: re-merge code into the word stream.
  if (split.code.empty()) return split.words;
  std::string merged = split.words;
  merged += ' ';
  merged += split.code;
  return merged;
}

}  // namespace forumcast::text
