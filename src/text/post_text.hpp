// Splitting a forum post body into word text x(p) and code c(p).
//
// The paper exploits the fact that code on Stack Overflow is delimited by
// specific HTML tags; we recognize <code>…</code> and <pre>…</pre> blocks
// (case-insensitive, attributes allowed) and route their contents to the code
// channel, everything else to the word channel with remaining tags stripped.
#pragma once

#include <string>
#include <string_view>

namespace forumcast::text {

/// A post body separated into its natural-language and code components.
struct SplitBody {
  std::string words;  ///< x(p): prose with markup removed
  std::string code;   ///< c(p): concatenated contents of code blocks
};

/// Splits an HTML post body into word text and code per the rule above.
/// Unterminated code blocks run to the end of the input.
SplitBody split_post_body(std::string_view html);

/// Removes any remaining HTML tags and decodes the handful of entities that
/// matter for tokenization (&amp; &lt; &gt; &quot; &#39; &nbsp;).
std::string strip_tags(std::string_view html);

}  // namespace forumcast::text
