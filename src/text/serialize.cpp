#include "text/serialize.hpp"

#include "util/check.hpp"

namespace forumcast::text {

void encode_vocabulary(const Vocabulary& vocabulary, artifact::Encoder& enc) {
  enc.u64(vocabulary.size());
  for (const std::string& token : vocabulary.tokens()) enc.str(token);
}

Vocabulary decode_vocabulary(artifact::Decoder& dec) {
  const auto count = dec.u64("vocabulary size");
  Vocabulary vocabulary;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string token = dec.str("vocabulary token");
    const TokenId id = vocabulary.add(token);
    FORUMCAST_CHECK_MSG(id == i, "vocabulary token '"
                                     << token << "' is a duplicate (id " << id
                                     << " at position " << i << ")");
  }
  return vocabulary;
}

void encode_tokenizer_options(const TokenizerOptions& options,
                              artifact::Encoder& enc) {
  enc.u64(options.min_token_length);
  enc.boolean(options.drop_numbers);
  enc.boolean(options.drop_stopwords);
}

TokenizerOptions decode_tokenizer_options(artifact::Decoder& dec) {
  TokenizerOptions options;
  options.min_token_length =
      static_cast<std::size_t>(dec.u64("tokenizer min token length"));
  options.drop_numbers = dec.boolean("tokenizer drop numbers");
  options.drop_stopwords = dec.boolean("tokenizer drop stopwords");
  return options;
}

}  // namespace forumcast::text
