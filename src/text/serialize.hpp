// Artifact codecs for the text layer: vocabulary and tokenizer options.
//
// The vocabulary's token→id assignment must survive a save/load round trip
// exactly — topic-word tables and fold-in inference index by TokenId, so a
// permuted vocabulary would silently permute every topic. Tokens are stored
// in id order and re-interned in order on decode, reproducing identical ids.
#pragma once

#include "artifact/artifact.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"

namespace forumcast::text {

void encode_vocabulary(const Vocabulary& vocabulary, artifact::Encoder& enc);
Vocabulary decode_vocabulary(artifact::Decoder& dec);

void encode_tokenizer_options(const TokenizerOptions& options,
                              artifact::Encoder& enc);
TokenizerOptions decode_tokenizer_options(artifact::Decoder& dec);

}  // namespace forumcast::text
